//! Offline stand-in for `rand_chacha`.
//!
//! Vendored because the build environment cannot reach crates.io. The
//! simulation layer only requires a deterministic, seedable, forkable
//! generator — not the ChaCha stream cipher itself — so `ChaCha12Rng` here
//! delegates to the vendored `StdRng` (xoshiro256++) with a domain-separated
//! seed. Streams differ from upstream `rand_chacha`, which is fine: every
//! consumer in this workspace seeds both sides of any comparison itself.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Deterministic seedable RNG under the `ChaCha12Rng` name.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    inner: StdRng,
}

impl SeedableRng for ChaCha12Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Domain-separate from plain StdRng streams.
        ChaCha12Rng {
            inner: StdRng::seed_from_u64(state ^ 0x5EED_CACA_0C0F_FEE5),
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = ChaCha12Rng::seed_from_u64(5);
        let mut b = ChaCha12Rng::seed_from_u64(5);
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn differs_from_stdrng_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
