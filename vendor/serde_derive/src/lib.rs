//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored value-model `serde`, using only the raw `proc_macro` API (no
//! `syn`/`quote`, which are equally unavailable offline).
//!
//! Supported input shapes — exactly what this workspace derives on:
//! non-generic named-field structs, tuple structs, unit structs, and enums
//! with unit/tuple/struct variants. Representation is externally tagged,
//! matching upstream serde's default:
//!
//! * named struct         -> `{"field": ...}`
//! * newtype struct       -> inner value
//! * tuple struct (n > 1) -> `[...]`
//! * unit variant         -> `"Variant"`
//! * newtype variant      -> `{"Variant": inner}`
//! * tuple variant        -> `{"Variant": [...]}`
//! * struct variant       -> `{"Variant": {...}}`
//!
//! Field/variant attributes (`#[serde(...)]`) are not supported and none
//! exist in the workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// -------------------------------------------------------------- parsing --

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Skip `#[...]` attributes (incl. doc comments) and a `pub` / `pub(...)`
/// visibility prefix.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Skip a type (or discriminant expression) up to a top-level `,`, tracking
/// `<...>` nesting so commas inside generic arguments don't terminate early.
fn skip_to_field_end(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        fields.push(expect_ident(&toks, &mut i));
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_to_field_end(&toks, &mut i);
        i += 1; // past the `,` (or past the end)
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        count += 1;
        skip_to_field_end(&toks, &mut i);
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_to_field_end(&toks, &mut i);
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ------------------------------------------------------------- codegen --

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut b = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                b.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            b.push_str("::serde::Value::Object(m)");
            b
        }
        Kind::TupleStruct(0) | Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> =
                            (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::Value::Array(vec![{}])",
                                items.join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{vname}\"), {inner});\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let mut inner =
                            String::from("let mut fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(fm));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut ctor = String::new();
            for f in fields {
                ctor.push_str(&format!("{f}: ::serde::de::field(obj, \"{f}\")?,\n"));
            }
            format!(
                "let obj = match v {{\n\
                 ::serde::Value::Object(m) => m,\n\
                 _ => return ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected object for {name}\")),\n}};\n\
                 ::std::result::Result::Ok({name} {{\n{ctor}}})"
            )
        }
        Kind::TupleStruct(0) => {
            format!("::std::result::Result::Ok({name}())")
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = match v {{\n\
                 ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                 _ => return ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected {n}-element array for {name}\")),\n}};\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantFields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(&arr[{i}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let arr = match inner {{\n\
                             ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                             _ => return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"expected {n}-element array \
                             for variant {vname}\")),\n}};\n\
                             ::std::result::Result::Ok({name}::{vname}({items}))\n}}\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let mut ctor = String::new();
                        for f in fields {
                            ctor.push_str(&format!(
                                "{f}: ::serde::de::field(fobj, \"{f}\")?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let fobj = match inner {{\n\
                             ::serde::Value::Object(m) => m,\n\
                             _ => return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"expected object for \
                             variant {vname}\")),\n}};\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{ctor}}})\n}}\n"
                        ));
                    }
                }
            }
            let tagged_branch = if tagged_arms.is_empty() {
                format!(
                    "::std::result::Result::Err(::serde::Error::custom(\
                     \"expected string variant for {name}\"))"
                )
            } else {
                format!(
                    "let obj = match v {{\n\
                     ::serde::Value::Object(m) => m,\n\
                     _ => return ::std::result::Result::Err(::serde::Error::custom(\
                     \"expected externally tagged variant for {name}\")),\n}};\n\
                     let (tag, inner) = match obj.iter().next() {{\n\
                     ::std::option::Option::Some(kv) => kv,\n\
                     ::std::option::Option::None => return ::std::result::Result::Err(\
                     ::serde::Error::custom(\"empty variant object for {name}\")),\n}};\n\
                     match tag.as_str() {{\n\
                     {tagged_arms}\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                     \"unknown variant for {name}\")),\n}}"
                )
            };
            format!(
                "if let ::serde::Value::String(s) = v {{\n\
                 return match s.as_str() {{\n\
                 {unit_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown unit variant for {name}\")),\n}};\n}}\n\
                 {tagged_branch}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
