//! Offline stand-in for `rand` 0.8.
//!
//! Vendored because the build environment cannot reach crates.io. The
//! workspace only needs deterministic, seedable pseudo-randomness — not
//! cryptographic strength or bit-for-bit compatibility with upstream
//! `rand` streams — so `StdRng` here is xoshiro256++ seeded via splitmix64.

/// Core random-number generation (matches `rand::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`
    /// (full integer range, `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution (stands in for
/// `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod distributions {
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Types uniformly samplable between two bounds.
        pub trait SampleUniform: Sized + PartialOrd {
            /// Sample uniformly from `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self;
        }

        /// Range forms accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "cannot sample empty range");
                T::sample_between(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                T::sample_between(rng, lo, hi, true)
            }
        }

        macro_rules! impl_uniform_int {
            ($($t:ty => $wide:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let lo_w = lo as $wide;
                        let hi_w = hi as $wide;
                        let span = (hi_w.wrapping_sub(lo_w) as u128)
                            .wrapping_add(inclusive as u128);
                        if span == 0 {
                            // Full inclusive domain: every bit pattern is valid.
                            return rng.next_u64() as $t;
                        }
                        let v = rng.next_u64() as u128 % span;
                        lo_w.wrapping_add(v as $wide) as $t
                    }
                }
            )*};
        }

        impl_uniform_int!(
            u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
            i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
        );

        macro_rules! impl_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                    ) -> Self {
                        let unit = (rng.next_u64() >> 11) as f64
                            * (1.0 / (1u64 << 53) as f64);
                        (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
                    }
                }
            )*};
        }

        impl_uniform_float!(f32, f64);
    }

    /// Marker kept for path compatibility with `rand::distributions::Standard`.
    pub struct Standard;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // xoshiro is ill-defined on the all-zero state.
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x1234_5678, 0x9ABC_DEF0];
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_u64(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_replay() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn standard_floats_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
