//! Offline stand-in for `bytes`.
//!
//! Vendored because the build environment cannot reach crates.io. Implements
//! the subset of the `bytes` API the DNS wire codec relies on: big-endian
//! cursor reads over `&[u8]`, an appendable `BytesMut`, and a frozen
//! immutable `Bytes`.

use std::ops::Deref;

/// Read cursor over a byte source (big-endian getters, as in `bytes`).
pub trait Buf {
    fn remaining(&self) -> usize;

    /// The current contiguous window.
    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let mut buf = [0u8; 2];
        self.copy_to_slice(&mut buf);
        u16::from_be_bytes(buf)
    }

    fn get_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.copy_to_slice(&mut buf);
        u32::from_be_bytes(buf)
    }

    fn get_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.copy_to_slice(&mut buf);
        u64::from_be_bytes(buf)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write sink (big-endian putters, as in `bytes`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, Debug)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data
    }

    fn advance(&mut self, cnt: usize) {
        self.data.drain(..cnt);
    }
}

/// Growable byte buffer; `freeze` converts to [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u16(0xABCD);
        w.put_u32(0xDEADBEEF);
        w.put_slice(b"xy");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xABCD);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.chunk(), b"xy");
        r.advance(2);
        assert!(!r.has_remaining());
    }
}
