//! Offline stand-in for `serde_json`.
//!
//! Vendored because the build environment cannot reach crates.io. Re-exports
//! the vendored serde's [`Value`] model and adds a strict JSON text parser,
//! printers, and the `json!` macro. Invalid input must fail to parse (the
//! workspace's unmarshalling fallback path depends on that), so the parser
//! rejects trailing garbage, malformed escapes, and non-UTF-8 input.

pub use serde::{Error, Map, Number, Value};

use serde::{DeserializeOwned, Serialize};

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserialize from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid UTF-8"))?;
    from_str(s)
}

/// Deserialize from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Construct a [`Value`] from JSON-ish syntax. Supports literals, arrays,
/// objects with literal keys, and interpolated expressions — the subset the
/// workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($elem)),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert(($key).to_string(), $crate::json!($val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

// --------------------------------------------------------------- parser --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse strict JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8> {
        let b = self
            .peek()
            .ok_or_else(|| Error::custom("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump()? != b {
            return Err(Error::custom(format!("expected `{}`", b as char)));
        }
        Ok(())
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}`",
                c as char
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.bump()?;
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::custom("invalid low surrogate"));
                            }
                            let c =
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c)
                                .ok_or_else(|| Error::custom("invalid codepoint"))?
                        } else {
                            char::from_u32(hi)
                                .ok_or_else(|| Error::custom("invalid codepoint"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error::custom("invalid escape sequence")),
                },
                // Multi-byte UTF-8: the input is already a valid &str, so
                // collect continuation bytes directly.
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    while matches!(self.peek(), Some(c) if c & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
                b if b < 0x20 => {
                    return Err(Error::custom("unescaped control character"))
                }
                b => out.push(b as char),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(Error::custom("expected digits in number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(Error::custom("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(Error::custom("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let number = if is_float {
            Number::F(text.parse().map_err(|_| Error::custom("invalid float"))?)
        } else if let Some(stripped) = text.strip_prefix('-') {
            match stripped.parse::<u64>() {
                Ok(0) => Number::U(0),
                _ => Number::I(
                    text.parse().map_err(|_| Error::custom("integer overflow"))?,
                ),
            }
        } else {
            Number::U(text.parse().map_err(|_| Error::custom("integer overflow"))?)
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a":[1,2],"b":"x","c":true,"d":null,"e":-3,"f":1.5}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse("garbage").is_err());
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("123abc").is_err());
        assert!(from_slice::<Value>(b"\xff\xfe").is_err());
    }

    #[test]
    fn escapes() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{e9}"));
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn unicode_passthrough() {
        let original = Value::String("héllo wörld — ☃".to_string());
        let text = to_string(&original).unwrap();
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn json_macro() {
        let v = json!({"a": [1, 2], "b": "x", "c": null, "d": true});
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert!(v.get("c").unwrap().is_null());
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn float_integrality_survives_roundtrip() {
        let v = Value::from(2.0);
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back, v, "whole floats must stay floats");
    }
}
