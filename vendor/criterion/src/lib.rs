//! Offline stand-in for `criterion`.
//!
//! Vendored because the build environment cannot reach crates.io. Keeps the
//! macro/builder surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::default().sample_size(..)`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`) and measures wall-clock time with
//! `std::time::Instant`: a warm-up period, then `sample_size` samples whose
//! per-iteration mean/min/max are printed. No statistical regression
//! analysis, plots, or result persistence.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration (builder-compatible subset).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, id, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_benchmark(self.criterion, &full, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F>(f: &mut F, iters: u64) -> Duration
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F>(config: &Criterion, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm up and estimate per-iteration cost so each sample batch is
    // sized to fill its share of the measurement budget.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 1;
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < config.warm_up_time {
        let took = time_batch(&mut f, warm_iters);
        per_iter = took.max(Duration::from_nanos(1)) / warm_iters.max(1) as u32;
        warm_iters = warm_iters.saturating_mul(2).min(1 << 20);
    }

    let per_sample = config.measurement_time / config.sample_size as u32;
    let iters_per_sample = (per_sample.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, u64::MAX as u128) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let took = time_batch(&mut f, iters_per_sample);
        samples.push(took.as_secs_f64() / iters_per_sample as f64);
    }

    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples x {iters_per_sample} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    let nanos = secs * 1e9;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.3} us", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.3} ms", nanos / 1_000_000.0)
    } else {
        format!("{secs:.3} s")
    }
}

/// Define a benchmark group runner, in either the simple or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        tiny(&mut c);
        c.bench_function("free", |b| b.iter(|| black_box(3u32).wrapping_mul(7)));
    }

    criterion_group! {
        name = group_simple_check;
        config = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        targets = tiny
    }

    #[test]
    fn macro_forms_compile() {
        group_simple_check();
    }
}
