//! Offline stand-in for `proptest`.
//!
//! Vendored because the build environment cannot reach crates.io. Provides
//! the `proptest!` macro, `Strategy` combinators, collection/option/string
//! strategies, and `any::<T>()` over a deterministic seeded RNG. Two
//! deliberate simplifications versus upstream:
//!
//! * **No shrinking.** A failing case reports its inputs (via the assertion
//!   message) and the per-test deterministic seed instead of a minimized
//!   counterexample.
//! * **Rejections** (`prop_assume!`) retry with fresh randomness up to a
//!   bounded attempt budget rather than upstream's global reject accounting.
//!
//! Generation is deterministic per test name, so failures reproduce across
//! runs without a persistence file.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng, StandardSample};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ------------------------------------------------------------------ rng --

/// Deterministic source of randomness handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

// --------------------------------------------------------------- runner --

/// Runner configuration (field-compatible subset of upstream's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Maximum rejected samples (`prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; retry with fresh randomness.
    Reject(String),
    /// An assertion failed; abort the whole test.
    Fail(String),
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drive one property: generate inputs and evaluate until `cases` successes.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base_seed = fnv1a(test_name.as_bytes());
    let mut passed = 0u32;
    let mut rejects = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        attempt += 1;
        let mut rng = TestRng::from_seed(base_seed.wrapping_add(attempt));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest `{test_name}`: too many rejected cases \
                         ({rejects}) — weaken prop_assume! conditions"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{test_name}` failed at case {} (seed {:#x}): {msg}",
                    passed + 1,
                    base_seed.wrapping_add(attempt),
                );
            }
        }
    }
}

// ------------------------------------------------------------- strategy --

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<W, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> W,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erase (and reference-count) this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            sampler: Rc::new(move |rng| self.sample(rng)),
        }
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// previous depth level; generation mixes leaves with deeper cases.
    /// `_desired_size` / `_expected_branch` are accepted for upstream
    /// signature compatibility (depth alone bounds generation here).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            level = Union::new(vec![(1, leaf.clone()), (3, deeper)]).boxed();
        }
        level
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, W, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> W,
{
    type Value = W;

    fn sample(&self, rng: &mut TestRng) -> W {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    sampler: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: self.sampler.clone(),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (self.sampler)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Weighted choice between strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        assert!(
            options.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.next_u64() % total;
        for (w, strat) in &self.options {
            if pick < *w as u64 {
                return strat.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted choice out of range")
    }
}

impl<T: SampleUniform + Clone + PartialOrd> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T: SampleUniform + Clone + PartialOrd> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_single(rng)
    }
}

/// String literals are regex-style generators, as in upstream proptest.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        match string::compile(self) {
            Ok(pieces) => string::sample_pieces(&pieces, rng),
            Err(e) => panic!("invalid string strategy pattern {self:?}: {e}"),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ------------------------------------------------------------ arbitrary --

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (full domain for scalars).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for scalar types.
pub struct ScalarStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: StandardSample> Strategy for ScalarStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_standard(rng)
    }
}

macro_rules! impl_arbitrary_scalar {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = ScalarStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                ScalarStrategy { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_scalar!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f32, f64
);

/// Fixed-size arrays of arbitrary elements.
pub struct ArrayStrategy<S, const N: usize> {
    elem: S,
}

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.elem.sample(rng))
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    type Strategy = ArrayStrategy<T::Strategy, N>;

    fn arbitrary() -> Self::Strategy {
        ArrayStrategy {
            elem: T::arbitrary(),
        }
    }
}

// ---------------------------------------------------------- collections --

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// `BTreeMap` with up to `size` entries (duplicate keys collapse).
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` that is `Some` roughly 3/4 of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

// --------------------------------------------------------------- string --

pub mod string {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// One regex atom plus its repetition bounds.
    pub(crate) type Piece = (Atom, (u32, u32));

    pub(crate) enum Atom {
        Lit(char),
        /// Inclusive char ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
        Group(Vec<Piece>),
    }

    pub struct RegexStrategy {
        pieces: Vec<Piece>,
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pieces(&self.pieces, rng)
        }
    }

    /// Compile a generator from a simplified regex: literals, `[...]`
    /// classes (ranges, escapes), `(...)` groups, and the quantifiers
    /// `{n}`, `{m,n}`, `?`, `*`, `+`. Alternation and anchors are not
    /// supported (and unused in this workspace).
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, String> {
        compile(pattern).map(|pieces| RegexStrategy { pieces })
    }

    pub(crate) fn compile(pattern: &str) -> Result<Vec<Piece>, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let pieces = parse_sequence(&chars, &mut pos, None)?;
        if pos != chars.len() {
            return Err(format!("unexpected `{}` at {pos}", chars[pos]));
        }
        Ok(pieces)
    }

    fn parse_sequence(
        chars: &[char],
        pos: &mut usize,
        terminator: Option<char>,
    ) -> Result<Vec<Piece>, String> {
        let mut pieces = Vec::new();
        while *pos < chars.len() {
            if Some(chars[*pos]) == terminator {
                return Ok(pieces);
            }
            let atom = parse_atom(chars, pos)?;
            let bounds = parse_quantifier(chars, pos)?;
            pieces.push((atom, bounds));
        }
        if terminator.is_some() {
            return Err("unterminated group".to_string());
        }
        Ok(pieces)
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Atom, String> {
        let c = chars[*pos];
        *pos += 1;
        match c {
            '[' => parse_class(chars, pos),
            '(' => {
                let inner = parse_sequence(chars, pos, Some(')'))?;
                if *pos >= chars.len() {
                    return Err("unterminated group".to_string());
                }
                *pos += 1; // consume ')'
                Ok(Atom::Group(inner))
            }
            '\\' => {
                let e = *chars.get(*pos).ok_or("dangling escape")?;
                *pos += 1;
                Ok(match e {
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    's' => Atom::Class(vec![(' ', ' '), ('\t', '\t')]),
                    other => Atom::Lit(other),
                })
            }
            '.' => Ok(Atom::Class(vec![(' ', '~')])),
            '|' | ')' | '^' | '$' => Err(format!("unsupported regex syntax `{c}`")),
            lit => Ok(Atom::Lit(lit)),
        }
    }

    fn parse_class(chars: &[char], pos: &mut usize) -> Result<Atom, String> {
        let mut ranges = Vec::new();
        loop {
            let c = *chars.get(*pos).ok_or("unterminated character class")?;
            *pos += 1;
            match c {
                ']' => return Ok(Atom::Class(ranges)),
                '\\' => {
                    let e = *chars.get(*pos).ok_or("dangling escape in class")?;
                    *pos += 1;
                    ranges.push((e, e));
                }
                lo => {
                    // `x-y` range unless `-` is the class terminator.
                    if chars.get(*pos) == Some(&'-')
                        && chars.get(*pos + 1).is_some_and(|c| *c != ']')
                    {
                        let hi = chars[*pos + 1];
                        *pos += 2;
                        if hi < lo {
                            return Err(format!("inverted class range {lo}-{hi}"));
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
        }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize) -> Result<(u32, u32), String> {
        match chars.get(*pos) {
            Some('?') => {
                *pos += 1;
                Ok((0, 1))
            }
            Some('*') => {
                *pos += 1;
                Ok((0, 8))
            }
            Some('+') => {
                *pos += 1;
                Ok((1, 8))
            }
            Some('{') => {
                *pos += 1;
                let mut min = String::new();
                while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                    min.push(chars[*pos]);
                    *pos += 1;
                }
                let min: u32 = min.parse().map_err(|_| "bad quantifier min")?;
                let max = match chars.get(*pos) {
                    Some(',') => {
                        *pos += 1;
                        let mut max = String::new();
                        while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                            max.push(chars[*pos]);
                            *pos += 1;
                        }
                        max.parse().map_err(|_| "bad quantifier max")?
                    }
                    _ => min,
                };
                if chars.get(*pos) != Some(&'}') {
                    return Err("unterminated quantifier".to_string());
                }
                *pos += 1;
                if max < min {
                    return Err("inverted quantifier bounds".to_string());
                }
                Ok((min, max))
            }
            _ => Ok((1, 1)),
        }
    }

    pub(crate) fn sample_pieces(pieces: &[Piece], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, (min, max)) in pieces {
            let reps = rng.gen_range(*min..=*max);
            for _ in 0..reps {
                sample_atom(atom, rng, &mut out);
            }
        }
        out
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
        match atom {
            Atom::Lit(c) => out.push(*c),
            Atom::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut pick = rng.gen_range(0..total);
                for (lo, hi) in ranges {
                    let size = *hi as u32 - *lo as u32 + 1;
                    if pick < size {
                        out.push(char::from_u32(*lo as u32 + pick).expect("class range"));
                        return;
                    }
                    pick -= size;
                }
                unreachable!("class choice out of range")
            }
            Atom::Group(inner) => out.push_str(&sample_pieces(inner, rng)),
        }
    }
}

// --------------------------------------------------------------- macros --

/// Define property tests. Each function body runs for `cases` generated
/// inputs; use `prop_assert!`-family macros inside.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __l, __r
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
}

/// Discard the current case unless `cond` holds (does not count as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Weighted (`w => strat`) or uniform choice between strategies yielding the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_shapes() {
        let mut rng = super::TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let p = Strategy::sample(&"[a-c](/[a-c]){0,2}", &mut rng);
            assert!(p.len() % 2 == 1 && p.len() <= 5, "bad path {p:?}");

            let opt = Strategy::sample(
                &"[a-zA-Z0-9]([a-zA-Z0-9 ,=\\\\]{0,6}[a-zA-Z0-9])?",
                &mut rng,
            );
            assert!(!opt.is_empty());
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = super::TestRng::from_seed(9);
        let mut b = super::TestRng::from_seed(9);
        let strat = super::collection::vec(0u8..255, 0..10);
        assert_eq!(Strategy::sample(&strat, &mut a), Strategy::sample(&strat, &mut b));
    }

    proptest! {
        #[test]
        fn macro_smoke(
            v in super::collection::vec(any::<u8>(), 0..8),
            flag in any::<bool>(),
            s in "[a-f]{2,4}",
            choice in prop_oneof![2 => Just(1u8), 1 => Just(2u8)],
        ) {
            prop_assume!(v.len() != 7);
            prop_assert!(v.len() < 8);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(s.len(), 0);
            prop_assert!(choice == 1 || choice == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
        #[test]
        fn configured_cases(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }
}
