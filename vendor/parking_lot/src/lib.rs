//! Offline stand-in for `parking_lot`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal, API-compatible implementations of its external
//! dependencies. This one wraps `std::sync` primitives and strips lock
//! poisoning (parking_lot's observable behaviour): a panic while holding a
//! guard leaves the lock usable instead of tainting it.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            },
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            },
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panicking holder");
    }
}
