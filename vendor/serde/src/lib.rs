//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal serde replacement. Instead of upstream's visitor architecture,
//! this implementation serializes through an owned JSON-like [`Value`] tree:
//!
//! * [`Serialize`] renders `self` into a [`Value`];
//! * [`Deserialize`] reconstructs `Self` from a [`Value`];
//! * the companion `serde_json` stand-in handles text parsing/printing.
//!
//! The derive macros in `serde_derive` generate externally-tagged
//! representations compatible with what upstream `serde_json` would emit for
//! the plain (attribute-free) derives this workspace uses. Only round-trip
//! consistency within the workspace is required, not byte-compatibility with
//! upstream.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// Object representation: string-keyed ordered map.
pub type Map = BTreeMap<String, Value>;

/// An owned JSON value tree — the interchange format between `Serialize`
/// and `Deserialize` impls.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON number. Non-negative integers canonicalize to `U`, negative
/// integers to `I`, everything else to `F` (mirrors `serde_json`'s
/// `PosInt`/`NegInt`/`Float` split).
#[derive(Clone, Copy, Debug)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            _ => false,
        }
    }
}

impl Number {
    pub fn from_i64(v: i64) -> Number {
        if v >= 0 {
            Number::U(v as u64)
        } else {
            Number::I(v)
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(_) | Number::F(_) => None,
        }
    }

    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::from_i64(v as i64))
            }
        }
    )*};
}

impl_value_from_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::U(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

// ------------------------------------------------------------ rendering --

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_into(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::U(u)) => out.push_str(&u.to_string()),
        Value::Number(Number::I(i)) => out.push_str(&i.to_string()),
        Value::Number(Number::F(f)) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on whole floats, so a float
                // stays a float across a text round-trip.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                render_into(val, out);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        render_into(self, &mut s);
        f.write_str(&s)
    }
}

// --------------------------------------------------------------- errors --

/// Serialization/deserialization error (also re-exported as
/// `serde_json::Error`).
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// --------------------------------------------------------------- traits --

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Upstream-compatible alias bound: everything here deserializes from owned
/// data.
pub trait DeserializeOwned: Deserialize {}

impl<T: Deserialize> DeserializeOwned for T {}

pub mod ser {
    pub use crate::{Error, Serialize};
}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned, Error};
    use crate::{Map, Value};

    /// Fetch and deserialize a struct field. Missing keys deserialize from
    /// `Null` so `Option` fields tolerate absence (as with upstream serde).
    pub fn field<T: Deserialize>(obj: &Map, key: &str) -> Result<T, Error> {
        match obj.get(key) {
            Some(v) => T::from_value(v)
                .map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
            None => T::from_value(&Value::Null)
                .map_err(|_| Error::custom(format!("missing field `{key}`"))),
        }
    }
}

// ---------------------------------------------------------- std impls --

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom("expected boolean"))
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::custom("expected number"))? as f32)
    }
}

/// Net addresses serialize as their display strings, matching upstream
/// serde's human-readable representation.
macro_rules! impl_serde_via_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::String(self.to_string())
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_str()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| {
                        Error::custom(concat!("expected ", stringify!($t), " string"))
                    })
            }
        }
    )*};
}

impl_serde_via_display!(
    std::net::Ipv4Addr,
    std::net::Ipv6Addr,
    std::net::IpAddr,
    std::net::SocketAddr
);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn to_value(&self) -> Value {
        Value::String(self.as_ref().to_string())
    }
}

impl Deserialize for std::borrow::Cow<'static, str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| std::borrow::Cow::Owned(s.to_string()))
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for std::sync::Arc<str> {
    fn to_value(&self) -> Value {
        Value::String(self.as_ref().to_string())
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(std::sync::Arc::from)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Map keys must render to strings in the JSON model.
pub trait MapKey: Sized {
    fn to_map_key(&self) -> String;
    fn from_map_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_map_key(&self) -> String {
        self.clone()
    }
    fn from_map_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_map_key(&self) -> String {
                self.to_string()
            }
            fn from_map_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom("invalid numeric map key"))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_map_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_map_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_map_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_map_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_json() {
        let mut m = Map::new();
        m.insert("a".into(), Value::Array(vec![Value::from(1), Value::from(2)]));
        m.insert("s".into(), Value::from("x\"y"));
        assert_eq!(Value::Object(m).to_string(), r#"{"a":[1,2],"s":"x\"y"}"#);
    }

    #[test]
    fn whole_floats_keep_fraction() {
        assert_eq!(Value::from(2.0).to_string(), "2.0");
        assert_eq!(Value::from(1.5).to_string(), "1.5");
    }

    #[test]
    fn option_roundtrip() {
        let some = Some("x".to_string()).to_value();
        let none = Option::<String>::None.to_value();
        assert_eq!(Option::<String>::from_value(&some).unwrap().as_deref(), Some("x"));
        assert_eq!(Option::<String>::from_value(&none).unwrap(), None);
    }

    #[test]
    fn map_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1u64, 2]);
        let v = m.to_value();
        let back: BTreeMap<String, Vec<u64>> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
