//! The cluster telemetry plane's aggregation tier: scrape every shard's
//! metrics, health, and trace ring over the admin vocabulary and merge
//! them into one coherent cluster view.
//!
//! A [`ClusterObserver`] holds one v2 [`NetClient`] per shard endpoint
//! and fans the three admin calls (metrics, health, trace dump) out
//! through the same bounded worker pool the router uses for scatter ops.
//! [`ClusterObserver::scrape_all`] then:
//!
//! - stamps every per-instance snapshot with an `instance` label and
//!   merges them, so shard series never collide;
//! - computes a cluster rollup (labels `server`/`endpoint`/`instance`
//!   dropped, re-labeled `instance="cluster"`) whose totals are exactly
//!   the sum of the per-instance series — the merge proofs live in
//!   `rndi-obs/tests/merge_props.rs`;
//! - assembles cross-node traces by trace id from the union of every
//!   shard's ring and the local (router-side) ring, deduplicated by
//!   span id, so one trace shows its router, client, server, pipeline,
//!   and backend legs together;
//! - derives cluster signals: per-shard load imbalance, saturation
//!   headroom, and per-op latency quantiles from the rollup histograms.
//!
//! Unreachable shards degrade the scrape, not fail it: their ids land in
//! [`ClusterScrape::unreachable`] and everything else still merges.

use std::collections::{BTreeMap, HashSet};

use rndi_core::env::{keys, Environment};
use rndi_core::error::Result;
use rndi_core::federation::fan_out;
use rndi_net::NetClient;
use rndi_obs::metrics::names;
use rndi_obs::{HealthSummary, MetricsSnapshot, SpanRecord};

use crate::map::ShardMap;
use crate::router::DEFAULT_FANOUT;

/// Labels that identify *where* a series came from; the cluster rollup
/// drops them so identical series from different shards sum together.
const INSTANCE_LABELS: &[&str] = &["server", "endpoint", "instance"];

/// One shard's answers to the three admin scrape calls.
#[derive(Clone, Debug)]
pub struct InstanceScrape {
    /// Shard id from the [`ShardMap`] (`shard-0`, ...).
    pub id: String,
    /// `host:port` the scrape hit.
    pub endpoint: String,
    /// The shard's metrics, already stamped with `instance=<id>`.
    pub metrics: MetricsSnapshot,
    pub health: HealthSummary,
    /// Everything the shard's trace ring still buffered.
    pub spans: Vec<SpanRecord>,
}

/// One cross-node trace: every buffered span sharing a trace id, from
/// whichever process recorded it.
#[derive(Clone, Debug)]
pub struct AssembledTrace {
    pub trace_id: u64,
    /// Sorted shallow-to-deep, ties broken by span id, so a walk reads
    /// root → leaf.
    pub spans: Vec<SpanRecord>,
}

impl AssembledTrace {
    /// The root span, if the ring still held it.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent_span == 0)
    }

    /// Distinct layers in depth order ("router", "client", "server", ...).
    pub fn layers(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for span in &self.spans {
            if !seen.contains(&span.layer.as_ref()) {
                seen.push(span.layer.as_ref());
            }
        }
        seen
    }

    /// End-to-end duration: the root span's if present, else the longest
    /// surviving span.
    pub fn duration_ns(&self) -> u64 {
        self.root()
            .map(|s| s.duration_ns)
            .or_else(|| self.spans.iter().map(|s| s.duration_ns).max())
            .unwrap_or(0)
    }
}

/// Latency quantiles for one op kind, from the cluster rollup histogram.
#[derive(Clone, Debug)]
pub struct OpLatency {
    pub op: String,
    pub count: u64,
    pub p50_ns: f64,
    pub p95_ns: f64,
    pub p99_ns: f64,
}

/// Signals derived from the merged view, not scraped from any one shard.
#[derive(Clone, Debug, Default)]
pub struct DerivedSignals {
    /// `100 × max/mean` of per-instance request totals: 100 is perfect
    /// balance, 200 means the hottest shard carries twice the mean.
    pub imbalance_pct: f64,
    /// The *worst* shard's connection headroom (`1 − active/max`): the
    /// cluster saturates when its fullest shard does.
    pub headroom: f64,
    /// The *worst* shard's admission headroom (`1 − queued/limit` over
    /// its bounded admission queues): how close the cluster is to
    /// shedding load. `1.0` when no shard bounds admission.
    pub admission_headroom: f64,
    /// Total ops shed (`Overloaded`) across the cluster, all reasons
    /// (queue full, rate limit, deadline expired in queue).
    pub shed_total: u64,
    /// Highest installed group-view sequence across instances (`0` when
    /// no instance runs a cluster membership plane).
    pub view_epoch: u64,
    /// Alive / suspect member counts as reported by the instance holding
    /// that highest view — the freshest membership opinion scraped.
    pub members_alive: u64,
    pub members_suspect: u64,
    /// Whether every membership-bearing instance reported the same view
    /// epoch this pass. `true` when none did (vacuously converged).
    pub view_converged: bool,
    /// Per-op-kind latency quantiles over all shards.
    pub per_op: Vec<OpLatency>,
}

/// The merged product of one [`ClusterObserver::scrape_all`] pass.
#[derive(Clone, Debug)]
pub struct ClusterScrape {
    /// Per-shard scrapes, map order, reachable shards only.
    pub instances: Vec<InstanceScrape>,
    /// Shard ids whose admin calls failed this pass.
    pub unreachable: Vec<String>,
    /// Every instance's series (`instance=<id>`) plus the cluster rollup
    /// (`instance="cluster"`) in one snapshot.
    pub merged: MetricsSnapshot,
    /// Cross-node traces assembled by id, union of every ring scraped.
    pub traces: Vec<AssembledTrace>,
    pub signals: DerivedSignals,
}

impl ClusterScrape {
    /// The whole cluster as one Prometheus-style exposition.
    pub fn exposition(&self) -> String {
        self.merged.render()
    }

    /// One assembled trace by id.
    pub fn trace(&self, trace_id: u64) -> Option<&AssembledTrace> {
        self.traces.iter().find(|t| t.trace_id == trace_id)
    }

    /// Assembled traces ordered slowest-first.
    pub fn slowest_traces(&self, n: usize) -> Vec<&AssembledTrace> {
        let mut ordered: Vec<&AssembledTrace> = self.traces.iter().collect();
        ordered.sort_by_key(|t| std::cmp::Reverse(t.duration_ns()));
        ordered.truncate(n);
        ordered
    }
}

/// Scrapes a shard cluster's telemetry over the data sockets.
pub struct ClusterObserver {
    shards: Vec<(String, NetClient)>,
    fanout: usize,
}

impl ClusterObserver {
    /// One admin client per shard in `map`. The clients always speak v2
    /// regardless of `rndi.net.proto.version` — the admin vocabulary
    /// only exists in the envelope protocol.
    pub fn new(map: &ShardMap, env: &Environment) -> Result<ClusterObserver> {
        let admin_env = env.clone().with(keys::NET_PROTO_VERSION, "2");
        let shards = map
            .shards()
            .iter()
            .map(|s| NetClient::new(s.endpoint(), &admin_env).map(|c| (s.id().to_string(), c)))
            .collect::<Result<Vec<_>>>()?;
        Ok(ClusterObserver {
            shards,
            fanout: env.get_u64(keys::SHARD_FANOUT, DEFAULT_FANOUT).max(1) as usize,
        })
    }

    /// Scrape every shard concurrently and merge into one cluster view.
    pub fn scrape_all(&self) -> ClusterScrape {
        let legs = fan_out(self.shards.len(), self.fanout, |i| {
            let (id, client) = &self.shards[i];
            let metrics = client.scrape_metrics()?;
            let health = client.scrape_health()?;
            let spans = client.dump_spans()?;
            Ok::<InstanceScrape, rndi_core::error::NamingError>(InstanceScrape {
                id: id.clone(),
                endpoint: client.endpoint().to_string(),
                metrics: metrics.with_label("instance", id),
                health,
                spans,
            })
        });

        let mut instances = Vec::with_capacity(legs.len());
        let mut unreachable = Vec::new();
        for (i, leg) in legs.into_iter().enumerate() {
            match leg {
                Ok(scrape) => instances.push(scrape),
                Err(_) => unreachable.push(self.shards[i].0.clone()),
            }
        }

        // Per-instance series first; the rollup (identity labels dropped,
        // re-stamped instance="cluster") merges in on top. Conservation —
        // rollup totals equal the sum of instance totals — is the merge
        // monoid's associativity, property-tested in rndi-obs.
        let mut merged = MetricsSnapshot::default();
        for inst in &instances {
            merged.merge_from(&inst.metrics);
        }
        let rollup = merged
            .rollup_dropping(INSTANCE_LABELS)
            .with_label("instance", "cluster");
        let signals = derive_signals(&instances, &rollup);
        merged.merge_from(&rollup);

        let traces = assemble_traces(&instances);

        ClusterScrape {
            instances,
            unreachable,
            merged,
            traces,
            signals,
        }
    }
}

/// Group the union of every scraped ring *plus the local ring* (the
/// router and client legs of a trace are recorded in the scraping
/// process, not on any shard) by trace id, deduplicating spans that were
/// somehow scraped twice.
fn assemble_traces(instances: &[InstanceScrape]) -> Vec<AssembledTrace> {
    let local = rndi_obs::trace::ring().snapshot();
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut by_trace: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for span in instances
        .iter()
        .flat_map(|inst| inst.spans.iter())
        .chain(local.iter())
    {
        if seen.insert((span.trace_id, span.span_id)) {
            by_trace
                .entry(span.trace_id)
                .or_default()
                .push(span.clone());
        }
    }
    by_trace
        .into_iter()
        .map(|(trace_id, mut spans)| {
            spans.sort_by_key(|s| (s.depth, s.span_id));
            AssembledTrace { trace_id, spans }
        })
        .collect()
}

fn derive_signals(instances: &[InstanceScrape], rollup: &MetricsSnapshot) -> DerivedSignals {
    let totals: Vec<u64> = instances
        .iter()
        .map(|inst| inst.health.requests_ok + inst.health.requests_err)
        .collect();
    let sum: u64 = totals.iter().sum();
    let imbalance_pct = if sum == 0 || totals.is_empty() {
        100.0
    } else {
        let max = *totals.iter().max().expect("non-empty") as f64;
        let mean = sum as f64 / totals.len() as f64;
        100.0 * max / mean
    };
    let headroom = instances
        .iter()
        .map(|inst| inst.health.headroom())
        .fold(1.0_f64, f64::min);
    let admission_headroom = instances
        .iter()
        .map(|inst| inst.health.admission_headroom())
        .fold(1.0_f64, f64::min);
    let shed_total = instances.iter().map(|inst| inst.health.shed_total).sum();

    // Membership: only instances running a cluster plane report non-zero
    // members (a node always counts itself alive). The rollup takes the
    // freshest opinion — the highest view epoch scraped — and flags
    // whether every membership-bearing instance agreed on it.
    let membered: Vec<&HealthSummary> = instances
        .iter()
        .map(|inst| &inst.health)
        .filter(|h| h.members_alive > 0)
        .collect();
    let view_epoch = membered.iter().map(|h| h.view_epoch).max().unwrap_or(0);
    let freshest = membered.iter().find(|h| h.view_epoch == view_epoch);
    let members_alive = freshest.map_or(0, |h| h.members_alive);
    let members_suspect = freshest.map_or(0, |h| h.members_suspect);
    let view_converged = membered.iter().all(|h| h.view_epoch == view_epoch);

    // The rollup keys request-duration histograms by op alone, so each
    // one is the whole cluster's latency distribution for that op.
    let mut per_op: Vec<OpLatency> = rollup
        .histograms
        .iter()
        .filter(|h| h.name == names::NET_REQUEST_DURATION && h.count > 0)
        .map(|h| OpLatency {
            op: h
                .labels
                .iter()
                .find(|(k, _)| k == "op")
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| "?".to_string()),
            count: h.count,
            p50_ns: h.quantile(0.50).unwrap_or(0.0),
            p95_ns: h.quantile(0.95).unwrap_or(0.0),
            p99_ns: h.quantile(0.99).unwrap_or(0.0),
        })
        .collect();
    per_op.sort_by(|a, b| a.op.cmp(&b.op));

    DerivedSignals {
        imbalance_pct,
        headroom,
        admission_headroom,
        shed_total,
        view_epoch,
        members_alive,
        members_suspect,
        view_converged,
        per_op,
    }
}
