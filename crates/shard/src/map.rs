//! The shard map: which shards exist and where they live.
//!
//! Static configuration for now — a map is built once (programmatically or
//! from [`keys::SHARD_MAP`]) and shared by the router and the serving
//! facade. The `epoch` field exists so membership-change rebalancing can
//! slot in later: a rebalancer publishes a new map with a bumped epoch,
//! and rendezvous hashing guarantees only the keys of departed shards
//! change owners.

use rndi_core::env::{keys, Environment};
use rndi_core::error::{NamingError, Result};

use crate::hash;

/// One shard: a stable identity plus the endpoint serving it.
///
/// Ownership hashes over the *id*, never the endpoint, so a shard can be
/// re-homed (new port, new host) without moving a single key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    id: String,
    endpoint: String,
}

impl ShardInfo {
    pub fn new(id: impl Into<String>, endpoint: impl Into<String>) -> Self {
        ShardInfo {
            id: id.into(),
            endpoint: endpoint.into(),
        }
    }

    pub fn id(&self) -> &str {
        &self.id
    }

    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }
}

/// An immutable set of shards plus the rendezvous owner function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    epoch: u64,
    shards: Vec<ShardInfo>,
}

impl ShardMap {
    /// A map over `shards`. Ids must be non-empty and unique — ownership
    /// is a function of the id, so a duplicate would silently split one
    /// shard's keyspace across two endpoints.
    pub fn new(shards: Vec<ShardInfo>) -> Result<Self> {
        if shards.is_empty() {
            return Err(NamingError::ConfigurationError {
                detail: "shard map must name at least one shard".to_string(),
            });
        }
        for (i, s) in shards.iter().enumerate() {
            if s.id.is_empty() {
                return Err(NamingError::ConfigurationError {
                    detail: format!("shard #{i} has an empty id"),
                });
            }
            if shards[..i].iter().any(|prev| prev.id == s.id) {
                return Err(NamingError::ConfigurationError {
                    detail: format!("duplicate shard id {:?}", s.id),
                });
            }
        }
        Ok(ShardMap { epoch: 0, shards })
    }

    /// The same membership at a different epoch (rebalancing handoff).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Parse a `rndi.shard.map` spec: comma-separated members, each
    /// `id=endpoint` or a bare `endpoint` (which doubles as the id).
    pub fn parse(spec: &str) -> Result<Self> {
        let shards = spec
            .split(',')
            .map(str::trim)
            .filter(|m| !m.is_empty())
            .map(|member| match member.split_once('=') {
                Some((id, endpoint)) => ShardInfo::new(id.trim(), endpoint.trim()),
                None => ShardInfo::new(member, member),
            })
            .collect();
        Self::new(shards)
    }

    /// Build the map named by [`keys::SHARD_MAP`] in `env`.
    pub fn from_env(env: &Environment) -> Result<Self> {
        match env.get(keys::SHARD_MAP) {
            Some(spec) => Self::parse(spec),
            None => Err(NamingError::ConfigurationError {
                detail: format!("property {} is not set", keys::SHARD_MAP),
            }),
        }
    }

    /// The inverse of [`ShardMap::parse`].
    pub fn render(&self) -> String {
        self.shards
            .iter()
            .map(|s| format!("{}={}", s.id, s.endpoint))
            .collect::<Vec<_>>()
            .join(",")
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    /// Index of the shard owning `key`: the highest-random-weight member.
    /// Ties (vanishingly rare with 64-bit weights) break toward the
    /// lexicographically greatest id, so ownership is a pure function of
    /// the membership *set* — permuting the member order never moves a
    /// key.
    pub fn owner_index(&self, key: &str) -> usize {
        let mut best = 0;
        let mut best_weight = hash::weight(&self.shards[0].id, key);
        for (i, shard) in self.shards.iter().enumerate().skip(1) {
            let w = hash::weight(&shard.id, key);
            if w > best_weight || (w == best_weight && shard.id > self.shards[best].id) {
                best = i;
                best_weight = w;
            }
        }
        best
    }

    /// The shard owning `key`.
    pub fn owner(&self, key: &str) -> &ShardInfo {
        &self.shards[self.owner_index(key)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_member_forms_and_round_trips() {
        let map = ShardMap::parse("a=127.0.0.1:7001, b=127.0.0.1:7002").unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map.shards()[0].id(), "a");
        assert_eq!(map.shards()[1].endpoint(), "127.0.0.1:7002");
        assert_eq!(ShardMap::parse(&map.render()).unwrap(), map);

        let bare = ShardMap::parse("127.0.0.1:7001").unwrap();
        assert_eq!(bare.shards()[0].id(), "127.0.0.1:7001");
    }

    #[test]
    fn rejects_empty_and_duplicate_ids() {
        assert!(ShardMap::parse("").is_err());
        assert!(ShardMap::new(vec![]).is_err());
        assert!(ShardMap::parse("a=h:1,a=h:2").is_err());
        assert!(ShardMap::new(vec![ShardInfo::new("", "h:1")]).is_err());
    }

    #[test]
    fn ownership_ignores_member_order_and_endpoints() {
        let fwd = ShardMap::parse("a=h:1,b=h:2,c=h:3").unwrap();
        let rev = ShardMap::parse("c=h:3,a=h:1,b=h:2").unwrap();
        let rehomed = ShardMap::parse("a=elsewhere:9,b=h:2,c=h:3").unwrap();
        for key in ["printers", "apps", "svc-0", "svc-1", "x"] {
            assert_eq!(fwd.owner(key).id(), rev.owner(key).id(), "key {key}");
            assert_eq!(fwd.owner(key).id(), rehomed.owner(key).id(), "key {key}");
        }
    }

    #[test]
    fn from_env_reads_the_map_key() {
        let env = Environment::new().with(keys::SHARD_MAP, "a=h:1,b=h:2");
        assert_eq!(ShardMap::from_env(&env).unwrap().len(), 2);
        assert!(ShardMap::from_env(&Environment::new()).is_err());
    }
}
