//! The routing tier: one [`ProviderBackend`] fronting N shard backends.

use std::sync::Arc;
use std::time::Instant;

use rndi_core::env::{keys, Environment};
use rndi_core::error::{NamingError, Result};
use rndi_core::federation::fan_out;
use rndi_core::name::CompoundSyntax;
use rndi_core::op::{NamingOp, OpKind, OpOutcome, RoutingKey};
use rndi_core::spi::{ProviderBackend, ProviderPipeline};
use rndi_net::NetClient;
use rndi_obs::metrics::{self, names, Counter, Histogram};
use rndi_obs::{SpanOutcome, SpanRecord, TraceCtx};

/// Default scatter fan-out width (overridable via [`keys::SHARD_FANOUT`]).
pub const DEFAULT_FANOUT: u64 = 8;

use crate::map::ShardMap;

/// Routes every [`NamingOp`] to its owner shard by rendezvous hashing
/// over the op's routing key ([`NamingOp::routing_key`] — the normalized
/// first name component).
///
/// `ShardRouter` is itself a [`ProviderBackend`], so
/// [`ProviderPipeline::standard`] composes over it unchanged: callers get
/// cache, retry, marshalling, and obs layers *above* the router, and each
/// shard keeps its own pipeline below (server-side for networked shards).
///
/// Single-key ops go point-to-point to one shard. Whole-namespace ops
/// (`list`/`list_bindings`/`search` at the root, listener removal) scatter
/// across every shard through the bounded fan-out pool shared with
/// federated search and merge deterministically in name order — results
/// are independent of fan-out width and worker scheduling. A `rename`
/// whose source and destination hash to different shards becomes a
/// non-atomic lookup → bind(dst) → unbind(src) move: the destination bind
/// is atomic, so a losing race surfaces as `AlreadyBound` with the source
/// entry intact.
pub struct ShardRouter {
    map: ShardMap,
    backends: Vec<Arc<dyn ProviderBackend>>,
    fanout: usize,
    label: Arc<str>,
    /// Pre-resolved per-shard instrument handles (registry lookups are
    /// too expensive for the per-op path), indexed like `backends`.
    point_routed: Vec<Arc<Counter>>,
    scatter_routed: Vec<Arc<Counter>>,
    fanout_width: Arc<Histogram>,
    imbalance: Arc<Histogram>,
    /// Scatters merged without every shard's answer because one or more
    /// legs were shed (`Overloaded`). The registry counter aggregates
    /// across routers sharing a label; the atomic is this router's own.
    partial_overloaded: Arc<Counter>,
    partials: std::sync::atomic::AtomicU64,
}

impl ShardRouter {
    /// A router over explicit backends, index-aligned with `map.shards()`
    /// — in-process shards in tests and benches, [`NetClient`]s in
    /// production ([`ShardRouter::connect`] builds those).
    pub fn new(
        map: ShardMap,
        backends: Vec<Arc<dyn ProviderBackend>>,
        env: &Environment,
    ) -> Result<Self> {
        if backends.len() != map.len() {
            return Err(NamingError::ConfigurationError {
                detail: format!(
                    "shard map names {} shards but {} backends were supplied",
                    map.len(),
                    backends.len()
                ),
            });
        }
        let label = format!("shard-router({})", map.len());
        let route_counter = |shard: &str, mode: &str| {
            metrics::counter(
                names::SHARD_ROUTED,
                &[("router", &label), ("shard", shard), ("mode", mode)],
            )
        };
        Ok(ShardRouter {
            fanout: env.get_u64(keys::SHARD_FANOUT, DEFAULT_FANOUT).max(1) as usize,
            point_routed: map
                .shards()
                .iter()
                .map(|s| route_counter(s.id(), "point"))
                .collect(),
            scatter_routed: map
                .shards()
                .iter()
                .map(|s| route_counter(s.id(), "scatter"))
                .collect(),
            fanout_width: metrics::histogram(names::SHARD_FANOUT, &[("router", &label)]),
            imbalance: metrics::histogram(names::SHARD_IMBALANCE, &[("router", &label)]),
            partial_overloaded: metrics::counter(
                names::SHARD_PARTIAL,
                &[("router", &label), ("reason", "overloaded")],
            ),
            partials: std::sync::atomic::AtomicU64::new(0),
            map,
            backends,
            label: label.into(),
        })
    }

    /// The networked composition: one pooled v2 [`NetClient`] per shard
    /// endpoint, the router over them, and the standard interceptor stack
    /// over the router — cache hits never cross the wire, retries re-route
    /// through rendezvous hashing, and obs roots every remote trace.
    pub fn connect(map: ShardMap, env: &Environment) -> Result<Arc<ProviderPipeline<ShardRouter>>> {
        let backends = map
            .shards()
            .iter()
            .map(|s| {
                NetClient::new(s.endpoint(), env).map(|c| Arc::new(c) as Arc<dyn ProviderBackend>)
            })
            .collect::<Result<Vec<_>>>()?;
        let router = Arc::new(ShardRouter::new(map, backends, env)?);
        Ok(ProviderPipeline::standard(router, env))
    }

    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The backend serving shard `index` (tests reach through to inspect
    /// per-shard state).
    pub fn backend(&self, index: usize) -> &Arc<dyn ProviderBackend> {
        &self.backends[index]
    }

    /// How many scatters merged without every shard's slice because at
    /// least one leg was shed under overload. Mirrors the
    /// [`names::SHARD_PARTIAL`] counter for in-process callers.
    pub fn partial_scatters(&self) -> u64 {
        self.partials.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Send `op` to one shard, re-annotated with the router's span
    /// context so the shard's own spans (client → server for networked
    /// shards) nest directly under the router span.
    fn leg(&self, index: usize, op: &NamingOp, parent: &TraceCtx) -> Result<OpOutcome> {
        let mut leg = op.clone();
        leg.set_trace_ctx(parent);
        self.backends[index].execute(&leg)
    }

    fn route(&self, op: &NamingOp, span_ctx: &TraceCtx) -> Result<OpOutcome> {
        if op.kind == OpKind::Rename {
            return self.rename(op, span_ctx);
        }
        match op.routing_key() {
            RoutingKey::Shard(key) => {
                let owner = self.map.owner_index(key);
                self.point_routed[owner].inc();
                self.leg(owner, op, span_ctx)
            }
            RoutingKey::Scatter => self.scatter(op, span_ctx),
        }
    }

    fn rename(&self, op: &NamingOp, span_ctx: &TraceCtx) -> Result<OpOutcome> {
        let RoutingKey::Shard(src_key) = op.routing_key() else {
            return Err(NamingError::invalid_name(
                op.name.to_string(),
                "rename source must be a non-empty name",
            ));
        };
        let new_name = op.new_name()?.clone();
        let dst_key = match NamingOp::lookup(new_name.clone()).routing_key() {
            RoutingKey::Shard(k) => k.to_string(),
            RoutingKey::Scatter => {
                return Err(NamingError::invalid_name(
                    new_name.to_string(),
                    "rename destination must be a non-empty name",
                ))
            }
        };
        let src = self.map.owner_index(src_key);
        let dst = self.map.owner_index(&dst_key);
        if src == dst {
            self.point_routed[src].inc();
            return self.leg(src, op, span_ctx);
        }
        // Cross-shard move. Not atomic across shards: a concurrent reader
        // can briefly see the entry under both names. The destination bind
        // is atomic, so a lost race fails with `AlreadyBound` and leaves
        // the source untouched; only the final unbind removes it.
        self.point_routed[src].inc();
        self.point_routed[dst].inc();
        let mut lookup = NamingOp::lookup(op.name.clone());
        lookup.meta = op.meta.clone();
        let value = self
            .leg(src, &lookup, span_ctx)?
            .into_value(OpKind::Lookup)?;
        let mut bind = NamingOp::bind(new_name, value);
        bind.meta = op.meta.clone();
        self.leg(dst, &bind, span_ctx)?.into_done(OpKind::Bind)?;
        let mut unbind = NamingOp::unbind(op.name.clone());
        unbind.meta = op.meta.clone();
        self.leg(src, &unbind, span_ctx)?
            .into_done(OpKind::Unbind)?;
        Ok(OpOutcome::Done)
    }

    /// Fan `op` out to every shard and merge. Merge order is name order —
    /// each name lives on exactly one shard, so sorting the union is a
    /// total order independent of fan-out width and scheduling (the same
    /// determinism contract federated search keeps for its mounts).
    /// Unreachable shards are skipped best-effort unless *every* shard
    /// fails, mirroring federation's dead-mount policy. A leg shed by an
    /// overloaded shard degrades the same way — the merge proceeds
    /// without that shard's slice and the partial is flagged on
    /// [`names::SHARD_PARTIAL`] — but when *all* legs fail and any was
    /// shed, the scatter propagates `Overloaded` (with the largest
    /// `retry_after_ms` hint seen) so callers back off instead of
    /// treating a congested cluster as broken.
    fn scatter(&self, op: &NamingOp, span_ctx: &TraceCtx) -> Result<OpOutcome> {
        match op.kind {
            OpKind::List | OpKind::ListBindings | OpKind::Search | OpKind::RemoveListener => {}
            _ => {
                return Err(NamingError::invalid_name(
                    op.name.to_string(),
                    format!(
                        "{} needs a non-empty name to route to a shard",
                        op.kind.label()
                    ),
                ))
            }
        }
        let n = self.backends.len();
        self.fanout_width.record(n as u64);
        for c in &self.scatter_routed {
            c.inc();
        }
        let legs = fan_out(n, self.fanout, |i| self.leg(i, op, span_ctx));

        if op.kind == OpKind::RemoveListener {
            // Only the owning shard knows the handle; broadcast and treat
            // any success as success.
            let mut first_err = None;
            for leg in legs {
                match leg {
                    Ok(_) => return Ok(OpOutcome::Done),
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
            return Err(first_err.expect("at least one shard"));
        }

        let mut oks = Vec::with_capacity(n);
        let mut first_err = None;
        let mut shed_legs = 0usize;
        let mut max_retry_after = 0u64;
        for leg in legs {
            match leg {
                Ok(outcome) => oks.push(outcome),
                Err(NamingError::Overloaded { retry_after_ms }) => {
                    shed_legs += 1;
                    max_retry_after = max_retry_after.max(retry_after_ms);
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if oks.is_empty() {
            // Total failure: if any shard shed us, the cluster is
            // congested rather than broken — surface the transient error
            // with the most pessimistic back-off hint across shards.
            if shed_legs > 0 {
                return Err(NamingError::Overloaded {
                    retry_after_ms: max_retry_after,
                });
            }
            return Err(first_err.expect("at least one shard"));
        }
        if shed_legs > 0 {
            self.partial_overloaded.inc();
            self.partials
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }

        let sizes: Vec<usize>;
        let merged = match op.kind {
            OpKind::List => {
                let per_shard = oks
                    .into_iter()
                    .map(|o| o.into_names(OpKind::List))
                    .collect::<Result<Vec<_>>>()?;
                sizes = per_shard.iter().map(Vec::len).collect();
                let mut all: Vec<_> = per_shard.into_iter().flatten().collect();
                all.sort_by(|a, b| a.name.cmp(&b.name));
                OpOutcome::Names(all)
            }
            OpKind::ListBindings => {
                let per_shard = oks
                    .into_iter()
                    .map(|o| o.into_bindings(OpKind::ListBindings))
                    .collect::<Result<Vec<_>>>()?;
                sizes = per_shard.iter().map(Vec::len).collect();
                let mut all: Vec<_> = per_shard.into_iter().flatten().collect();
                all.sort_by(|a, b| a.name.cmp(&b.name));
                OpOutcome::Bindings(all)
            }
            OpKind::Search => {
                let per_shard = oks
                    .into_iter()
                    .map(|o| o.into_found(OpKind::Search))
                    .collect::<Result<Vec<_>>>()?;
                sizes = per_shard.iter().map(Vec::len).collect();
                let mut all: Vec<_> = per_shard.into_iter().flatten().collect();
                all.sort_by(|a, b| a.name.cmp(&b.name));
                // Shards each applied the count limit locally; the merged
                // set re-applies it so the cap holds globally — and, being
                // applied after the deterministic sort, it keeps the
                // fanout-independence guarantee.
                if let rndi_core::op::OpPayload::Query { controls, .. } = &op.payload {
                    if controls.count_limit > 0 && all.len() > controls.count_limit {
                        all.truncate(controls.count_limit);
                    }
                }
                OpOutcome::Found(all)
            }
            _ => unreachable!("filtered above"),
        };
        let total: usize = sizes.iter().sum();
        if total > 0 {
            let max = *sizes.iter().max().expect("non-empty") as f64;
            let mean = total as f64 / sizes.len() as f64;
            self.imbalance.record((100.0 * max / mean).round() as u64);
        }
        Ok(merged)
    }
}

impl ProviderBackend for ShardRouter {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        // One router span per op, child of whatever layer called us (the
        // standard pipeline's obs root, usually); per-shard legs hang
        // their client/server spans beneath it.
        let span_ctx = match op.trace_ctx() {
            Some(parent) => parent.child(),
            None => TraceCtx::root(),
        };
        let start = Instant::now();
        let result = self.route(op, &span_ctx);
        let outcome = match &result {
            Ok(_) => SpanOutcome::Ok,
            Err(e) if e.is_continue() => SpanOutcome::Continue,
            Err(_) => SpanOutcome::Err,
        };
        rndi_obs::trace::record(SpanRecord::new(
            &span_ctx,
            "router",
            self.label.to_string(),
            op.kind.label(),
            outcome,
            start.elapsed(),
        ));
        result
    }

    fn provider_id(&self) -> String {
        self.label.to_string()
    }

    fn compound_syntax(&self) -> CompoundSyntax {
        CompoundSyntax::path()
    }
}
