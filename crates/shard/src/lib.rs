//! # rndi-shard — a rendezvous-hash routing tier over N naming shards
//!
//! One registrar/DIT/HDNS store per process caps the directory at one
//! machine's memory and one write lock. This crate partitions the
//! namespace across N shards instead:
//!
//! * [`hash`] — highest-random-weight (rendezvous) hashing: the shard
//!   whose `weight(shard_id, key)` is greatest owns `key`. Stateless,
//!   coordination-free, and minimally disruptive under membership change.
//! * [`ShardMap`] — the membership: shard ids plus the endpoints serving
//!   them (static config today, epoch-stamped for future rebalancing).
//! * [`ShardRouter`] — a [`ProviderBackend`](rndi_core::spi::ProviderBackend)
//!   that routes each op to its owner shard (by the op's
//!   [`routing_key`](rndi_core::op::NamingOp::routing_key) — the first
//!   name component), scattering whole-namespace ops across every shard
//!   with a deterministic name-order merge.
//!
//! The router composes exactly like any other backend:
//!
//! ```text
//! ProviderPipeline::standard          (cache / retry / marshal / obs)
//!   └─ ShardRouter                    (rendezvous routing, scatter merge)
//!        ├─ NetClient → shard 0       (pooled, pipelined v2 transport)
//!        ├─ NetClient → shard 1
//!        └─ …                          each shard: NetServer → provider
//!                                      pipeline → registrar/HDNS store
//! ```

pub mod hash;
pub mod map;
pub mod observer;
pub mod router;

pub use map::{ShardInfo, ShardMap};
pub use observer::{AssembledTrace, ClusterObserver, ClusterScrape, DerivedSignals, OpLatency};
pub use router::ShardRouter;
