//! Rendezvous (highest-random-weight) hashing.
//!
//! Every `(shard, key)` pair gets a pseudo-random 64-bit weight; the shard
//! with the highest weight owns the key. The scheme needs no coordination
//! and no shared ring state, and it has the minimal-disruption property
//! that makes rebalancing tractable: removing a shard moves *only* the
//! keys that shard owned (every other pair's weight is unchanged), and
//! adding one steals only the keys it now wins.

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The splitmix64 finalizer: a full-avalanche bijective mix, so weights
/// for nearby inputs (sequential names, shard-0/shard-1 ids) are
/// statistically independent. FNV alone clusters badly on short
/// suffix-varying strings.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The rendezvous weight of `shard_id` for `key`. Pure and stable across
/// processes and releases — persisted placements (and the bench figures)
/// depend on this function never changing.
pub fn weight(shard_id: &str, key: &str) -> u64 {
    // Mixing the key's hash before combining keeps the pair hash free of
    // extension collisions ("ab"+"c" vs "a"+"bc") without concatenating.
    mix(fnv1a(shard_id.as_bytes()) ^ mix(fnv1a(key.as_bytes())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_stable_and_discriminating() {
        assert_eq!(weight("s1", "apps"), weight("s1", "apps"));
        assert_ne!(weight("s1", "apps"), weight("s2", "apps"));
        assert_ne!(weight("s1", "apps"), weight("s1", "app"));
        // No extension collisions across the pair boundary.
        assert_ne!(weight("ab", "c"), weight("a", "bc"));
    }

    #[test]
    fn weights_spread_across_the_u64_range() {
        let ws: Vec<u64> = (0..64)
            .map(|i| weight("shard-0", &format!("k{i}")))
            .collect();
        let high = ws.iter().filter(|w| **w > u64::MAX / 2).count();
        assert!((16..=48).contains(&high), "top-half weights: {high}/64");
    }
}
