//! Property tests for the rendezvous-hash ownership function: ownership
//! must be a pure function of the membership *set* (permutation-stable),
//! membership change must disrupt minimally (removing a shard moves only
//! that shard's keys), and the assignment must balance.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

use rndi_shard::{ShardInfo, ShardMap};

fn shard_ids() -> impl Strategy<Value = Vec<String>> {
    // Random stems made unique by an index suffix — ownership only needs
    // distinct ids, and this keeps the strategy free of rejection loops.
    proptest::collection::vec(
        proptest::string::string_regex("[a-z][a-z0-9-]{0,11}").unwrap(),
        2..9,
    )
    .prop_map(|stems| {
        stems
            .into_iter()
            .enumerate()
            .map(|(i, stem)| format!("{stem}-{i}"))
            .collect()
    })
}

fn keyset() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::string::string_regex("[ -~]{1,16}").unwrap(),
        1..40,
    )
}

fn map_of(ids: &[String]) -> ShardMap {
    ShardMap::new(
        ids.iter()
            .enumerate()
            .map(|(i, id)| ShardInfo::new(id.clone(), format!("host-{i}:70{i:02}")))
            .collect(),
    )
    .expect("generated ids are unique and non-empty")
}

proptest! {
    /// Ownership ignores the order members are listed in: any permutation
    /// of the same shard set assigns every key to the same shard id.
    #[test]
    fn ownership_is_permutation_stable(ids in shard_ids(), keys in keyset(), seed in any::<u64>()) {
        let forward = map_of(&ids);
        let mut shuffled = ids.clone();
        // Fisher–Yates with a seeded RNG (proptest drives the seed).
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let permuted = map_of(&shuffled);
        for key in &keys {
            prop_assert_eq!(
                forward.owner(key).id(),
                permuted.owner(key).id(),
                "key {:?}", key
            );
        }
    }

    /// Removing one shard moves only the keys that shard owned; every
    /// other key keeps its owner. This is the property that makes
    /// rendezvous hashing rebalance-friendly.
    #[test]
    fn removal_disrupts_only_the_departed_shard(
        ids in shard_ids(),
        keys in keyset(),
        pick in any::<u64>(),
    ) {
        let full = map_of(&ids);
        let victim = (pick % ids.len() as u64) as usize;
        let survivors: Vec<String> = ids
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, id)| id.clone())
            .collect();
        let shrunk = map_of(&survivors);
        for key in &keys {
            let before = full.owner(key).id();
            if before != ids[victim] {
                prop_assert_eq!(shrunk.owner(key).id(), before, "key {:?}", key);
            }
        }
    }
}

/// 100k names across 8 shards land within ±15% of the 12 500 mean —
/// rendezvous over 64-bit mixed hashes behaves like uniform assignment
/// (3σ here is about ±2.5%, so 15% leaves wide margin against an
/// accidental bias in the mixer).
#[test]
fn hundred_thousand_names_balance_within_fifteen_percent() {
    let ids: Vec<String> = (0..8).map(|i| format!("shard-{i}")).collect();
    let map = map_of(&ids);

    let mut rng = ChaCha12Rng::seed_from_u64(0x5eed);
    let mut counts = [0usize; 8];
    for i in 0..100_000u64 {
        // Mix fully random keys with the structured shapes real
        // namespaces use, so the balance claim isn't alphabet-dependent.
        let key = match i % 4 {
            0 => format!("svc-{:x}", rng.gen::<u64>()),
            1 => format!("users/u{:06}", i),
            2 => format!("host{:05}.grid.example", i / 4),
            _ => (0..rng.gen_range(1..=12))
                .map(|_| rng.gen_range(b'a'..=b'z') as char)
                .collect::<String>(),
        };
        counts[map.owner_index(&key)] += 1;
    }

    let mean = 100_000.0 / 8.0;
    for (i, &count) in counts.iter().enumerate() {
        let deviation = (count as f64 - mean).abs() / mean;
        assert!(
            deviation <= 0.15,
            "shard-{i} holds {count} of 100k keys ({:+.1}% from mean; counts {counts:?})",
            100.0 * (count as f64 - mean) / mean
        );
    }
}
