//! The DNS service provider.
//!
//! DNS is the read-only, world-scale root of the paper's federation (§6):
//! "we propose to anchor the federated naming system in DNS, so that a
//! common, well-known service name is resolved to a nearest HDNS node."
//!
//! Mapping: the URL host selects an *anchor domain* (e.g. `global` →
//! `global.emory.edu`); composite-name components become DNS labels under
//! it (reversed — most significant last in DNS). Values live in TXT
//! records; a TXT value that parses as a naming URL is a federation link.
//! Resolution finds the **longest bound prefix**: if it covers the whole
//! name the value is returned, otherwise resolution continues in the
//! naming system the link points at. Updates are administrative (zone
//! edits), so all write operations report `NotSupported` — exactly DNS's
//! "updates are rare and client-driven update is absent" profile.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use minidns::{DnsName, RData, RecordType, ResolveError, Resolver};

use rndi_core::attrs::Attributes;
use rndi_core::context::DirContext;
use rndi_core::env::Environment;
use rndi_core::error::{NamingError, Result};
use rndi_core::name::CompositeName;
use rndi_core::op::{NamingOp, OpKind, OpOutcome};
use rndi_core::spi::{ProviderBackend, ProviderPipeline, UrlContextFactory};
use rndi_core::url::{looks_like_url, RndiUrl};
use rndi_core::value::{BoundValue, Reference};

use crate::common::MsClock;

/// A read-only naming backend over a DNS resolver, rooted at an anchor
/// domain. Implements [`ProviderBackend`]; the full `Context`/`DirContext`
/// surface comes from the [`ProviderPipeline`] wrapper returned by
/// [`DnsProviderContext::new`].
pub struct DnsProviderContext {
    resolver: Arc<Resolver>,
    anchor: DnsName,
    clock: Arc<dyn MsClock>,
    instance: String,
}

impl DnsProviderContext {
    pub fn new(
        resolver: Arc<Resolver>,
        anchor: DnsName,
        clock: Arc<dyn MsClock>,
        instance: &str,
    ) -> Arc<ProviderPipeline<Self>> {
        Self::with_env(resolver, anchor, clock, instance, &Environment::new())
    }

    /// Construct with an environment controlling the pipeline stack
    /// (cache TTL, retry policy).
    pub fn with_env(
        resolver: Arc<Resolver>,
        anchor: DnsName,
        clock: Arc<dyn MsClock>,
        instance: &str,
        env: &Environment,
    ) -> Arc<ProviderPipeline<Self>> {
        ProviderPipeline::standard(
            Arc::new(DnsProviderContext {
                resolver,
                anchor,
                clock,
                instance: instance.to_string(),
            }),
            env,
        )
    }

    /// DNS name for the first `k` components of a composite name:
    /// components map to labels, most significant first in the composite
    /// ⇒ appended leaf-outward under the anchor.
    fn dns_name(&self, name: &CompositeName, k: usize) -> Result<DnsName> {
        let mut out = self.anchor.clone();
        for c in name.components().iter().take(k) {
            out = out.child(c);
            if DnsName::parse(&out.to_string()).is_err() {
                return Err(NamingError::invalid_name(
                    name.to_string(),
                    "component is not a valid DNS label",
                ));
            }
        }
        Ok(out)
    }

    fn txt_at(
        &self,
        dns_name: &DnsName,
        trace: Option<&rndi_obs::TraceCtx>,
    ) -> Result<Option<String>> {
        match self
            .resolver
            .resolve_traced(dns_name, RecordType::Txt, self.clock.now_ms(), trace)
        {
            Ok(rrs) => Ok(rrs.iter().find_map(|rr| match &rr.rdata {
                RData::Txt(t) => Some(t.clone()),
                _ => None,
            })),
            Err(ResolveError::NxDomain(_)) => Ok(None),
            Err(e) => Err(NamingError::service(e.to_string())),
        }
    }

    fn decode(text: &str) -> BoundValue {
        if looks_like_url(text) {
            BoundValue::Reference(Reference::url(text))
        } else {
            BoundValue::Str(text.to_string())
        }
    }

    /// Writes cannot land in DNS itself — but a name whose strict prefix
    /// resolves to a federation link continues into the linked system,
    /// which may well be writable (binding through
    /// `dns://global/…/hdns-entry` is exactly the paper's scenario).
    fn continue_write(
        &self,
        name: &CompositeName,
        trace: Option<&rndi_obs::TraceCtx>,
    ) -> Result<NamingError> {
        for k in (0..name.len()).rev() {
            let dns_name = self.dns_name(name, k)?;
            let Some(text) = self.txt_at(&dns_name, trace)? else {
                continue;
            };
            let value = Self::decode(&text);
            if value.is_federation_link() {
                return Ok(NamingError::Continue {
                    resolved: value,
                    remaining: name.suffix(k),
                });
            }
            break;
        }
        Ok(NamingError::unsupported(
            "DNS updates are administrative (edit the zone)",
        ))
    }

    fn lookup(
        &self,
        name: &CompositeName,
        trace: Option<&rndi_obs::TraceCtx>,
    ) -> Result<BoundValue> {
        if name.is_empty() {
            // The anchor itself: return its TXT value if any.
            let text = self
                .txt_at(&self.anchor, trace)?
                .ok_or_else(|| NamingError::not_found(self.anchor.to_string()))?;
            return Ok(Self::decode(&text));
        }
        // Longest bound prefix wins.
        for k in (0..=name.len()).rev() {
            let dns_name = self.dns_name(name, k)?;
            let Some(text) = self.txt_at(&dns_name, trace)? else {
                continue;
            };
            let value = Self::decode(&text);
            if k == name.len() {
                return Ok(value);
            }
            if value.is_federation_link() {
                return Err(NamingError::Continue {
                    resolved: value,
                    remaining: name.suffix(k),
                });
            }
            return Err(NamingError::NotAContext {
                name: dns_name.to_string(),
            });
        }
        Err(NamingError::not_found(name.to_string()))
    }

    fn get_attributes(
        &self,
        name: &CompositeName,
        trace: Option<&rndi_obs::TraceCtx>,
    ) -> Result<Attributes> {
        // Expose the record's TTL as the sole attribute.
        let dns_name = self.dns_name(name, name.len())?;
        match self
            .resolver
            .resolve_traced(&dns_name, RecordType::Txt, self.clock.now_ms(), trace)
        {
            Ok(rrs) if !rrs.is_empty() => Ok(Attributes::new().with("ttl", rrs[0].ttl.to_string())),
            Ok(_) => Ok(Attributes::new()),
            Err(ResolveError::NxDomain(n)) => Err(NamingError::not_found(n)),
            Err(e) => Err(NamingError::service(e.to_string())),
        }
    }
}

impl ProviderBackend for DnsProviderContext {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        let trace = op.trace_ctx();
        let trace = trace.as_ref();
        match op.kind {
            OpKind::Lookup => self.lookup(&op.name, trace).map(OpOutcome::Value),
            // Writes cannot land in DNS; they either continue through a
            // federation link or report NotSupported.
            OpKind::Bind
            | OpKind::Rebind
            | OpKind::Unbind
            | OpKind::BindWithAttrs
            | OpKind::RebindWithAttrs => Err(self.continue_write(&op.name, trace)?),
            // DNS offers no enumeration (zone transfers are not a client
            // API).
            OpKind::List | OpKind::ListBindings => Err(NamingError::unsupported("DNS enumeration")),
            OpKind::GetAttributes => self.get_attributes(&op.name, trace).map(OpOutcome::Attrs),
            _ => Err(NamingError::unsupported(op.kind.label())),
        }
    }

    fn provider_id(&self) -> String {
        format!("dns:{}@{}", self.instance, self.anchor)
    }

    fn compound_syntax(&self) -> rndi_core::name::CompoundSyntax {
        rndi_core::name::CompoundSyntax::dns()
    }
}

/// URL factory: `dns://anchor/...`. Anchor hosts map to `(resolver,
/// anchor domain)` pairs registered by the deployment. Created pipelines
/// are cached per host, so repeated resolutions share one cache/stats
/// stack instead of rebuilding it per URL hop.
pub struct DnsFactory {
    anchors: Mutex<HashMap<String, (Arc<Resolver>, DnsName)>>,
    contexts: Mutex<HashMap<String, Arc<ProviderPipeline<DnsProviderContext>>>>,
    clock: Arc<dyn MsClock>,
}

impl DnsFactory {
    pub fn new(clock: Arc<dyn MsClock>) -> Arc<Self> {
        Arc::new(DnsFactory {
            anchors: Mutex::new(HashMap::new()),
            contexts: Mutex::new(HashMap::new()),
            clock,
        })
    }

    pub fn register_anchor(&self, host: &str, resolver: Arc<Resolver>, anchor: DnsName) {
        self.anchors
            .lock()
            .insert(host.to_string(), (resolver, anchor));
        self.contexts.lock().remove(host);
    }
}

impl UrlContextFactory for DnsFactory {
    fn scheme(&self) -> &str {
        "dns"
    }

    fn create(&self, url: &RndiUrl, env: &Environment) -> Result<Arc<dyn DirContext>> {
        if let Some(pipeline) = self.contexts.lock().get(&url.host) {
            return Ok(pipeline.clone());
        }
        let (resolver, anchor) = self.anchors.lock().get(&url.host).cloned().ok_or_else(|| {
            NamingError::service(format!("no DNS anchor registered for {}", url.host))
        })?;
        let pipeline =
            DnsProviderContext::with_env(resolver, anchor, self.clock.clone(), &url.host, env);
        self.contexts
            .lock()
            .insert(url.host.clone(), pipeline.clone());
        Ok(pipeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidns::{AuthServer, ResourceRecord, Zone};
    use rndi_core::context::{Context, ContextExt};

    struct ZeroClock;
    impl MsClock for ZeroClock {
        fn now_ms(&self) -> u64 {
            0
        }
    }

    fn world() -> Arc<ProviderPipeline<DnsProviderContext>> {
        let server = AuthServer::new();
        let mut zone = Zone::new(DnsName::parse("global.emory.edu").unwrap());
        zone.insert(ResourceRecord::txt(
            "global.emory.edu",
            60,
            "hdns://host2:8085",
        ));
        zone.insert(ResourceRecord::txt(
            "plain.global.emory.edu",
            60,
            "just-text",
        ));
        zone.insert(ResourceRecord::txt(
            "dcl.mathcs.global.emory.edu",
            60,
            "ldap://ldap-host/ou=dcl",
        ));
        // An intermediate that exists (so the walk can find it) — its
        // parent mathcs has no record, testing longest-prefix skipping.
        server.add_zone(zone);
        let resolver = Arc::new(Resolver::new(vec![server]));
        DnsProviderContext::new(
            resolver,
            DnsName::parse("global.emory.edu").unwrap(),
            Arc::new(ZeroClock),
            "global",
        )
    }

    #[test]
    fn leaf_txt_lookup() {
        let ctx = world();
        assert_eq!(ctx.lookup_str("plain").unwrap().as_str(), Some("just-text"));
    }

    #[test]
    fn url_txt_becomes_reference() {
        let ctx = world();
        let v = ctx.lookup(&CompositeName::empty()).unwrap();
        assert_eq!(
            v.as_reference().unwrap().url_addr(),
            Some("hdns://host2:8085")
        );
    }

    #[test]
    fn anchor_root_federation_continue() {
        // The paper's dns://global/emory/... case: no record for the path,
        // but the anchor itself points at the federation's HDNS layer.
        let ctx = world();
        let err = ctx.lookup(&"emory/mathcs/dcl/mokey".into()).unwrap_err();
        match err {
            NamingError::Continue {
                resolved,
                remaining,
            } => {
                assert_eq!(
                    resolved.as_reference().unwrap().url_addr(),
                    Some("hdns://host2:8085")
                );
                assert_eq!(remaining.to_string(), "emory/mathcs/dcl/mokey");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn longest_prefix_wins() {
        // mathcs/dcl has a record (an LDAP link) even though mathcs alone
        // does not; the walk must find the deeper prefix.
        let ctx = world();
        let err = ctx.lookup(&"mathcs/dcl/mokey".into()).unwrap_err();
        match err {
            NamingError::Continue {
                resolved,
                remaining,
            } => {
                assert_eq!(
                    resolved.as_reference().unwrap().url_addr(),
                    Some("ldap://ldap-host/ou=dcl")
                );
                assert_eq!(remaining.to_string(), "mokey");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn plain_prefix_is_not_a_context() {
        let ctx = world();
        assert!(matches!(
            ctx.lookup(&"plain/deeper".into()),
            Err(NamingError::NotAContext { .. })
        ));
    }

    #[test]
    fn writes_unsupported_without_a_link() {
        // An anchor with no federation TXT: writes have nowhere to go.
        let server = AuthServer::new();
        let mut zone = Zone::new(DnsName::parse("static.example").unwrap());
        zone.insert(ResourceRecord::txt("data.static.example", 60, "text"));
        server.add_zone(zone);
        let ctx = DnsProviderContext::new(
            Arc::new(minidns::Resolver::new(vec![server])),
            DnsName::parse("static.example").unwrap(),
            Arc::new(ZeroClock),
            "static",
        );
        assert!(matches!(
            ctx.bind_str("x", "v"),
            Err(NamingError::NotSupported { .. })
        ));
        // An existing plain record is still not client-writable.
        assert!(matches!(
            ctx.rebind_str("data", "v"),
            Err(NamingError::NotSupported { .. })
        ));
        assert!(matches!(
            ctx.unbind_str("x"),
            Err(NamingError::NotSupported { .. })
        ));
        assert!(matches!(
            ctx.list_str(""),
            Err(NamingError::NotSupported { .. })
        ));
    }

    #[test]
    fn writes_continue_through_the_anchor_link() {
        // The paper's scenario: the anchor TXT points at HDNS; a write
        // through dns://global/... must continue there, not fail.
        let ctx = world();
        let err = ctx.bind_str("emory/newservice", "v").unwrap_err();
        match err {
            NamingError::Continue { remaining, .. } => {
                assert_eq!(remaining.to_string(), "emory/newservice");
            }
            other => panic!("expected Continue, got {other:?}"),
        }
    }

    #[test]
    fn ttl_surfaces_as_attribute() {
        let ctx = world();
        let attrs = ctx.get_attributes(&"plain".into()).unwrap();
        assert_eq!(attrs.get("ttl").unwrap().first_str(), Some("60"));
    }

    #[test]
    fn invalid_label_rejected() {
        let ctx = world();
        assert!(matches!(
            ctx.lookup_str("bad label"),
            Err(NamingError::InvalidName { .. }) | Err(NamingError::NameNotFound { .. })
        ));
    }
}
