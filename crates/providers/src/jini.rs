//! The Jini service provider (paper §5.1).
//!
//! Three impedance mismatches, three resolutions:
//!
//! * **State/object factories** — generic `<name, value, attrs>` tuples
//!   are translated into "fake Jini service stubs" on registration and
//!   back on retrieval: the stub payload is the marshalled value, the
//!   binding name and attribute set travel as Jini attribute entries.
//! * **Leases** — every registration is leased; since JNDI has no
//!   expiration concept, "the provider automatically renews leases of all
//!   entries that it has previously bound, until they are explicitly
//!   removed" (drive with [`JiniProviderContext::poll_leases`]).
//! * **Atomicity** — the LUS registration primitive always overwrites, so
//!   strict `bind` semantics are implemented with Eisenberg–McGuire
//!   mutual exclusion over lock registers stored *in the registry itself*
//!   (each register access is a full LUS round-trip — the ≥8× penalty).
//!   Relaxed mode (`rndi.jini.bind.strict=false`) skips the lock, trading
//!   atomicity for the raw overwrite cost.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use rlus::{
    DiscoveryRealm, Entry, EntryTemplate, Registrar, ServiceId, ServiceItem, ServiceStub,
    ServiceTemplate, Transition,
};

use rndi_core::attrs::{AttrMod, Attributes};
use rndi_core::context::{
    Binding, DirContext, NameClassPair, SearchControls, SearchItem, SearchScope,
};
use rndi_core::env::{keys, Environment};
use rndi_core::error::{NamingError, Result};
use rndi_core::event::EventHub;
use rndi_core::filter::Filter;
use rndi_core::lease::{LeaseRenewalManager, LeaseRenewer};
use rndi_core::name::CompositeName;
use rndi_core::op::{NamingOp, OpKind, OpOutcome, OpPayload};
use rndi_core::spi::{ProviderBackend, ProviderPipeline, UrlContextFactory, WireFormat};
use rndi_core::url::RndiUrl;
use rndi_core::value::BoundValue;

use crate::common::{self, LeaseClockAdapter, MsClock, RlusClock};
use crate::emlock::{EisenbergMcGuire, SharedRegisters};

/// Entry class carrying the binding name.
const BINDING_ENTRY: &str = "RndiBinding";
/// Entry class carrying the serialized attribute set.
const ATTRS_ENTRY: &str = "RndiAttrs";
/// Stub interface type marking provider-managed fake stubs.
const STUB_TYPE: &str = "RndiObject";
/// Prefix marking internal lock registers (hidden from list/search).
const LOCK_PREFIX: &str = "__rndi_lock/";

/// Default lease duration requested for bound entries.
const DEFAULT_LEASE_MS: u64 = 60_000;

/// Derive the stable service id for a binding name, so every client's
/// `rebind` overwrites the same registration.
fn service_id_for(name: &str) -> ServiceId {
    // FNV-1a with two different offset bases.
    fn fnv(seed: u64, s: &str) -> u64 {
        let mut h = seed;
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
    ServiceId::new(fnv(0xcbf29ce484222325, name), fnv(0x9e3779b97f4a7c15, name))
}

fn binding_template(name: &str) -> ServiceTemplate {
    ServiceTemplate::any().with_entry(EntryTemplate::new(BINDING_ENTRY).with("name", name))
}

fn binding_name(item: &ServiceItem) -> Option<&str> {
    item.attribute_sets
        .iter()
        .find(|e| e.class == BINDING_ENTRY)
        .and_then(|e| e.fields.get("name"))
        .map(|s| s.as_str())
}

fn item_attrs(item: &ServiceItem) -> Result<Attributes> {
    item.attribute_sets
        .iter()
        .find(|e| e.class == ATTRS_ENTRY)
        .and_then(|e| e.fields.get("json"))
        .map(|s| common::attrs_from_json(s))
        .unwrap_or_else(|| Ok(Attributes::new()))
}

/// Lock registers stored as registry entries: each read/write is one LUS
/// round-trip, exactly as the paper's distributed lock pays.
struct RegistrarRegisters {
    registrar: Registrar,
    lease_ms: u64,
}

impl SharedRegisters for RegistrarRegisters {
    fn read(&self, key: &str) -> String {
        self.registrar
            .lookup(&binding_template(key))
            .and_then(|item| match common::unmarshal(&item.service.payload) {
                BoundValue::Str(s) => Some(s),
                _ => None,
            })
            .unwrap_or_default()
    }

    fn write(&self, key: &str, value: &str) {
        let item = make_item_value(key, &BoundValue::str(value), &Attributes::new());
        self.registrar.register(item, self.lease_ms);
    }
}

/// Build a fake-stub registration from a pre-marshalled payload (binds
/// arrive wire-encoded from the pipeline's marshalling layer).
fn make_item(
    name: &str,
    payload: Vec<u8>,
    class_name: &str,
    attrs: &Attributes,
) -> Result<ServiceItem> {
    Ok(ServiceItem::new(ServiceStub::new(
        vec![STUB_TYPE.to_string(), class_name.to_string()],
        payload,
    ))
    .with_id(service_id_for(name))
    .with_entry(Entry::new(BINDING_ENTRY).with("name", name))
    .with_entry(Entry::new(ATTRS_ENTRY).with("json", common::attrs_to_json(attrs)?)))
}

/// [`make_item`] for the provider's own plain values (lock registers,
/// tombstones) — these are always simple scalars, so encoding can't fail.
fn make_item_value(name: &str, value: &BoundValue, attrs: &Attributes) -> ServiceItem {
    let payload = common::marshal(value).expect("plain internal value marshals");
    make_item(name, payload, value.class_name(), attrs).expect("plain internal attrs serialize")
}

/// The paper's proposed optimization for strict bind (§5.1): "a
/// proxy-based solution should be adapted so that the necessary locking is
/// performed locally (near the Jini LUS, e.g. on the same host), exposing
/// the atomic interface to the client." The proxy co-locates with the
/// registrar, so its critical section costs a local mutex instead of 10
/// LUS round trips; clients pay one proxy round trip per bind.
pub struct AtomicBindProxy {
    registrar: Registrar,
    lock: Mutex<()>,
}

impl AtomicBindProxy {
    /// Deploy a proxy next to (i.e. sharing a host with) `registrar`.
    pub fn new(registrar: Registrar) -> Arc<Self> {
        Arc::new(AtomicBindProxy {
            registrar,
            lock: Mutex::new(()),
        })
    }

    /// Atomically register `item` under `name` unless the name is taken.
    /// Returns the registration on success, `None` when already bound.
    pub fn bind_if_absent(
        &self,
        name: &str,
        item: ServiceItem,
        lease_ms: u64,
    ) -> Option<rlus::ServiceRegistration> {
        let _guard = self.lock.lock();
        if self.registrar.lookup(&binding_template(name)).is_some() {
            return None;
        }
        Some(self.registrar.register(item, lease_ms))
    }
}

/// Renews registrar leases on behalf of the provider.
struct JiniLeases {
    registrar: Registrar,
    by_name: Mutex<HashMap<String, u64>>,
}

impl LeaseRenewer for JiniLeases {
    fn renew(&self, key: &str, duration_ms: u64) -> Result<u64> {
        let lease_id = self
            .by_name
            .lock()
            .get(key)
            .copied()
            .ok_or_else(|| NamingError::LeaseExpired { name: key.into() })?;
        self.registrar
            .renew_service_lease(lease_id, duration_ms)
            .map(|l| l.expires_at_ms)
            .map_err(|_| NamingError::LeaseExpired { name: key.into() })
    }
}

/// A naming backend over one Jini lookup service. Implements
/// [`ProviderBackend`]; the `Context`/`DirContext` surface comes from the
/// [`ProviderPipeline`] returned by [`JiniProviderContext::new`].
pub struct JiniProviderContext {
    registrar: Registrar,
    strict: bool,
    /// When present (and strict), atomic binds go through the co-located
    /// proxy instead of the distributed lock.
    proxy: Option<Arc<AtomicBindProxy>>,
    lease_ms: u64,
    leases: Arc<JiniLeases>,
    lease_mgr: LeaseRenewalManager,
    lock: EisenbergMcGuire<RegistrarRegisters>,
    hub: Arc<EventHub>,
    instance: String,
}

impl JiniProviderContext {
    /// Wrap a registrar. `clock` must be the same time base the registrar
    /// leases against.
    pub fn new(
        registrar: Registrar,
        clock: Arc<dyn MsClock>,
        env: Environment,
        instance: &str,
    ) -> Arc<ProviderPipeline<Self>> {
        Self::with_proxy(registrar, clock, env, instance, None)
    }

    /// Like [`JiniProviderContext::new`], with an optional co-located
    /// [`AtomicBindProxy`] for the strict-bind fast path.
    pub fn with_proxy(
        registrar: Registrar,
        clock: Arc<dyn MsClock>,
        env: Environment,
        instance: &str,
        proxy: Option<Arc<AtomicBindProxy>>,
    ) -> Arc<ProviderPipeline<Self>> {
        let strict = env.get_bool(keys::JINI_STRICT_BIND, true);
        let lease_ms = env.get_u64(keys::LEASE_MS, DEFAULT_LEASE_MS);
        let slot = env.get_u64("rndi.jini.lock.slot", 0) as usize;
        let slots = env.get_u64("rndi.jini.lock.slots", 2) as usize;
        let leases = Arc::new(JiniLeases {
            registrar: registrar.clone(),
            by_name: Mutex::new(HashMap::new()),
        });
        let lease_mgr = LeaseRenewalManager::new(Arc::new(LeaseClockAdapter(clock.clone())), 0.5);
        let lock = EisenbergMcGuire::new(
            RegistrarRegisters {
                registrar: registrar.clone(),
                // Lock registers live "forever" (renewed by overwriting).
                lease_ms: u64::MAX / 4,
            },
            "bind",
            slot,
            slots.max(slot + 1),
        );
        let backend = Arc::new(JiniProviderContext {
            registrar: registrar.clone(),
            strict,
            proxy,
            lease_ms,
            leases,
            lease_mgr,
            lock,
            hub: Arc::new(EventHub::new()),
            instance: instance.to_string(),
        });
        backend.wire_events();
        ProviderPipeline::standard(backend, &env)
    }

    /// Bridge registrar remote events into the provider's event hub.
    fn wire_events(self: &Arc<Self>) {
        struct Bridge {
            hub: Arc<EventHub>,
        }
        impl rlus::ServiceListener for Bridge {
            fn notify(&self, event: &rlus::ServiceEvent) {
                let Some(name) = event.item.as_ref().and_then(binding_name) else {
                    // Removals carry no item; nothing to name the event
                    // with (a server-side limitation the provider accepts).
                    return;
                };
                if name.starts_with(LOCK_PREFIX) {
                    return;
                }
                let composite = CompositeName::from_components([name.to_string()]);
                let value = event
                    .item
                    .as_ref()
                    .map(|i| common::unmarshal(&i.service.payload));
                match event.transition {
                    Transition::Match => self.hub.fire_added(composite, value.unwrap_or_default()),
                    Transition::Changed => {
                        self.hub
                            .fire_changed(composite, None, value.unwrap_or_default())
                    }
                    Transition::NoMatch => self.hub.fire_removed(composite, value),
                }
            }
        }
        self.registrar.notify(
            ServiceTemplate::any().with_entry(EntryTemplate::new(BINDING_ENTRY)),
            &[Transition::Match, Transition::Changed, Transition::NoMatch],
            Arc::new(Bridge {
                hub: self.hub.clone(),
            }),
            u64::MAX / 4,
        );
    }

    fn single<'n>(&self, name: &'n CompositeName) -> Result<&'n str> {
        match name.components() {
            [one] if !one.is_empty() && !one.starts_with(LOCK_PREFIX) => Ok(one),
            [one] if one.starts_with(LOCK_PREFIX) => Err(NamingError::NoPermission {
                detail: "reserved internal name".into(),
            }),
            [] => Err(NamingError::invalid_name("", "empty name")),
            _ => unreachable!("multi-component handled by resolve()"),
        }
    }

    /// Resolve the head of a multi-component name, signalling federation
    /// continuation — the flat LUS cannot itself hold subcontexts.
    fn resolve<'n>(&self, name: &'n CompositeName) -> Result<ResolveStep<'n>> {
        match name.len() {
            0 => Err(NamingError::invalid_name("", "empty name")),
            1 => Ok(ResolveStep::Here(self.single(name)?)),
            _ => {
                let head = name.head().expect("len >= 1");
                let item = self
                    .registrar
                    .lookup(&binding_template(head))
                    .ok_or_else(|| NamingError::not_found(head))?;
                let value = common::unmarshal(&item.service.payload);
                if value.is_federation_link() {
                    Ok(ResolveStep::Elsewhere {
                        resolved: value,
                        remaining: name.tail(),
                    })
                } else {
                    Err(NamingError::NotAContext {
                        name: head.to_string(),
                    })
                }
            }
        }
    }

    fn register(
        &self,
        name: &str,
        payload: &[u8],
        class_name: &str,
        attrs: &Attributes,
    ) -> Result<()> {
        let item = make_item(name, payload.to_vec(), class_name, attrs)?;
        let reg = self.registrar.register(item, self.lease_ms);
        self.track_lease(name, &reg);
        Ok(())
    }

    fn track_lease(&self, name: &str, reg: &rlus::ServiceRegistration) {
        self.leases
            .by_name
            .lock()
            .insert(name.to_string(), reg.lease.id);
        self.lease_mgr.manage(
            name,
            reg.lease.expires_at_ms,
            self.lease_ms,
            self.leases.clone(),
        );
    }

    fn exists(&self, name: &str) -> bool {
        self.registrar.lookup(&binding_template(name)).is_some()
    }

    fn do_bind(
        &self,
        name: &CompositeName,
        payload: &[u8],
        class_name: &str,
        attrs: Attributes,
    ) -> Result<()> {
        match self.resolve(name)? {
            ResolveStep::Elsewhere {
                resolved,
                remaining,
            } => Err(NamingError::Continue {
                resolved,
                remaining,
            }),
            ResolveStep::Here(flat) => {
                if let (true, Some(proxy)) = (self.strict, &self.proxy) {
                    // The paper's proxy optimization: one round trip, the
                    // lock held locally next to the LUS.
                    let item = make_item(flat, payload.to_vec(), class_name, &attrs)?;
                    match proxy.bind_if_absent(flat, item, self.lease_ms) {
                        Some(reg) => {
                            self.track_lease(flat, &reg);
                            Ok(())
                        }
                        None => Err(NamingError::already_bound(flat)),
                    }
                } else if self.strict {
                    // Distributed lock: check-and-register atomically with
                    // respect to every other strict-mode client.
                    self.lock.with(|| {
                        if self.exists(flat) {
                            return Err(NamingError::already_bound(flat));
                        }
                        self.register(flat, payload, class_name, &attrs)
                    })
                } else {
                    // Relaxed: unlocked check-then-act (the documented
                    // single-writer trade-off).
                    if self.exists(flat) {
                        return Err(NamingError::already_bound(flat));
                    }
                    self.register(flat, payload, class_name, &attrs)
                }
            }
        }
    }

    fn do_rebind(
        &self,
        name: &CompositeName,
        payload: &[u8],
        class_name: &str,
        attrs: Attributes,
    ) -> Result<()> {
        match self.resolve(name)? {
            ResolveStep::Elsewhere {
                resolved,
                remaining,
            } => Err(NamingError::Continue {
                resolved,
                remaining,
            }),
            ResolveStep::Here(flat) => self.register(flat, payload, class_name, &attrs),
        }
    }

    /// Drive client-side lease renewal; returns names whose leases could
    /// not be renewed (their entries have expired remotely).
    pub fn poll_leases(&self) -> Vec<String> {
        self.lease_mgr.poll().failed
    }

    /// Leases currently under management (diagnostics).
    pub fn managed_leases(&self) -> usize {
        self.lease_mgr.len()
    }

    fn visible_items(&self) -> Vec<ServiceItem> {
        self.registrar
            .lookup_all(
                &ServiceTemplate::any().with_entry(EntryTemplate::new(BINDING_ENTRY)),
                0,
            )
            .into_iter()
            .filter(|i| binding_name(i).is_some_and(|n| !n.starts_with(LOCK_PREFIX)))
            .collect()
    }
}

enum ResolveStep<'n> {
    Here(&'n str),
    Elsewhere {
        resolved: BoundValue,
        remaining: CompositeName,
    },
}

impl JiniProviderContext {
    /// Lookup returns the raw stub payload; the pipeline's marshalling
    /// layer decodes it on the way up.
    fn lookup_wire(&self, name: &CompositeName) -> Result<Vec<u8>> {
        match self.resolve(name)? {
            ResolveStep::Elsewhere {
                resolved,
                remaining,
            } => Err(NamingError::Continue {
                resolved,
                remaining,
            }),
            ResolveStep::Here(flat) => {
                let item = self
                    .registrar
                    .lookup(&binding_template(flat))
                    .ok_or_else(|| NamingError::not_found(flat))?;
                Ok(item.service.payload.clone())
            }
        }
    }

    fn unbind(&self, name: &CompositeName) -> Result<()> {
        match self.resolve(name)? {
            ResolveStep::Elsewhere {
                resolved,
                remaining,
            } => Err(NamingError::Continue {
                resolved,
                remaining,
            }),
            ResolveStep::Here(flat) => {
                self.lease_mgr.unmanage(flat);
                let lease_id = self.leases.by_name.lock().remove(flat);
                match lease_id {
                    Some(id) => {
                        let _ = self.registrar.cancel_service_lease(id);
                    }
                    None => {
                        // Someone else bound it; a lease we don't hold can't
                        // be cancelled. Emulate removal by overwriting with
                        // an already-expired registration and sweeping.
                        if self.exists(flat) {
                            let item = make_item_value(flat, &BoundValue::Null, &Attributes::new());
                            self.registrar.register(item, 0);
                            self.registrar.sweep();
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn list(&self, name: &CompositeName) -> Result<Vec<NameClassPair>> {
        if !name.is_empty() {
            return Err(NamingError::NotAContext {
                name: name.to_string(),
            });
        }
        let mut out: Vec<NameClassPair> = self
            .visible_items()
            .iter()
            .map(|item| NameClassPair {
                name: binding_name(item).expect("filtered").to_string(),
                class_name: common::unmarshal(&item.service.payload)
                    .class_name()
                    .to_string(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn list_bindings(&self, name: &CompositeName) -> Result<Vec<Binding>> {
        if !name.is_empty() {
            return Err(NamingError::NotAContext {
                name: name.to_string(),
            });
        }
        let mut out: Vec<Binding> = self
            .visible_items()
            .iter()
            .map(|item| Binding {
                name: binding_name(item).expect("filtered").to_string(),
                value: common::unmarshal(&item.service.payload),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn get_attributes(&self, name: &CompositeName) -> Result<Attributes> {
        match self.resolve(name)? {
            ResolveStep::Elsewhere {
                resolved,
                remaining,
            } => Err(NamingError::Continue {
                resolved,
                remaining,
            }),
            ResolveStep::Here(flat) => {
                let item = self
                    .registrar
                    .lookup(&binding_template(flat))
                    .ok_or_else(|| NamingError::not_found(flat))?;
                item_attrs(&item)
            }
        }
    }

    fn modify_attributes(&self, name: &CompositeName, mods: &[AttrMod]) -> Result<()> {
        match self.resolve(name)? {
            ResolveStep::Elsewhere {
                resolved,
                remaining,
            } => Err(NamingError::Continue {
                resolved,
                remaining,
            }),
            ResolveStep::Here(flat) => {
                let item = self
                    .registrar
                    .lookup(&binding_template(flat))
                    .ok_or_else(|| NamingError::not_found(flat))?;
                let mut attrs = item_attrs(&item)?;
                for m in mods {
                    m.apply(&mut attrs);
                }
                let id = item.service_id.expect("registered items carry ids");
                self.registrar
                    .set_attributes(
                        id,
                        vec![
                            Entry::new(BINDING_ENTRY).with("name", flat),
                            Entry::new(ATTRS_ENTRY).with("json", common::attrs_to_json(&attrs)?),
                        ],
                    )
                    .map_err(|_| NamingError::not_found(flat))
            }
        }
    }

    fn search(
        &self,
        name: &CompositeName,
        filter: &Filter,
        controls: &SearchControls,
    ) -> Result<Vec<SearchItem>> {
        if !name.is_empty() {
            return Err(NamingError::NotAContext {
                name: name.to_string(),
            });
        }
        // The LUS matches templates, not LDAP filters: fetch candidates and
        // evaluate the filter client-side (capability emulation, §3).
        let mut out = Vec::new();
        for item in self.visible_items() {
            if controls.count_limit > 0 && out.len() >= controls.count_limit {
                break;
            }
            if controls.scope == SearchScope::Object {
                continue;
            }
            let attrs = item_attrs(&item)?;
            if filter.matches(&attrs) {
                let attrs = match &controls.return_attrs {
                    Some(ids) => {
                        let ids: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
                        attrs.project(&ids)
                    }
                    None => attrs,
                };
                out.push(SearchItem {
                    name: binding_name(&item).expect("filtered").to_string(),
                    value: controls
                        .return_values
                        .then(|| common::unmarshal(&item.service.payload)),
                    attrs,
                });
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }
}

impl ProviderBackend for JiniProviderContext {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        match op.kind {
            OpKind::Lookup => self.lookup_wire(&op.name).map(OpOutcome::Wire),
            OpKind::Bind => {
                let (payload, class) = op.wire_value()?;
                self.do_bind(&op.name, &payload, &class, Attributes::new())
                    .map(|_| OpOutcome::Done)
            }
            OpKind::Rebind => {
                let (payload, class) = op.wire_value()?;
                self.do_rebind(&op.name, &payload, &class, Attributes::new())
                    .map(|_| OpOutcome::Done)
            }
            OpKind::Unbind => self.unbind(&op.name).map(|_| OpOutcome::Done),
            OpKind::List => self.list(&op.name).map(OpOutcome::Names),
            OpKind::ListBindings => self.list_bindings(&op.name).map(OpOutcome::Bindings),
            OpKind::GetAttributes => self.get_attributes(&op.name).map(OpOutcome::Attrs),
            OpKind::ModifyAttributes => match &op.payload {
                OpPayload::Mods(mods) => self
                    .modify_attributes(&op.name, mods)
                    .map(|_| OpOutcome::Done),
                _ => Err(NamingError::service("modify_attributes payload missing")),
            },
            OpKind::BindWithAttrs => {
                let (payload, class) = op.wire_value()?;
                self.do_bind(
                    &op.name,
                    &payload,
                    &class,
                    op.attrs.clone().unwrap_or_default(),
                )
                .map(|_| OpOutcome::Done)
            }
            OpKind::RebindWithAttrs => {
                let (payload, class) = op.wire_value()?;
                self.do_rebind(
                    &op.name,
                    &payload,
                    &class,
                    op.attrs.clone().unwrap_or_default(),
                )
                .map(|_| OpOutcome::Done)
            }
            OpKind::Search => match &op.payload {
                OpPayload::Query { filter, controls } => self
                    .search(&op.name, filter, controls)
                    .map(OpOutcome::Found),
                _ => Err(NamingError::service("search payload missing")),
            },
            OpKind::AddListener => match &op.payload {
                OpPayload::Listener(l) => Ok(OpOutcome::Subscribed(
                    self.hub.subscribe(op.name.clone(), l.clone()),
                )),
                _ => Err(NamingError::service("add_listener payload missing")),
            },
            OpKind::RemoveListener => match &op.payload {
                OpPayload::Handle(h) => {
                    self.hub.unsubscribe(*h);
                    Ok(OpOutcome::Done)
                }
                _ => Err(NamingError::service("remove_listener payload missing")),
            },
            _ => Err(NamingError::unsupported(op.kind.label())),
        }
    }

    fn provider_id(&self) -> String {
        format!("jini:{}", self.instance)
    }

    fn event_hub(&self) -> Option<Arc<EventHub>> {
        Some(self.hub.clone())
    }

    fn wire_format(&self) -> WireFormat {
        WireFormat::Encoded
    }
}

/// URL factory: `jini://host[:port]/...` resolves through a discovery
/// realm, then wraps the located registrar.
pub struct JiniFactory {
    realm: DiscoveryRealm,
    clock: Arc<dyn rlus::Clock>,
    /// One provider pipeline per located registrar, so lease managers,
    /// event bridges, and cache/stats stacks are shared across lookups of
    /// the same URL.
    cache: Mutex<HashMap<String, Arc<ProviderPipeline<JiniProviderContext>>>>,
}

impl JiniFactory {
    pub fn new(realm: DiscoveryRealm, clock: Arc<dyn rlus::Clock>) -> Arc<Self> {
        Arc::new(JiniFactory {
            realm,
            clock,
            cache: Mutex::new(HashMap::new()),
        })
    }
}

impl UrlContextFactory for JiniFactory {
    fn scheme(&self) -> &str {
        "jini"
    }

    fn create(&self, url: &RndiUrl, env: &Environment) -> Result<Arc<dyn DirContext>> {
        let locator =
            rlus::discovery::LookupLocator::new(url.host.clone(), url.port.unwrap_or(4160));
        let key = format!(
            "{}:{}|strict={}",
            locator.host,
            locator.port,
            env.get_bool(keys::JINI_STRICT_BIND, true)
        );
        if let Some(ctx) = self.cache.lock().get(&key) {
            return Ok(ctx.clone());
        }
        let registrar = self.realm.locate(&locator).ok_or_else(|| {
            NamingError::service(format!("no Jini lookup service at {}", url.authority()))
        })?;
        let ctx = JiniProviderContext::new(
            registrar,
            Arc::new(RlusClock(self.clock.clone())),
            env.clone(),
            &format!("{}:{}", locator.host, locator.port),
        );
        self.cache.lock().insert(key, ctx.clone());
        Ok(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlus::ManualClock;
    use rndi_core::context::{Context, ContextExt, DirContext};
    use rndi_core::event::CollectingListener;
    use rndi_core::value::Reference;

    fn setup(
        strict: bool,
    ) -> (
        Arc<ProviderPipeline<JiniProviderContext>>,
        Registrar,
        Arc<ManualClock>,
    ) {
        let clock = ManualClock::new();
        let registrar = Registrar::new(clock.clone(), 600_000, 9);
        let env = Environment::new().with(
            keys::JINI_STRICT_BIND,
            if strict { "true" } else { "false" },
        );
        let ctx = JiniProviderContext::new(
            registrar.clone(),
            Arc::new(RlusClock(clock.clone() as Arc<dyn rlus::Clock>)),
            env,
            "test",
        );
        (ctx, registrar, clock)
    }

    #[test]
    fn bind_lookup_roundtrip_via_fake_stub() {
        let (ctx, registrar, _) = setup(true);
        ctx.bind_str("printer", "laser-3").unwrap();
        assert_eq!(ctx.lookup_str("printer").unwrap().as_str(), Some("laser-3"));
        // The value really lives in the registry as a stub.
        let item = registrar.lookup(&binding_template("printer")).unwrap();
        assert!(item.service.implements(STUB_TYPE));
    }

    #[test]
    fn strict_bind_is_atomic() {
        let (ctx, _, _) = setup(true);
        ctx.bind_str("k", "1").unwrap();
        assert!(matches!(
            ctx.bind_str("k", "2"),
            Err(NamingError::AlreadyBound { .. })
        ));
        ctx.rebind_str("k", "2").unwrap();
        assert_eq!(ctx.lookup_str("k").unwrap().as_str(), Some("2"));
    }

    #[test]
    fn strict_bind_costs_extra_registrar_roundtrips() {
        let (strict_ctx, strict_reg, _) = setup(true);
        let (relaxed_ctx, relaxed_reg, _) = setup(false);

        strict_ctx.bind_str("a", "v").unwrap();
        relaxed_ctx.bind_str("a", "v").unwrap();

        let s = strict_reg.stats();
        let r = relaxed_reg.stats();
        let strict_ops = s.lookups + s.registrations;
        let relaxed_ops = r.lookups + r.registrations;
        assert!(
            strict_ops >= relaxed_ops + 8,
            "paper's ≥8 extra round trips: strict {strict_ops} vs relaxed {relaxed_ops}"
        );
    }

    #[test]
    fn relaxed_bind_still_detects_existing() {
        let (ctx, _, _) = setup(false);
        ctx.bind_str("k", "1").unwrap();
        assert!(matches!(
            ctx.bind_str("k", "2"),
            Err(NamingError::AlreadyBound { .. })
        ));
    }

    #[test]
    fn rebind_overwrites_same_registration() {
        let (ctx, registrar, _) = setup(false);
        ctx.rebind_str("svc", "v1").unwrap();
        ctx.rebind_str("svc", "v2").unwrap();
        assert_eq!(registrar.item_count(), 1, "stable service id overwrites");
        assert_eq!(ctx.lookup_str("svc").unwrap().as_str(), Some("v2"));
    }

    #[test]
    fn lease_renewal_keeps_binding_alive() {
        let (ctx, registrar, clock) = setup(false);
        ctx.bind_str("leased", "v").unwrap();
        // Without renewal the 60s lease would expire at t=60_000.
        for t in (10_000..=120_000).step_by(10_000) {
            clock.set(t);
            ctx.poll_leases();
            registrar.sweep();
        }
        assert_eq!(
            ctx.lookup_str("leased").unwrap().as_str(),
            Some("v"),
            "provider-side renewal kept the entry alive past 2 lease periods"
        );
    }

    #[test]
    fn without_renewal_entry_expires() {
        let (ctx, registrar, clock) = setup(false);
        ctx.bind_str("mortal", "v").unwrap();
        clock.set(120_000);
        registrar.sweep(); // no poll_leases
        assert!(matches!(
            ctx.lookup_str("mortal"),
            Err(NamingError::NameNotFound { .. })
        ));
    }

    #[test]
    fn unbind_cancels_lease_and_stops_renewal() {
        let (ctx, registrar, _) = setup(false);
        ctx.bind_str("gone", "v").unwrap();
        assert_eq!(ctx.managed_leases(), 1);
        ctx.unbind_str("gone").unwrap();
        assert_eq!(ctx.managed_leases(), 0);
        assert_eq!(registrar.item_count(), 0);
        // Unbinding again is a no-op.
        ctx.unbind_str("gone").unwrap();
    }

    #[test]
    fn unbind_foreign_binding_via_expiry_emulation() {
        let (ctx_a, registrar, clock) = setup(false);
        ctx_a.bind_str("shared", "v").unwrap();
        // A second provider context over the same registrar (no lease map
        // entry for "shared").
        let env = Environment::new().with(keys::JINI_STRICT_BIND, "false");
        let ctx_b = JiniProviderContext::new(
            registrar.clone(),
            Arc::new(RlusClock(clock as Arc<dyn rlus::Clock>)),
            env,
            "b",
        );
        ctx_b.unbind_str("shared").unwrap();
        assert!(ctx_b.lookup_str("shared").is_err());
    }

    #[test]
    fn list_and_search() {
        let (ctx, _, _) = setup(false);
        ctx.bind_with_attrs(
            &"node1".into(),
            BoundValue::str("s1"),
            common::attrs(&[("os", "linux"), ("cpu", "8")]),
        )
        .unwrap();
        ctx.bind_with_attrs(
            &"node2".into(),
            BoundValue::str("s2"),
            common::attrs(&[("os", "windows"), ("cpu", "4")]),
        )
        .unwrap();

        let names: Vec<String> = ctx
            .list_str("")
            .unwrap()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(names, vec!["node1", "node2"]);

        let hits = ctx
            .search(
                &CompositeName::empty(),
                &Filter::parse("(&(os=linux)(cpu>=4))").unwrap(),
                &SearchControls::default(),
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "node1");
    }

    #[test]
    fn attributes_modify() {
        let (ctx, _, _) = setup(false);
        ctx.bind_with_attrs(
            &"e".into(),
            BoundValue::Null,
            common::attrs(&[("state", "up")]),
        )
        .unwrap();
        ctx.modify_attributes(
            &"e".into(),
            &[AttrMod::Replace(rndi_core::attrs::Attribute::single(
                "state", "down",
            ))],
        )
        .unwrap();
        let attrs = ctx.get_attributes(&"e".into()).unwrap();
        assert_eq!(attrs.get("state").unwrap().first_str(), Some("down"));
    }

    #[test]
    fn multi_component_name_continues_through_link() {
        let (ctx, _, _) = setup(false);
        ctx.bind(
            &"far".into(),
            BoundValue::Reference(Reference::url("hdns://host2")),
        )
        .unwrap();
        let err = ctx.lookup(&"far/deep/name".into()).unwrap_err();
        match err {
            NamingError::Continue { remaining, .. } => {
                assert_eq!(remaining.to_string(), "deep/name");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Through a plain value: NotAContext.
        ctx.bind_str("flat", "v").unwrap();
        assert!(matches!(
            ctx.lookup(&"flat/x".into()),
            Err(NamingError::NotAContext { .. })
        ));
    }

    #[test]
    fn events_bridge_to_naming_listeners() {
        let (ctx, _, _) = setup(false);
        let l = CollectingListener::new();
        ctx.add_listener(&CompositeName::empty(), l.clone())
            .unwrap();
        ctx.bind_str("watched", "1").unwrap();
        ctx.rebind_str("watched", "2").unwrap();
        let evs = l.drain();
        use rndi_core::event::EventType::*;
        let kinds: Vec<_> = evs.iter().map(|e| e.event_type).collect();
        assert_eq!(kinds, vec![ObjectAdded, ObjectChanged]);
        assert_eq!(evs[0].name.to_string(), "watched");
    }

    #[test]
    fn proxy_bind_is_atomic_and_cheap() {
        let clock = ManualClock::new();
        let registrar = Registrar::new(clock.clone(), 600_000, 9);
        let proxy = AtomicBindProxy::new(registrar.clone());
        let env = Environment::new().with(keys::JINI_STRICT_BIND, "true");
        let ctx = JiniProviderContext::with_proxy(
            registrar.clone(),
            Arc::new(RlusClock(clock as Arc<dyn rlus::Clock>)),
            env,
            "proxied",
            Some(proxy),
        );
        let before = registrar.stats();
        ctx.bind_str("k", "1").unwrap();
        let after = registrar.stats();
        // One lookup (existence check) + one register — no lock-register
        // traffic at all.
        assert_eq!(after.lookups - before.lookups, 1);
        assert_eq!(after.registrations - before.registrations, 1);

        assert!(matches!(
            ctx.bind_str("k", "2"),
            Err(NamingError::AlreadyBound { .. })
        ));
        // Lease is tracked like any other binding.
        assert_eq!(ctx.managed_leases(), 1);
        ctx.unbind_str("k").unwrap();
        assert_eq!(registrar.item_count(), 0);
    }

    #[test]
    fn proxy_bind_excludes_concurrent_winners() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let clock = ManualClock::new();
        let registrar = Registrar::new(clock, 600_000, 10);
        let proxy = AtomicBindProxy::new(registrar.clone());
        let wins = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..8 {
                let proxy = proxy.clone();
                let wins = wins.clone();
                s.spawn(move || {
                    let item = make_item_value("slot", &BoundValue::I64(t), &Attributes::new());
                    if proxy.bind_if_absent("slot", item, 60_000).is_some() {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one winner");
        assert_eq!(registrar.item_count(), 1);
    }

    #[test]
    fn lock_registers_hidden_from_listing() {
        let (ctx, _, _) = setup(true);
        ctx.bind_str("visible", "v").unwrap(); // strict: creates lock entries
        let names: Vec<String> = ctx
            .list_str("")
            .unwrap()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(names, vec!["visible"], "lock registers filtered out");
    }
}
