//! Eisenberg & McGuire's N-process mutual exclusion.
//!
//! The Jini lookup service offers only overwrite (register) and read
//! (lookup) primitives — no compare-and-set. To give JNDI's `bind` its
//! mandated atomic semantics, the paper "adopts Eisenberg and McGuire's
//! algorithm, which depends only on the basic read and write primitives,
//! but which is rather costly: it takes 3 reads and 5 writes to enter and
//! leave a critical section in the uncontended case", an ≥8× latency
//! penalty over a raw Jini call.
//!
//! The algorithm runs over [`SharedRegisters`] — an abstraction the Jini
//! provider implements with lock entries in the registry itself — and
//! counts its register operations so the benchmark harness can charge each
//! one a full client/registrar round-trip.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared read/write register substrate (N flag registers + `turn`).
pub trait SharedRegisters: Send + Sync {
    /// Read register `key`, returning the empty string when unset.
    fn read(&self, key: &str) -> String;
    /// Write register `key`.
    fn write(&self, key: &str, value: &str);
}

/// Operation counters (for the cost model and the §5.1 claim check).
#[derive(Default)]
pub struct RegisterOps {
    pub reads: AtomicU64,
    pub writes: AtomicU64,
}

impl RegisterOps {
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }
}

/// A counting wrapper around any register substrate.
pub struct CountingRegisters<R> {
    pub inner: R,
    pub ops: Arc<RegisterOps>,
}

impl<R: SharedRegisters> SharedRegisters for CountingRegisters<R> {
    fn read(&self, key: &str) -> String {
        self.ops.reads.fetch_add(1, Ordering::Relaxed);
        self.inner.read(key)
    }
    fn write(&self, key: &str, value: &str) {
        self.ops.writes.fetch_add(1, Ordering::Relaxed);
        self.inner.write(key, value);
    }
}

const IDLE: &str = "idle";
const WAITING: &str = "waiting";
const ACTIVE: &str = "active";

/// `[acquire, release]` counters for the distributed-mutex critical
/// section, resolved once per process.
fn mutex_counters() -> &'static [Arc<rndi_obs::Counter>; 2] {
    static COUNTERS: std::sync::OnceLock<[Arc<rndi_obs::Counter>; 2]> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let name = rndi_obs::metrics::names::MUTEX_EVENTS;
        ["acquire", "release"]
            .map(|event| rndi_obs::metrics::counter(name, &[("lock", "emlock"), ("event", event)]))
    })
}

/// One process's handle on the E&M lock: process index `me` of `n`
/// statically configured slots.
pub struct EisenbergMcGuire<R: SharedRegisters> {
    regs: R,
    lock_name: String,
    me: usize,
    n: usize,
}

impl<R: SharedRegisters> EisenbergMcGuire<R> {
    /// `lock_name` namespaces the registers so independent locks coexist.
    pub fn new(regs: R, lock_name: &str, me: usize, n: usize) -> Self {
        assert!(me < n, "process index out of range");
        EisenbergMcGuire {
            regs,
            lock_name: lock_name.to_string(),
            me,
            n,
        }
    }

    fn flag_key(&self, i: usize) -> String {
        format!("__rndi_lock/{}/flag/{}", self.lock_name, i)
    }

    fn turn_key(&self) -> String {
        format!("__rndi_lock/{}/turn", self.lock_name)
    }

    fn flag(&self, i: usize) -> String {
        let v = self.regs.read(&self.flag_key(i));
        if v.is_empty() {
            IDLE.to_string()
        } else {
            v
        }
    }

    fn set_flag(&self, i: usize, v: &str) {
        self.regs.write(&self.flag_key(i), v);
    }

    fn turn(&self) -> usize {
        self.regs
            .read(&self.turn_key())
            .parse()
            .unwrap_or(0)
            .min(self.n - 1)
    }

    fn set_turn(&self, t: usize) {
        self.regs.write(&self.turn_key(), &t.to_string());
    }

    /// Enter the critical section (spins under contention).
    pub fn lock(&self) {
        loop {
            // Announce intent and defer to whoever holds the turn.
            self.set_flag(self.me, WAITING);
            let mut j = self.turn();
            while j != self.me {
                if self.flag(j) != IDLE {
                    j = self.turn();
                } else {
                    j = (j + 1) % self.n;
                }
            }
            // Tentatively claim.
            self.set_flag(self.me, ACTIVE);
            // Make sure nobody else claimed simultaneously.
            let mut k = 0;
            while k < self.n && (k == self.me || self.flag(k) != ACTIVE) {
                k += 1;
            }
            if k >= self.n {
                let t = self.turn();
                if t == self.me || self.flag(t) == IDLE {
                    self.set_turn(self.me);
                    mutex_counters()[0].inc();
                    return;
                }
            }
            // Lost the race; try again.
        }
    }

    /// Leave the critical section.
    pub fn unlock(&self) {
        // Pass the turn to the next non-idle process (or keep it).
        let turn = self.turn();
        let mut j = (turn + 1) % self.n;
        while j != turn && self.flag(j) == IDLE {
            j = (j + 1) % self.n;
        }
        self.set_turn(j);
        self.set_flag(self.me, IDLE);
        mutex_counters()[1].inc();
    }

    /// Run `f` inside the critical section.
    pub fn with<T>(&self, f: impl FnOnce() -> T) -> T {
        self.lock();
        let out = f();
        self.unlock();
        out
    }
}

/// An in-memory register file (tests and single-process deployments).
#[derive(Default, Clone)]
pub struct MemRegisters {
    map: Arc<parking_lot::RwLock<std::collections::HashMap<String, String>>>,
}

impl SharedRegisters for MemRegisters {
    fn read(&self, key: &str) -> String {
        self.map.read().get(key).cloned().unwrap_or_default()
    }
    fn write(&self, key: &str, value: &str) {
        self.map.write().insert(key.to_string(), value.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_lock_unlock() {
        let regs = MemRegisters::default();
        let lock = EisenbergMcGuire::new(regs, "l", 0, 1);
        lock.lock();
        lock.unlock();
        lock.with(|| ());
    }

    #[test]
    fn uncontended_cost_matches_paper() {
        // "3 reads and 5 writes to enter and leave a critical section in
        // the uncontended case."
        let ops = Arc::new(RegisterOps::default());
        let regs = CountingRegisters {
            inner: MemRegisters::default(),
            ops: ops.clone(),
        };
        let lock = EisenbergMcGuire::new(regs, "l", 0, 2);
        lock.lock();
        lock.unlock();
        let (reads, writes) = ops.snapshot();
        assert!(writes >= 5, "at least the paper's 5 writes, got {writes}");
        assert!(reads >= 3, "at least the paper's 3 reads, got {reads}");
        assert!(
            reads <= 6 && writes <= 6,
            "uncontended case stays cheap: {reads}r/{writes}w"
        );
    }

    #[test]
    fn mutual_exclusion_under_threads() {
        use std::sync::atomic::AtomicI64;
        let regs = MemRegisters::default();
        let in_cs = Arc::new(AtomicI64::new(0));
        let max_seen = Arc::new(AtomicI64::new(0));
        let total = Arc::new(AtomicI64::new(0));
        let n = 4;
        let iters = 200;
        std::thread::scope(|s| {
            for me in 0..n {
                let regs = regs.clone();
                let in_cs = in_cs.clone();
                let max_seen = max_seen.clone();
                let total = total.clone();
                s.spawn(move || {
                    let lock = EisenbergMcGuire::new(regs, "shared", me, n);
                    for _ in 0..iters {
                        lock.lock();
                        let now = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        total.fetch_add(1, Ordering::SeqCst);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                        lock.unlock();
                    }
                });
            }
        });
        assert_eq!(
            max_seen.load(Ordering::SeqCst),
            1,
            "never two processes in the critical section"
        );
        assert_eq!(total.load(Ordering::SeqCst), (n * iters) as i64);
    }

    #[test]
    fn independent_lock_names_do_not_interfere() {
        let regs = MemRegisters::default();
        let a = EisenbergMcGuire::new(regs.clone(), "a", 0, 2);
        let b = EisenbergMcGuire::new(regs, "b", 0, 2);
        a.lock();
        // Same slot, different lock name: no deadlock.
        b.lock();
        b.unlock();
        a.unlock();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_bounds_checked() {
        EisenbergMcGuire::new(MemRegisters::default(), "x", 2, 2);
    }
}
