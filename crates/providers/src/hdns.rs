//! The HDNS service provider (paper §5.2).
//!
//! "The control over the source code of HDNS allowed us to avoid certain
//! problems encountered in the context of Jini. HDNS was designed in a way
//! that mapping through JNDI was simple … a distributed locking algorithm
//! was not needed to implement an atomic bind for HDNS. In fact, all
//! methods from the JNDI DirContext interface are atomic in the HDNS
//! service provider." The same state/object factory translation and lease
//! shape as the Jini provider apply, but every operation maps 1:1 onto a
//! replicated store op whose outcome is decided identically at every
//! replica.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use hdns::{HdnsEntry, HdnsError, HdnsEvent, HdnsRealm};

use rndi_core::attrs::{AttrMod, Attribute, Attributes};
use rndi_core::context::{
    Binding, DirContext, NameClassPair, SearchControls, SearchItem, SearchScope,
};
use rndi_core::env::Environment;
use rndi_core::error::{NamingError, Result};
use rndi_core::event::EventHub;
use rndi_core::filter::Filter;
use rndi_core::name::CompositeName;
use rndi_core::op::{NamingOp, OpKind, OpOutcome, OpPayload};
use rndi_core::spi::{ProviderBackend, ProviderPipeline, UrlContextFactory, WireFormat};
use rndi_core::url::RndiUrl;
use rndi_core::value::BoundValue;

use crate::common;

fn realm_err(e: hdns::realm::RealmError, name: &str) -> NamingError {
    use hdns::realm::RealmError::*;
    match e {
        Store(HdnsError::AlreadyBound(p)) => NamingError::already_bound(p),
        Store(HdnsError::NotFound(p)) => NamingError::not_found(p),
        Store(HdnsError::NotAContext(p)) => NamingError::NotAContext { name: p },
        Store(HdnsError::NotEmpty(p)) => NamingError::ContextNotEmpty { name: p },
        Store(HdnsError::InvalidPath(p)) => NamingError::invalid_name(p, "invalid HDNS path"),
        NodeUnavailable => NamingError::service(format!("HDNS node unavailable for {name}")),
    }
}

/// Encode a marshalled payload + `Attributes` into an HDNS entry (binds
/// arrive wire-encoded from the pipeline's marshalling layer).
fn to_entry(payload: Vec<u8>, attrs: &Attributes) -> HdnsEntry {
    let mut e = HdnsEntry::leaf(payload);
    for a in attrs.iter() {
        let vals: Vec<&str> = a.values.iter().filter_map(|v| v.as_str()).collect();
        e.attrs
            .insert(a.id.clone(), serde_json::to_string(&vals).expect("strings"));
    }
    e
}

fn from_entry_attrs(e: &HdnsEntry) -> Result<Attributes> {
    let mut out = Attributes::new();
    for (id, json) in &e.attrs {
        let vals: Vec<String> = serde_json::from_str(json).map_err(|err| {
            NamingError::service(format!("stored attribute {id} is corrupt: {err}"))
        })?;
        let mut attr = Attribute::new(id.clone());
        for v in vals {
            attr = attr.with(v);
        }
        out.put(attr);
    }
    Ok(out)
}

fn from_entry_value(e: &HdnsEntry) -> BoundValue {
    if e.is_context {
        // Represented to clients as a null placeholder; navigation happens
        // through composite names, not live handles.
        BoundValue::Null
    } else {
        common::unmarshal(&e.value)
    }
}

/// A naming backend over one HDNS replica (reads are replica-local; writes
/// replicate through the group). Implements [`ProviderBackend`]; the
/// `Context`/`DirContext` surface comes from the [`ProviderPipeline`]
/// returned by [`HdnsProviderContext::new`].
pub struct HdnsProviderContext {
    realm: HdnsRealm,
    /// Which replica this context talks to (the paper's "nearest node").
    node: usize,
    hub: Arc<EventHub>,
    instance: String,
}

impl HdnsProviderContext {
    pub fn new(realm: HdnsRealm, node: usize, instance: &str) -> Arc<ProviderPipeline<Self>> {
        Self::with_env(realm, node, instance, &Environment::new())
    }

    /// Construct with an environment controlling the pipeline stack.
    pub fn with_env(
        realm: HdnsRealm,
        node: usize,
        instance: &str,
        env: &Environment,
    ) -> Arc<ProviderPipeline<Self>> {
        ProviderPipeline::standard(
            Arc::new(HdnsProviderContext {
                realm,
                node,
                hub: Arc::new(EventHub::new()),
                instance: instance.to_string(),
            }),
            env,
        )
    }

    fn path(&self, name: &CompositeName) -> Result<String> {
        if name.is_empty() {
            return Err(NamingError::invalid_name("", "empty name"));
        }
        Ok(name.components().join("/"))
    }

    /// Walk the path for a federation mount: the longest bound prefix whose
    /// value is a URL reference diverts resolution elsewhere. Strict
    /// prefixes only — the final component names the mount itself.
    fn check_mount(&self, name: &CompositeName) -> Option<NamingError> {
        self.check_mount_upto(name, name.len())
    }

    /// Like [`Self::check_mount`], but also treats the *full* name as a
    /// potential mount (used by `list`/`search`, whose base may be a
    /// mounted foreign context — the remaining name is then empty).
    fn check_mount_inclusive(&self, name: &CompositeName) -> Option<NamingError> {
        self.check_mount_upto(name, name.len() + 1)
    }

    fn check_mount_upto(&self, name: &CompositeName, upper: usize) -> Option<NamingError> {
        for k in 1..upper.min(name.len() + 1) {
            let prefix = name.prefix(k).components().join("/");
            if let Some(e) = self.realm.lookup(self.node, &prefix) {
                if !e.is_context {
                    let v = common::unmarshal(&e.value);
                    if v.is_federation_link() {
                        return Some(NamingError::Continue {
                            resolved: v,
                            remaining: name.suffix(k),
                        });
                    }
                }
            }
        }
        None
    }

    /// Pump replica events into the provider hub. Driven by write
    /// operations (which already force a realm drive) and by
    /// [`HdnsProviderContext::poll_events`].
    fn drain_events(&self) {
        for ev in self.realm.take_events(self.node) {
            match ev {
                HdnsEvent::Bound { path } => {
                    self.hub.fire_added(path_to_name(&path), BoundValue::Null)
                }
                HdnsEvent::Changed { path } => {
                    self.hub
                        .fire_changed(path_to_name(&path), None, BoundValue::Null)
                }
                HdnsEvent::Removed { path } => self.hub.fire_removed(path_to_name(&path), None),
                HdnsEvent::Renamed { from, to } => {
                    self.hub.fire_removed(path_to_name(&from), None);
                    self.hub.fire_added(path_to_name(&to), BoundValue::Null);
                }
                HdnsEvent::Resynced => {}
            }
        }
    }

    /// Deliver pending replica change events to listeners.
    pub fn poll_events(&self) {
        self.realm.drive();
        self.drain_events();
    }

    fn search_recursive(
        &self,
        base: &str,
        rel: &CompositeName,
        filter: &Filter,
        controls: &SearchControls,
        out: &mut Vec<SearchItem>,
    ) -> Result<()> {
        for (child, entry) in self.realm.list(self.node, base) {
            if controls.count_limit > 0 && out.len() >= controls.count_limit {
                return Ok(());
            }
            let rel_name = rel.child(&child);
            let attrs = from_entry_attrs(&entry)?;
            if filter.matches(&attrs) {
                let attrs = match &controls.return_attrs {
                    Some(ids) => {
                        let ids: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
                        attrs.project(&ids)
                    }
                    None => attrs,
                };
                out.push(SearchItem {
                    name: rel_name.to_string(),
                    value: controls.return_values.then(|| from_entry_value(&entry)),
                    attrs,
                });
            }
            if controls.scope == SearchScope::Subtree && entry.is_context {
                let child_base = if base.is_empty() {
                    child.clone()
                } else {
                    format!("{base}/{child}")
                };
                self.search_recursive(&child_base, &rel_name, filter, controls, out)?;
            }
        }
        Ok(())
    }
}

fn path_to_name(path: &str) -> CompositeName {
    CompositeName::from_components(path.split('/').map(String::from))
}

/// Wrap a wire payload in a trace frame when the op is traced, so the
/// realm's server side can link its span to the client's. The realm strips
/// the frame before storing, keeping stored bytes identical to an untraced
/// client's.
fn frame_payload(payload: Vec<u8>, op: &NamingOp) -> Vec<u8> {
    match op.trace_ctx() {
        Some(ctx) => rndi_obs::frame::wrap(&ctx, &payload),
        None => payload,
    }
}

impl HdnsProviderContext {
    fn lookup(&self, name: &CompositeName) -> Result<BoundValue> {
        if let Some(cont) = self.check_mount(name) {
            return Err(cont);
        }
        let path = self.path(name)?;
        let entry = self
            .realm
            .lookup(self.node, &path)
            .ok_or_else(|| NamingError::not_found(&path))?;
        Ok(from_entry_value(&entry))
    }

    fn unbind(&self, name: &CompositeName) -> Result<()> {
        if let Some(cont) = self.check_mount(name) {
            return Err(cont);
        }
        let path = self.path(name)?;
        let r = self
            .realm
            .unbind(self.node, &path)
            .map_err(|e| realm_err(e, &path));
        self.drain_events();
        r
    }

    fn rename(&self, old: &CompositeName, new: &CompositeName) -> Result<()> {
        let from = self.path(old)?;
        let to = self.path(new)?;
        let r = self
            .realm
            .rename(self.node, &from, &to)
            .map_err(|e| realm_err(e, &from));
        self.drain_events();
        r
    }

    fn list(&self, name: &CompositeName) -> Result<Vec<NameClassPair>> {
        let prefix = if name.is_empty() {
            String::new()
        } else {
            if let Some(cont) = self.check_mount_inclusive(name) {
                return Err(cont);
            }
            self.path(name)?
        };
        Ok(self
            .realm
            .list(self.node, &prefix)
            .into_iter()
            .map(|(n, e)| NameClassPair {
                name: n,
                class_name: if e.is_context {
                    "context".to_string()
                } else {
                    from_entry_value(&e).class_name().to_string()
                },
            })
            .collect())
    }

    fn list_bindings(&self, name: &CompositeName) -> Result<Vec<Binding>> {
        let prefix = if name.is_empty() {
            String::new()
        } else {
            if let Some(cont) = self.check_mount_inclusive(name) {
                return Err(cont);
            }
            self.path(name)?
        };
        Ok(self
            .realm
            .list(self.node, &prefix)
            .into_iter()
            .map(|(n, e)| Binding {
                name: n,
                value: from_entry_value(&e),
            })
            .collect())
    }

    fn create_subcontext(&self, name: &CompositeName) -> Result<()> {
        let path = self.path(name)?;
        let r = self
            .realm
            .create_context(self.node, &path)
            .map_err(|e| realm_err(e, &path));
        self.drain_events();
        r
    }

    fn destroy_subcontext(&self, name: &CompositeName) -> Result<()> {
        let path = self.path(name)?;
        match self.realm.lookup(self.node, &path) {
            None => Ok(()),
            Some(e) if e.is_context => self
                .realm
                .unbind(self.node, &path)
                .map_err(|err| realm_err(err, &path)),
            Some(_) => Err(NamingError::ContextExpected { name: path }),
        }
    }

    fn get_attributes(&self, name: &CompositeName) -> Result<Attributes> {
        if let Some(cont) = self.check_mount(name) {
            return Err(cont);
        }
        let path = self.path(name)?;
        let entry = self
            .realm
            .lookup(self.node, &path)
            .ok_or_else(|| NamingError::not_found(&path))?;
        from_entry_attrs(&entry)
    }

    fn modify_attributes(&self, name: &CompositeName, mods: &[AttrMod]) -> Result<()> {
        let path = self.path(name)?;
        let entry = self
            .realm
            .lookup(self.node, &path)
            .ok_or_else(|| NamingError::not_found(&path))?;
        let mut attrs = from_entry_attrs(&entry)?;
        for m in mods {
            m.apply(&mut attrs);
        }
        let mut map = std::collections::BTreeMap::new();
        for a in attrs.iter() {
            let vals: Vec<&str> = a.values.iter().filter_map(|v| v.as_str()).collect();
            map.insert(a.id.clone(), serde_json::to_string(&vals).expect("strings"));
        }
        let r = self
            .realm
            .set_attrs(self.node, &path, map)
            .map_err(|e| realm_err(e, &path));
        self.drain_events();
        r
    }

    fn bind_with_attrs(
        &self,
        name: &CompositeName,
        payload: Vec<u8>,
        attrs: &Attributes,
    ) -> Result<()> {
        if let Some(cont) = self.check_mount(name) {
            return Err(cont);
        }
        let path = self.path(name)?;
        let entry = to_entry(payload, attrs);
        let r = self
            .realm
            .bind(self.node, &path, entry)
            .map_err(|e| realm_err(e, &path));
        self.drain_events();
        r
    }

    fn rebind_with_attrs(
        &self,
        name: &CompositeName,
        payload: Vec<u8>,
        attrs: &Attributes,
    ) -> Result<()> {
        if let Some(cont) = self.check_mount(name) {
            return Err(cont);
        }
        let path = self.path(name)?;
        let entry = to_entry(payload, attrs);
        let r = self
            .realm
            .rebind(self.node, &path, entry)
            .map_err(|e| realm_err(e, &path));
        self.drain_events();
        r
    }

    fn search(
        &self,
        name: &CompositeName,
        filter: &Filter,
        controls: &SearchControls,
    ) -> Result<Vec<SearchItem>> {
        // HDNS has no server-side query engine; the provider evaluates the
        // filter client-side over a replica-local listing (§3's
        // capability-emulation point).
        let base = if name.is_empty() {
            String::new()
        } else {
            if let Some(cont) = self.check_mount_inclusive(name) {
                return Err(cont);
            }
            self.path(name)?
        };
        let mut out = Vec::new();
        self.search_recursive(&base, &CompositeName::empty(), filter, controls, &mut out)?;
        Ok(out)
    }
}

impl ProviderBackend for HdnsProviderContext {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        match op.kind {
            OpKind::Lookup => self.lookup(&op.name).map(OpOutcome::Value),
            OpKind::Bind | OpKind::BindWithAttrs => {
                let (payload, _) = op.wire_value()?;
                let attrs = op.attrs.clone().unwrap_or_default();
                self.bind_with_attrs(&op.name, frame_payload(payload, op), &attrs)?;
                Ok(OpOutcome::Done)
            }
            OpKind::Rebind | OpKind::RebindWithAttrs => {
                let (payload, _) = op.wire_value()?;
                let attrs = op.attrs.clone().unwrap_or_default();
                self.rebind_with_attrs(&op.name, frame_payload(payload, op), &attrs)?;
                Ok(OpOutcome::Done)
            }
            OpKind::Unbind => self.unbind(&op.name).map(|_| OpOutcome::Done),
            OpKind::Rename => self
                .rename(&op.name, op.new_name()?)
                .map(|_| OpOutcome::Done),
            OpKind::List => self.list(&op.name).map(OpOutcome::Names),
            OpKind::ListBindings => self.list_bindings(&op.name).map(OpOutcome::Bindings),
            OpKind::CreateSubcontext => self.create_subcontext(&op.name).map(|_| OpOutcome::Done),
            OpKind::DestroySubcontext => self.destroy_subcontext(&op.name).map(|_| OpOutcome::Done),
            OpKind::GetAttributes => self.get_attributes(&op.name).map(OpOutcome::Attrs),
            OpKind::ModifyAttributes => match &op.payload {
                OpPayload::Mods(mods) => self
                    .modify_attributes(&op.name, mods)
                    .map(|_| OpOutcome::Done),
                _ => Err(NamingError::service("modify_attributes payload missing")),
            },
            OpKind::Search => match &op.payload {
                OpPayload::Query { filter, controls } => self
                    .search(&op.name, filter, controls)
                    .map(OpOutcome::Found),
                _ => Err(NamingError::service("search payload missing")),
            },
            OpKind::AddListener => match &op.payload {
                OpPayload::Listener(l) => Ok(OpOutcome::Subscribed(
                    self.hub.subscribe(op.name.clone(), l.clone()),
                )),
                _ => Err(NamingError::service("listener payload missing")),
            },
            OpKind::RemoveListener => match &op.payload {
                OpPayload::Handle(h) => {
                    self.hub.unsubscribe(*h);
                    Ok(OpOutcome::Done)
                }
                _ => Err(NamingError::service("listener handle missing")),
            },
        }
    }

    fn provider_id(&self) -> String {
        format!("hdns:{}#{}", self.instance, self.node)
    }

    fn event_hub(&self) -> Option<Arc<EventHub>> {
        Some(self.hub.clone())
    }

    fn wire_format(&self) -> WireFormat {
        WireFormat::Encoded
    }
}

/// URL factory: `hdns://host[:port]/...`. Hosts map to `(realm, replica)`
/// pairs registered by the deployment.
pub struct HdnsFactory {
    hosts: Mutex<HashMap<String, (HdnsRealm, usize)>>,
    /// One pipeline per host, so interceptor state (cache, stats) survives
    /// across `create` calls for the same replica.
    contexts: Mutex<HashMap<String, Arc<ProviderPipeline<HdnsProviderContext>>>>,
}

impl HdnsFactory {
    pub fn new() -> Arc<Self> {
        Arc::new(HdnsFactory {
            hosts: Mutex::new(HashMap::new()),
            contexts: Mutex::new(HashMap::new()),
        })
    }

    /// Register `host` as reaching replica `node` of `realm`.
    pub fn register_host(&self, host: &str, realm: HdnsRealm, node: usize) {
        self.hosts.lock().insert(host.to_string(), (realm, node));
        self.contexts.lock().remove(host);
    }
}

impl UrlContextFactory for HdnsFactory {
    fn scheme(&self) -> &str {
        "hdns"
    }

    fn create(&self, url: &RndiUrl, env: &Environment) -> Result<Arc<dyn DirContext>> {
        if let Some(ctx) = self.contexts.lock().get(&url.host) {
            return Ok(ctx.clone());
        }
        let (realm, node) =
            self.hosts.lock().get(&url.host).cloned().ok_or_else(|| {
                NamingError::service(format!("no HDNS node known as {}", url.host))
            })?;
        let ctx = HdnsProviderContext::with_env(realm, node, &url.host, env);
        self.contexts.lock().insert(url.host.clone(), ctx.clone());
        Ok(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupcast::StackConfig;
    use rndi_core::context::{Context, ContextExt};
    use rndi_core::value::Reference;

    type Pipeline = Arc<ProviderPipeline<HdnsProviderContext>>;

    fn setup() -> (Pipeline, Pipeline) {
        let realm = HdnsRealm::new("t", 2, StackConfig::default(), None, 3);
        let a = HdnsProviderContext::new(realm.clone(), 0, "t");
        let b = HdnsProviderContext::new(realm, 1, "t");
        (a, b)
    }

    #[test]
    fn bind_visible_from_other_replica() {
        let (a, b) = setup();
        a.bind_str("svc", "value").unwrap();
        assert_eq!(b.lookup_str("svc").unwrap().as_str(), Some("value"));
    }

    #[test]
    fn atomic_bind_native() {
        let (a, b) = setup();
        a.bind_str("k", "1").unwrap();
        assert!(matches!(
            b.bind_str("k", "2"),
            Err(NamingError::AlreadyBound { .. })
        ));
        b.rebind_str("k", "2").unwrap();
        assert_eq!(a.lookup_str("k").unwrap().as_str(), Some("2"));
    }

    #[test]
    fn hierarchy_and_listing() {
        let (a, b) = setup();
        a.create_subcontext(&"dept".into()).unwrap();
        a.bind_str("dept/x", "1").unwrap();
        b.bind_str("dept/y", "2").unwrap();
        let names: Vec<String> = b
            .list(&"dept".into())
            .unwrap()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(names, vec!["x", "y"]);
        // Destroy guards.
        assert!(matches!(
            a.destroy_subcontext(&"dept".into()),
            Err(NamingError::ContextNotEmpty { .. })
        ));
        a.unbind_str("dept/x").unwrap();
        a.unbind_str("dept/y").unwrap();
        a.destroy_subcontext(&"dept".into()).unwrap();
    }

    #[test]
    fn attributes_and_search() {
        let (a, b) = setup();
        a.bind_with_attrs(
            &"n1".into(),
            BoundValue::str("s"),
            common::attrs(&[("os", "linux"), ("cpu", "16")]),
        )
        .unwrap();
        a.bind_with_attrs(
            &"n2".into(),
            BoundValue::str("s"),
            common::attrs(&[("os", "irix")]),
        )
        .unwrap();
        let attrs = b.get_attributes(&"n1".into()).unwrap();
        assert_eq!(attrs.get("cpu").unwrap().first_str(), Some("16"));

        let hits = b
            .search(
                &CompositeName::empty(),
                &Filter::parse("(os=linux)").unwrap(),
                &SearchControls::default(),
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "n1");
    }

    #[test]
    fn subtree_search() {
        let (a, _) = setup();
        a.create_subcontext(&"d".into()).unwrap();
        a.bind_with_attrs(
            &"d/deep".into(),
            BoundValue::Null,
            common::attrs(&[("kind", "x")]),
        )
        .unwrap();
        let hits = a
            .search(
                &CompositeName::empty(),
                &Filter::parse("(kind=x)").unwrap(),
                &SearchControls {
                    scope: SearchScope::Subtree,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "d/deep");
    }

    #[test]
    fn federation_mount_continues() {
        let (a, _) = setup();
        a.bind(
            &"jiniCtx".into(),
            BoundValue::Reference(Reference::url("jini://host1")),
        )
        .unwrap();
        let err = a.lookup(&"jiniCtx/service".into()).unwrap_err();
        assert!(err.is_continue());
    }

    #[test]
    fn rename_moves_binding() {
        let (a, b) = setup();
        a.bind_str("old", "v").unwrap();
        a.rename(&"old".into(), &"new".into()).unwrap();
        assert!(b.lookup_str("old").is_err());
        assert_eq!(b.lookup_str("new").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn events_delivered_to_listeners() {
        let (a, b) = setup();
        let l = rndi_core::event::CollectingListener::new();
        b.add_listener(&CompositeName::empty(), l.clone()).unwrap();
        a.bind_str("e", "1").unwrap();
        b.poll_events();
        assert!(l.count() >= 1, "replica 1 saw the replicated bind");
    }

    #[test]
    fn traced_bind_links_server_span_and_stores_bare_payload() {
        let realm = HdnsRealm::new("obs-hdns", 2, StackConfig::default(), None, 3);
        let a = HdnsProviderContext::new(realm.clone(), 0, "obs-hdns");
        let b = HdnsProviderContext::new(realm.clone(), 1, "obs-hdns");
        a.bind_str("traced", "payload").unwrap();
        // The frame is stripped server-side: the stored bytes decode like
        // an untraced write and replicate normally.
        assert_eq!(b.lookup_str("traced").unwrap().as_str(), Some("payload"));
        let raw = realm.lookup(0, "traced").unwrap();
        assert!(!raw.value.starts_with(rndi_obs::frame::MAGIC));
        // And the realm recorded a server span linked into the client's
        // trace: its parent is the client-side span that framed the write.
        let spans = rndi_obs::trace::ring().snapshot();
        let server = spans
            .iter()
            .rev()
            .find(|s| s.layer == "server" && &*s.provider == "hdns:obs-hdns" && s.op == "bind")
            .expect("server span recorded");
        assert_ne!(server.parent_span, 0);
        let trace = rndi_obs::trace::ring().trace(server.trace_id);
        assert!(
            trace
                .iter()
                .any(|s| s.span_id == server.parent_span && s.layer != "server"),
            "server span links to a client-side span in the same trace"
        );
    }

    #[test]
    fn modify_attributes_roundtrip() {
        let (a, b) = setup();
        a.bind_with_attrs(
            &"m".into(),
            BoundValue::Null,
            common::attrs(&[("state", "up")]),
        )
        .unwrap();
        a.modify_attributes(
            &"m".into(),
            &[AttrMod::Add(Attribute::single("note", "ok"))],
        )
        .unwrap();
        let attrs = b.get_attributes(&"m".into()).unwrap();
        assert!(attrs.contains("state") && attrs.contains("note"));
    }
}
