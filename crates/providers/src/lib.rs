//! # rndi-providers — service providers for heterogeneous backends
//!
//! The paper's §5: each provider maps the RNDI (JNDI-analog) API onto one
//! backend, hiding its heterogeneity behind the common `DirContext`
//! surface while emulating missing capabilities client-side.
//!
//! * [`jini`] — the Jini provider. Generic `<name, value, attrs>` tuples
//!   become "fake service stubs" via state/object factory translation;
//!   leases are renewed inside the provider; and atomic `bind` is built on
//!   the overwrite-only registry with [`emlock`] — Eisenberg & McGuire's
//!   N-process mutual exclusion over shared read/write registers (3 reads
//!   plus 5 writes per uncontended critical section, the ≥8× latency penalty
//!   of §5.1) — switchable to *relaxed* semantics via the environment
//!   property `rndi.jini.bind.strict`.
//! * [`hdns`] — the HDNS provider: a thin, natively atomic mapping (HDNS
//!   was designed with the JNDI mapping in mind).
//! * [`dns`] — a read-only provider over `minidns`; TXT records carrying
//!   URLs act as federation links, which is how a DNS name anchors the
//!   whole federated namespace (§6).
//! * [`ldap`] — a provider over `dirserv`, mapping composite names to DNs
//!   and RNDI filters to LDAP filters.
//! * [`fs`] — local filesystem storage (bindings as files), the
//!   "filesystem provider" JNDI ships with.
//!
//! Every provider registers a [`rndi_core::spi::UrlContextFactory`] with a
//! host registry, so `jini://host1/name` style URLs resolve to deployed
//! backend instances.

pub mod common;
pub mod dns;
pub mod emlock;
pub mod fs;
pub mod hdns;
pub mod jini;
pub mod ldap;

pub use dns::{DnsFactory, DnsProviderContext};
pub use emlock::{EisenbergMcGuire, RegisterOps, SharedRegisters};
pub use fs::{FsContext, FsFactory};
pub use hdns::{HdnsFactory, HdnsProviderContext};
pub use jini::{AtomicBindProxy, JiniFactory, JiniProviderContext};
pub use ldap::{LdapFactory, LdapProviderContext};
