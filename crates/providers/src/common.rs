//! Shared helpers: marshalling and clock plumbing.

use std::sync::Arc;

use rndi_core::attrs::{AttrValue, Attribute, Attributes};
use rndi_core::error::{NamingError, Result};
use rndi_core::value::{BoundValue, StoredValue};

/// Marshal a bound value into provider-storable bytes. Live contexts are
/// rejected — bind a [`rndi_core::value::Reference::url`] instead (the
/// durable representation of a federation link).
pub fn marshal(value: &BoundValue) -> Result<Vec<u8>> {
    let stored = StoredValue::try_from_bound(value).ok_or_else(|| {
        NamingError::unsupported("binding a live context; bind a URL reference instead")
    })?;
    Ok(stored.encode())
}

/// Unmarshal provider bytes back into a bound value. Undecodable bytes
/// surface as raw `Bytes` (foreign data bound by non-RNDI clients).
pub fn unmarshal(bytes: &[u8]) -> BoundValue {
    match StoredValue::decode(bytes) {
        Some(s) => s.into_bound(),
        None => BoundValue::Bytes(bytes.to_vec()),
    }
}

/// Serialize an attribute set to a JSON string (for backends whose
/// attribute model is flat strings).
pub fn attrs_to_json(attrs: &Attributes) -> String {
    serde_json::to_string(attrs).expect("attributes serialize")
}

/// Parse attributes serialized with [`attrs_to_json`].
pub fn attrs_from_json(s: &str) -> Attributes {
    serde_json::from_str(s).unwrap_or_default()
}

/// Milliseconds clock shared between providers and simulated backends.
pub trait MsClock: Send + Sync {
    fn now_ms(&self) -> u64;
}

/// Adapt an `rlus` clock (manual or system) into [`MsClock`].
pub struct RlusClock(pub Arc<dyn rlus::Clock>);

impl MsClock for RlusClock {
    fn now_ms(&self) -> u64 {
        self.0.now_ms()
    }
}

/// Adapt [`MsClock`] into the core lease clock.
pub struct LeaseClockAdapter(pub Arc<dyn MsClock>);

impl rndi_core::lease::LeaseClock for LeaseClockAdapter {
    fn now_ms(&self) -> u64 {
        self.0.now_ms()
    }
}

/// Build a single-valued attribute list from `(id, value)` pairs — a
/// convenience for tests and examples.
pub fn attrs(pairs: &[(&str, &str)]) -> Attributes {
    pairs
        .iter()
        .map(|(k, v)| Attribute {
            id: k.to_string(),
            values: vec![AttrValue::Str(v.to_string())],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rndi_core::value::Reference;

    #[test]
    fn marshal_roundtrip() {
        let v = BoundValue::str("hello");
        let bytes = marshal(&v).unwrap();
        assert_eq!(unmarshal(&bytes), v);

        let r = BoundValue::Reference(Reference::url("jini://h"));
        assert_eq!(unmarshal(&marshal(&r).unwrap()), r);
    }

    #[test]
    fn marshal_rejects_live_context() {
        use rndi_core::mem::MemContext;
        use std::sync::Arc as StdArc;
        let v = BoundValue::Context(StdArc::new(MemContext::new()));
        assert!(matches!(
            marshal(&v),
            Err(NamingError::NotSupported { .. })
        ));
    }

    #[test]
    fn foreign_bytes_pass_through() {
        let v = unmarshal(b"\x00\x01 not json");
        assert!(matches!(v, BoundValue::Bytes(_)));
    }

    #[test]
    fn attrs_json_roundtrip() {
        let a = attrs(&[("os", "linux"), ("cpu", "8")]);
        let s = attrs_to_json(&a);
        let back = attrs_from_json(&s);
        assert_eq!(back, a);
        assert_eq!(attrs_from_json("garbage").len(), 0);
    }
}
