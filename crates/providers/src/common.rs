//! Shared helpers: marshalling and clock plumbing.

use std::sync::Arc;

use rndi_core::attrs::{AttrValue, Attribute, Attributes};
use rndi_core::error::{NamingError, Result};

// The marshalling codec moved into the core op module (it is now also an
// interceptor concern, not just a provider one); re-exported here so
// provider code keeps its historical imports.
pub use rndi_core::op::codec::{marshal, unmarshal};

/// Serialize an attribute set to a JSON string (for backends whose
/// attribute model is flat strings).
pub fn attrs_to_json(attrs: &Attributes) -> Result<String> {
    serde_json::to_string(attrs)
        .map_err(|e| NamingError::service(format!("attributes did not serialize: {e}")))
}

/// Parse attributes serialized with [`attrs_to_json`]. Corrupt input is an
/// error — silently dropping a stored attribute set would make bindings
/// "lose" their directory entries without a trace.
pub fn attrs_from_json(s: &str) -> Result<Attributes> {
    serde_json::from_str(s)
        .map_err(|e| NamingError::service(format!("stored attributes are corrupt: {e}")))
}

/// Milliseconds clock shared between providers and simulated backends.
pub trait MsClock: Send + Sync {
    fn now_ms(&self) -> u64;
}

/// Adapt an `rlus` clock (manual or system) into [`MsClock`].
pub struct RlusClock(pub Arc<dyn rlus::Clock>);

impl MsClock for RlusClock {
    fn now_ms(&self) -> u64 {
        self.0.now_ms()
    }
}

/// Adapt [`MsClock`] into the core lease clock.
pub struct LeaseClockAdapter(pub Arc<dyn MsClock>);

impl rndi_core::lease::LeaseClock for LeaseClockAdapter {
    fn now_ms(&self) -> u64 {
        self.0.now_ms()
    }
}

/// Build a single-valued attribute list from `(id, value)` pairs — a
/// convenience for tests and examples.
pub fn attrs(pairs: &[(&str, &str)]) -> Attributes {
    pairs
        .iter()
        .map(|(k, v)| Attribute {
            id: k.to_string(),
            values: vec![AttrValue::Str(v.to_string())],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rndi_core::value::{BoundValue, Reference};

    #[test]
    fn marshal_roundtrip() {
        let v = BoundValue::str("hello");
        let bytes = marshal(&v).unwrap();
        assert_eq!(unmarshal(&bytes), v);

        let r = BoundValue::Reference(Reference::url("jini://h"));
        assert_eq!(unmarshal(&marshal(&r).unwrap()), r);
    }

    #[test]
    fn marshal_rejects_live_context() {
        use rndi_core::mem::MemContext;
        use std::sync::Arc as StdArc;
        let v = BoundValue::Context(StdArc::new(MemContext::new()));
        assert!(matches!(marshal(&v), Err(NamingError::NotSupported { .. })));
    }

    #[test]
    fn foreign_bytes_pass_through() {
        let v = unmarshal(b"\x00\x01 not json");
        assert!(matches!(v, BoundValue::Bytes(_)));
    }

    #[test]
    fn attrs_json_roundtrip() {
        let a = attrs(&[("os", "linux"), ("cpu", "8")]);
        let s = attrs_to_json(&a).unwrap();
        let back = attrs_from_json(&s).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn corrupt_attrs_surface_as_errors() {
        assert!(matches!(
            attrs_from_json("garbage"),
            Err(NamingError::ServiceFailure { .. })
        ));
    }
}
