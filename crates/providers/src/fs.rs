//! The filesystem service provider.
//!
//! JNDI ships a provider that exposes the local filesystem as a naming
//! service; the paper lists "a local filesystem storage" among the systems
//! its federation can incorporate. Mapping: a subcontext is a directory; a
//! binding `x` is a file `x.val` holding the marshalled value, with an
//! optional sibling `x.attrs` holding the attribute set as JSON.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use rndi_core::attrs::{AttrMod, Attributes};
use rndi_core::context::{
    Binding, DirContext, NameClassPair, SearchControls, SearchItem, SearchScope,
};
use rndi_core::env::Environment;
use rndi_core::error::{NamingError, Result};
use rndi_core::filter::Filter;
use rndi_core::name::CompositeName;
use rndi_core::op::{NamingOp, OpKind, OpOutcome, OpPayload};
use rndi_core::spi::{ProviderBackend, ProviderPipeline, UrlContextFactory, WireFormat};
use rndi_core::url::RndiUrl;
use rndi_core::value::BoundValue;

use crate::common;

const VAL_EXT: &str = "val";
const ATTR_EXT: &str = "attrs";

fn io_err(e: std::io::Error, what: &str) -> NamingError {
    NamingError::service(format!("filesystem provider: {what}: {e}"))
}

/// `[read, write]` byte counters for value payloads, resolved once per
/// process.
fn io_counters() -> &'static [Arc<rndi_obs::Counter>; 2] {
    static COUNTERS: std::sync::OnceLock<[Arc<rndi_obs::Counter>; 2]> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let name = rndi_obs::metrics::names::IO_BYTES;
        ["read", "write"]
            .map(|dir| rndi_obs::metrics::counter(name, &[("provider", "fs"), ("dir", dir)]))
    })
}

/// Read a value file, tallying the bytes moved.
fn read_val_file(path: &Path) -> std::io::Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    io_counters()[0].add(bytes.len() as u64);
    Ok(bytes)
}

/// A naming backend rooted at a directory. Implements [`ProviderBackend`];
/// the `Context`/`DirContext` surface comes from the [`ProviderPipeline`]
/// returned by [`FsContext::new`].
pub struct FsContext {
    root: PathBuf,
    /// Serializes multi-step operations (bind = probe + write).
    lock: Mutex<()>,
}

impl FsContext {
    pub fn new(root: impl Into<PathBuf>) -> Arc<ProviderPipeline<Self>> {
        Self::with_env(root, &Environment::new())
    }

    /// Construct with an environment controlling the pipeline stack.
    pub fn with_env(root: impl Into<PathBuf>, env: &Environment) -> Arc<ProviderPipeline<Self>> {
        ProviderPipeline::standard(
            Arc::new(FsContext {
                root: root.into(),
                lock: Mutex::new(()),
            }),
            env,
        )
    }

    /// Validate a component: no path tricks.
    fn check_component(c: &str) -> Result<&str> {
        if c.is_empty()
            || c == "."
            || c == ".."
            || c.contains('/')
            || c.contains('\\')
            || c.contains('\0')
        {
            return Err(NamingError::invalid_name(c, "illegal path component"));
        }
        Ok(c)
    }

    /// Resolve the directory holding the final component, honouring
    /// federation mounts (a `.val` file met mid-path that stores a URL).
    fn parent_dir(&self, name: &CompositeName) -> Result<(PathBuf, String)> {
        if name.is_empty() {
            return Err(NamingError::invalid_name("", "empty name"));
        }
        let mut dir = self.root.clone();
        let n = name.len();
        for (i, c) in name.components().iter().enumerate() {
            let c = Self::check_component(c)?;
            if i == n - 1 {
                return Ok((dir, c.to_string()));
            }
            let sub = dir.join(c);
            if sub.is_dir() {
                dir = sub;
                continue;
            }
            let val = dir.join(format!("{c}.{VAL_EXT}"));
            if val.is_file() {
                let bytes = read_val_file(&val).map_err(|e| io_err(e, "read"))?;
                let v = common::unmarshal(&bytes);
                if v.is_federation_link() {
                    return Err(NamingError::Continue {
                        resolved: v,
                        remaining: name.suffix(i + 1),
                    });
                }
                return Err(NamingError::NotAContext {
                    name: name.prefix(i + 1).to_string(),
                });
            }
            return Err(NamingError::not_found(name.prefix(i + 1).to_string()));
        }
        unreachable!("loop returns on the last component");
    }

    fn val_path(dir: &Path, leaf: &str) -> PathBuf {
        dir.join(format!("{leaf}.{VAL_EXT}"))
    }

    fn attr_path(dir: &Path, leaf: &str) -> PathBuf {
        dir.join(format!("{leaf}.{ATTR_EXT}"))
    }

    /// Missing attribute files mean "no attributes"; present-but-corrupt
    /// files are an error (see [`common::attrs_from_json`]).
    fn read_attrs(dir: &Path, leaf: &str) -> Result<Attributes> {
        match std::fs::read_to_string(Self::attr_path(dir, leaf)) {
            Ok(s) => common::attrs_from_json(&s),
            Err(_) => Ok(Attributes::new()),
        }
    }

    fn write_attrs(dir: &Path, leaf: &str, attrs: &Attributes) -> Result<()> {
        if attrs.is_empty() {
            let _ = std::fs::remove_file(Self::attr_path(dir, leaf));
            return Ok(());
        }
        std::fs::write(Self::attr_path(dir, leaf), common::attrs_to_json(attrs)?)
            .map_err(|e| io_err(e, "write attrs"))
    }

    fn do_bind(
        &self,
        name: &CompositeName,
        bytes: &[u8],
        attrs: Attributes,
        overwrite: bool,
    ) -> Result<()> {
        let (dir, leaf) = self.parent_dir(name)?;
        let _guard = self.lock.lock();
        let val = Self::val_path(&dir, &leaf);
        if !overwrite && (val.exists() || dir.join(&leaf).is_dir()) {
            return Err(NamingError::already_bound(name.to_string()));
        }
        if dir.join(&leaf).is_dir() {
            return Err(NamingError::already_bound(format!("{name} (a subcontext)")));
        }
        std::fs::create_dir_all(&dir).map_err(|e| io_err(e, "mkdir"))?;
        std::fs::write(&val, bytes).map_err(|e| io_err(e, "write"))?;
        io_counters()[1].add(bytes.len() as u64);
        Self::write_attrs(&dir, &leaf, &attrs)
    }

    fn dir_of(&self, name: &CompositeName) -> Result<PathBuf> {
        if name.is_empty() {
            return Ok(self.root.clone());
        }
        let (dir, leaf) = self.parent_dir(name)?;
        let sub = dir.join(&leaf);
        if sub.is_dir() {
            Ok(sub)
        } else if Self::val_path(&dir, &leaf).exists() {
            Err(NamingError::ContextExpected {
                name: name.to_string(),
            })
        } else {
            Err(NamingError::not_found(name.to_string()))
        }
    }

    fn entries_in(&self, dir: &Path) -> Result<Vec<(String, EntryKind)>> {
        let mut out = Vec::new();
        let rd = match std::fs::read_dir(dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(io_err(e, "readdir")),
        };
        for entry in rd {
            let entry = entry.map_err(|e| io_err(e, "readdir"))?;
            let file_name = entry.file_name().to_string_lossy().to_string();
            let path = entry.path();
            if path.is_dir() {
                out.push((file_name, EntryKind::Dir));
            } else if let Some(stem) = file_name.strip_suffix(&format!(".{VAL_EXT}")) {
                out.push((stem.to_string(), EntryKind::Value));
            }
        }
        out.sort();
        Ok(out)
    }

    fn search_dir(
        &self,
        dir: &Path,
        rel: &CompositeName,
        filter: &Filter,
        controls: &SearchControls,
        out: &mut Vec<SearchItem>,
    ) -> Result<()> {
        for (child, kind) in self.entries_in(dir)? {
            if controls.count_limit > 0 && out.len() >= controls.count_limit {
                return Ok(());
            }
            let rel_name = rel.child(&child);
            let attrs = Self::read_attrs(dir, &child)?;
            if filter.matches(&attrs) {
                let attrs = match &controls.return_attrs {
                    Some(ids) => {
                        let ids: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
                        attrs.project(&ids)
                    }
                    None => attrs,
                };
                let value = if controls.return_values && kind == EntryKind::Value {
                    let bytes = read_val_file(&Self::val_path(dir, &child))
                        .map_err(|e| io_err(e, "read"))?;
                    Some(common::unmarshal(&bytes))
                } else {
                    None
                };
                out.push(SearchItem {
                    name: rel_name.to_string(),
                    value,
                    attrs,
                });
            }
            if controls.scope == SearchScope::Subtree && kind == EntryKind::Dir {
                self.search_dir(&dir.join(&child), &rel_name, filter, controls, out)?;
            }
        }
        Ok(())
    }
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum EntryKind {
    Dir,
    Value,
}

impl FsContext {
    fn lookup(&self, name: &CompositeName) -> Result<BoundValue> {
        if name.is_empty() {
            return Err(NamingError::invalid_name("", "empty name"));
        }
        let (dir, leaf) = self.parent_dir(name)?;
        let val = Self::val_path(&dir, &leaf);
        if val.is_file() {
            let bytes = read_val_file(&val).map_err(|e| io_err(e, "read"))?;
            return Ok(common::unmarshal(&bytes));
        }
        if dir.join(&leaf).is_dir() {
            // Subcontexts are navigated by composite name; represent the
            // handle as a null placeholder like the HDNS provider.
            return Ok(BoundValue::Null);
        }
        Err(NamingError::not_found(name.to_string()))
    }

    fn unbind(&self, name: &CompositeName) -> Result<()> {
        let (dir, leaf) = self.parent_dir(name)?;
        let _guard = self.lock.lock();
        let sub = dir.join(&leaf);
        if sub.is_dir() {
            if std::fs::read_dir(&sub)
                .map(|mut d| d.next().is_some())
                .unwrap_or(false)
            {
                return Err(NamingError::ContextNotEmpty {
                    name: name.to_string(),
                });
            }
            std::fs::remove_dir(&sub).map_err(|e| io_err(e, "rmdir"))?;
            return Ok(());
        }
        let _ = std::fs::remove_file(Self::val_path(&dir, &leaf));
        let _ = std::fs::remove_file(Self::attr_path(&dir, &leaf));
        Ok(())
    }

    fn rename(&self, old: &CompositeName, new: &CompositeName) -> Result<()> {
        let (odir, oleaf) = self.parent_dir(old)?;
        let (ndir, nleaf) = self.parent_dir(new)?;
        let _guard = self.lock.lock();
        let oval = Self::val_path(&odir, &oleaf);
        let nval = Self::val_path(&ndir, &nleaf);
        if !oval.is_file() {
            return Err(NamingError::not_found(old.to_string()));
        }
        if nval.exists() || ndir.join(&nleaf).is_dir() {
            return Err(NamingError::already_bound(new.to_string()));
        }
        std::fs::rename(&oval, &nval).map_err(|e| io_err(e, "rename"))?;
        let oattr = Self::attr_path(&odir, &oleaf);
        if oattr.is_file() {
            std::fs::rename(&oattr, Self::attr_path(&ndir, &nleaf))
                .map_err(|e| io_err(e, "rename attrs"))?;
        }
        Ok(())
    }

    fn list(&self, name: &CompositeName) -> Result<Vec<NameClassPair>> {
        let dir = self.dir_of(name)?;
        self.entries_in(&dir)?
            .into_iter()
            .map(|(child, kind)| {
                Ok(NameClassPair {
                    class_name: match kind {
                        EntryKind::Dir => "context".to_string(),
                        EntryKind::Value => {
                            let bytes = std::fs::read(Self::val_path(&dir, &child))
                                .map_err(|e| io_err(e, "read"))?;
                            common::unmarshal(&bytes).class_name().to_string()
                        }
                    },
                    name: child,
                })
            })
            .collect()
    }

    fn list_bindings(&self, name: &CompositeName) -> Result<Vec<Binding>> {
        let dir = self.dir_of(name)?;
        self.entries_in(&dir)?
            .into_iter()
            .map(|(child, kind)| {
                Ok(Binding {
                    value: match kind {
                        EntryKind::Dir => BoundValue::Null,
                        EntryKind::Value => {
                            let bytes = std::fs::read(Self::val_path(&dir, &child))
                                .map_err(|e| io_err(e, "read"))?;
                            common::unmarshal(&bytes)
                        }
                    },
                    name: child,
                })
            })
            .collect()
    }

    fn create_subcontext(&self, name: &CompositeName) -> Result<()> {
        let (dir, leaf) = self.parent_dir(name)?;
        let _guard = self.lock.lock();
        let sub = dir.join(&leaf);
        if sub.exists() || Self::val_path(&dir, &leaf).exists() {
            return Err(NamingError::already_bound(name.to_string()));
        }
        std::fs::create_dir_all(&sub).map_err(|e| io_err(e, "mkdir"))
    }

    fn destroy_subcontext(&self, name: &CompositeName) -> Result<()> {
        let (dir, leaf) = self.parent_dir(name)?;
        let sub = dir.join(&leaf);
        if !sub.exists() {
            return Ok(());
        }
        if !sub.is_dir() {
            return Err(NamingError::ContextExpected {
                name: name.to_string(),
            });
        }
        self.unbind(name)
    }

    fn get_attributes(&self, name: &CompositeName) -> Result<Attributes> {
        let (dir, leaf) = self.parent_dir(name)?;
        if !Self::val_path(&dir, &leaf).exists() && !dir.join(&leaf).is_dir() {
            return Err(NamingError::not_found(name.to_string()));
        }
        Self::read_attrs(&dir, &leaf)
    }

    fn modify_attributes(&self, name: &CompositeName, mods: &[AttrMod]) -> Result<()> {
        let (dir, leaf) = self.parent_dir(name)?;
        let _guard = self.lock.lock();
        if !Self::val_path(&dir, &leaf).exists() && !dir.join(&leaf).is_dir() {
            return Err(NamingError::not_found(name.to_string()));
        }
        let mut attrs = Self::read_attrs(&dir, &leaf)?;
        for m in mods {
            m.apply(&mut attrs);
        }
        Self::write_attrs(&dir, &leaf, &attrs)
    }

    fn search(
        &self,
        name: &CompositeName,
        filter: &Filter,
        controls: &SearchControls,
    ) -> Result<Vec<SearchItem>> {
        let dir = self.dir_of(name)?;
        let mut out = Vec::new();
        self.search_dir(&dir, &CompositeName::empty(), filter, controls, &mut out)?;
        Ok(out)
    }
}

impl ProviderBackend for FsContext {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        match op.kind {
            OpKind::Lookup => self.lookup(&op.name).map(OpOutcome::Value),
            OpKind::Bind => {
                let (bytes, _) = op.wire_value()?;
                self.do_bind(&op.name, &bytes, Attributes::new(), false)
                    .map(|_| OpOutcome::Done)
            }
            OpKind::Rebind => {
                let (bytes, _) = op.wire_value()?;
                self.do_bind(&op.name, &bytes, Attributes::new(), true)
                    .map(|_| OpOutcome::Done)
            }
            OpKind::Unbind => self.unbind(&op.name).map(|_| OpOutcome::Done),
            OpKind::Rename => self
                .rename(&op.name, op.new_name()?)
                .map(|_| OpOutcome::Done),
            OpKind::List => self.list(&op.name).map(OpOutcome::Names),
            OpKind::ListBindings => self.list_bindings(&op.name).map(OpOutcome::Bindings),
            OpKind::CreateSubcontext => self.create_subcontext(&op.name).map(|_| OpOutcome::Done),
            OpKind::DestroySubcontext => self.destroy_subcontext(&op.name).map(|_| OpOutcome::Done),
            OpKind::GetAttributes => self.get_attributes(&op.name).map(OpOutcome::Attrs),
            OpKind::ModifyAttributes => match &op.payload {
                OpPayload::Mods(mods) => self
                    .modify_attributes(&op.name, mods)
                    .map(|_| OpOutcome::Done),
                _ => Err(NamingError::service("modify_attributes payload missing")),
            },
            OpKind::BindWithAttrs => {
                let (bytes, _) = op.wire_value()?;
                self.do_bind(
                    &op.name,
                    &bytes,
                    op.attrs.clone().unwrap_or_default(),
                    false,
                )
                .map(|_| OpOutcome::Done)
            }
            OpKind::RebindWithAttrs => {
                let (bytes, _) = op.wire_value()?;
                self.do_bind(&op.name, &bytes, op.attrs.clone().unwrap_or_default(), true)
                    .map(|_| OpOutcome::Done)
            }
            OpKind::Search => match &op.payload {
                OpPayload::Query { filter, controls } => self
                    .search(&op.name, filter, controls)
                    .map(OpOutcome::Found),
                _ => Err(NamingError::service("search payload missing")),
            },
            _ => Err(NamingError::unsupported(op.kind.label())),
        }
    }

    fn provider_id(&self) -> String {
        format!("file:{}", self.root.display())
    }

    fn wire_format(&self) -> WireFormat {
        WireFormat::Encoded
    }
}

/// URL factory: `file://root/...`. Hosts map to directory roots; created
/// pipelines are cached per host so they share one stats/cache stack.
pub struct FsFactory {
    roots: Mutex<HashMap<String, PathBuf>>,
    contexts: Mutex<HashMap<String, Arc<ProviderPipeline<FsContext>>>>,
}

impl FsFactory {
    pub fn new() -> Arc<Self> {
        Arc::new(FsFactory {
            roots: Mutex::new(HashMap::new()),
            contexts: Mutex::new(HashMap::new()),
        })
    }

    pub fn register_root(&self, host: &str, root: impl Into<PathBuf>) {
        self.roots.lock().insert(host.to_string(), root.into());
        self.contexts.lock().remove(host);
    }
}

impl UrlContextFactory for FsFactory {
    fn scheme(&self) -> &str {
        "file"
    }

    fn create(&self, url: &RndiUrl, env: &Environment) -> Result<Arc<dyn DirContext>> {
        if let Some(pipeline) = self.contexts.lock().get(&url.host) {
            return Ok(pipeline.clone());
        }
        let root = self.roots.lock().get(&url.host).cloned().ok_or_else(|| {
            NamingError::service(format!("no filesystem root registered for {}", url.host))
        })?;
        let pipeline = FsContext::with_env(root, env);
        self.contexts
            .lock()
            .insert(url.host.clone(), pipeline.clone());
        Ok(pipeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rndi_core::context::{Context, ContextExt, DirContext};
    use rndi_core::value::Reference;

    fn fresh_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rndi-fs-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bind_lookup_roundtrip() {
        let root = fresh_root("roundtrip");
        let ctx = FsContext::new(&root);
        ctx.bind_str("config", "value-1").unwrap();
        assert_eq!(ctx.lookup_str("config").unwrap().as_str(), Some("value-1"));
        assert!(root.join("config.val").is_file());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn atomic_bind_and_rebind() {
        let root = fresh_root("atomic");
        let ctx = FsContext::new(&root);
        ctx.bind_str("k", "1").unwrap();
        assert!(matches!(
            ctx.bind_str("k", "2"),
            Err(NamingError::AlreadyBound { .. })
        ));
        ctx.rebind_str("k", "2").unwrap();
        assert_eq!(ctx.lookup_str("k").unwrap().as_str(), Some("2"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn subcontexts_are_directories() {
        let root = fresh_root("dirs");
        let ctx = FsContext::new(&root);
        ctx.create_subcontext(&"sub".into()).unwrap();
        ctx.bind_str("sub/inner", "deep").unwrap();
        assert!(root.join("sub").is_dir());
        assert_eq!(ctx.lookup_str("sub/inner").unwrap().as_str(), Some("deep"));
        let names: Vec<String> = ctx
            .list_str("sub")
            .unwrap()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(names, vec!["inner"]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unbind_and_destroy_semantics() {
        let root = fresh_root("unbind");
        let ctx = FsContext::new(&root);
        ctx.create_subcontext(&"s".into()).unwrap();
        ctx.bind_str("s/x", "v").unwrap();
        assert!(matches!(
            ctx.unbind_str("s"),
            Err(NamingError::ContextNotEmpty { .. })
        ));
        ctx.unbind_str("s/x").unwrap();
        ctx.unbind_str("s/x").unwrap(); // idempotent
        ctx.destroy_subcontext(&"s".into()).unwrap();
        assert!(!root.join("s").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn attributes_persist_and_search() {
        let root = fresh_root("attrs");
        let ctx = FsContext::new(&root);
        ctx.bind_with_attrs(
            &"n1".into(),
            BoundValue::str("s"),
            common::attrs(&[("os", "linux")]),
        )
        .unwrap();
        ctx.bind_with_attrs(
            &"n2".into(),
            BoundValue::str("s"),
            common::attrs(&[("os", "plan9")]),
        )
        .unwrap();
        let hits = ctx
            .search(
                &CompositeName::empty(),
                &Filter::parse("(os=linux)").unwrap(),
                &SearchControls::default(),
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "n1");

        ctx.modify_attributes(
            &"n2".into(),
            &[AttrMod::Replace(rndi_core::attrs::Attribute::single(
                "os", "linux",
            ))],
        )
        .unwrap();
        let hits = ctx
            .search(
                &CompositeName::empty(),
                &Filter::parse("(os=linux)").unwrap(),
                &SearchControls::default(),
            )
            .unwrap();
        assert_eq!(hits.len(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn federation_mount_in_file() {
        let root = fresh_root("mount");
        let ctx = FsContext::new(&root);
        ctx.bind(
            &"remote".into(),
            BoundValue::Reference(Reference::url("hdns://host2")),
        )
        .unwrap();
        let err = ctx.lookup(&"remote/x".into()).unwrap_err();
        assert!(err.is_continue());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn path_escape_rejected() {
        let root = fresh_root("escape");
        let ctx = FsContext::new(&root);
        for bad in ["..", ".", "a\\b"] {
            let name = CompositeName::from_components([bad.to_string()]);
            assert!(
                matches!(ctx.lookup(&name), Err(NamingError::InvalidName { .. })),
                "should reject {bad:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rename_moves_value_and_attrs() {
        let root = fresh_root("rename");
        let ctx = FsContext::new(&root);
        ctx.bind_with_attrs(
            &"a".into(),
            BoundValue::str("v"),
            common::attrs(&[("k", "1")]),
        )
        .unwrap();
        ctx.rename(&"a".into(), &"b".into()).unwrap();
        assert!(ctx.lookup_str("a").is_err());
        assert_eq!(ctx.lookup_str("b").unwrap().as_str(), Some("v"));
        assert_eq!(
            ctx.get_attributes(&"b".into())
                .unwrap()
                .get("k")
                .unwrap()
                .first_str(),
            Some("1")
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
