//! The LDAP service provider.
//!
//! Standard JNDI ships an LDAP provider; ours maps onto `dirserv`.
//! Composite-name components become RDNs (a component may spell its RDN
//! explicitly — `ou=dcl` — or defaults to `cn=<component>`); generic
//! values are stored in `rndiObject` entries under the `rndiValue`
//! attribute; RNDI search filters translate structurally to LDAP filters.
//! A stored value that is a naming URL acts as a federation mount, as in
//! every other provider.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dirserv::server::{Connection, Modification};
use dirserv::{DirectoryServer, Dn, LdapEntry, LdapFilter, Rdn, ResultCode, Scope};

use rndi_core::attrs::{AttrMod, AttrValue, Attribute, Attributes};
use rndi_core::context::{
    Binding, DirContext, NameClassPair, SearchControls, SearchItem, SearchScope,
};
use rndi_core::env::{keys, Environment};
use rndi_core::error::{NamingError, Result};
use rndi_core::filter::Filter;
use rndi_core::name::CompositeName;
use rndi_core::op::{NamingOp, OpKind, OpOutcome, OpPayload};
use rndi_core::spi::{ProviderBackend, ProviderPipeline, UrlContextFactory, WireFormat};
use rndi_core::url::RndiUrl;
use rndi_core::value::BoundValue;
use rndi_obs::TraceCtx;

use crate::common::{self, MsClock};

const VALUE_ATTR: &str = "rndiValue";
const CLASS_ATTR: &str = "objectClass";
const RNDI_CLASS: &str = "rndiObject";

fn code_err(code: ResultCode, detail: String) -> NamingError {
    match code {
        ResultCode::NoSuchObject => NamingError::not_found(detail),
        ResultCode::EntryAlreadyExists => NamingError::already_bound(detail),
        ResultCode::NotAllowedOnNonLeaf => NamingError::ContextNotEmpty { name: detail },
        ResultCode::InvalidCredentials | ResultCode::InsufficientAccessRights => {
            NamingError::NoPermission { detail }
        }
        ResultCode::InvalidDnSyntax => NamingError::invalid_name(detail, "invalid DN"),
        ResultCode::ObjectClassViolation => NamingError::InvalidName {
            name: detail,
            reason: "schema violation".into(),
        },
        other => NamingError::service(format!("LDAP error {other:?}: {detail}")),
    }
}

/// Translate an RNDI filter into the server's dialect (structure-for-
/// structure; both speak RFC 2254).
fn to_ldap_filter(f: &Filter) -> Result<LdapFilter> {
    LdapFilter::parse(&f.to_string()).map_err(|reason| NamingError::InvalidSearchFilter {
        filter: f.to_string(),
        reason,
    })
}

/// A naming backend over one LDAP directory server. Implements
/// [`ProviderBackend`]; the `Context`/`DirContext` surface comes from the
/// [`ProviderPipeline`] returned by [`LdapProviderContext::new`].
pub struct LdapProviderContext {
    conn: Connection,
    base: Dn,
    clock: Arc<dyn MsClock>,
    instance: String,
    /// Cumulative anti-DoS delay the server imposed on our reads — the
    /// benchmark harness charges it as response latency.
    throttle_delay_ms: Mutex<u64>,
}

impl LdapProviderContext {
    pub fn new(
        conn: Connection,
        base: Dn,
        clock: Arc<dyn MsClock>,
        instance: &str,
    ) -> Arc<ProviderPipeline<Self>> {
        Self::with_env(conn, base, clock, instance, &Environment::new())
    }

    /// Construct with an environment controlling the pipeline stack.
    pub fn with_env(
        conn: Connection,
        base: Dn,
        clock: Arc<dyn MsClock>,
        instance: &str,
        env: &Environment,
    ) -> Arc<ProviderPipeline<Self>> {
        ProviderPipeline::standard(
            Arc::new(LdapProviderContext {
                conn,
                base,
                clock,
                instance: instance.to_string(),
                throttle_delay_ms: Mutex::new(0),
            }),
            env,
        )
    }

    /// Total anti-DoS delay accumulated so far (and reset the counter).
    pub fn take_throttle_delay_ms(&self) -> u64 {
        std::mem::take(&mut self.throttle_delay_ms.lock())
    }

    fn component_rdn(component: &str) -> Result<Rdn> {
        if component.contains('=') {
            Rdn::parse(component).map_err(|reason| NamingError::invalid_name(component, reason))
        } else if component.is_empty() {
            Err(NamingError::invalid_name(component, "empty component"))
        } else {
            Ok(Rdn::new("cn", component))
        }
    }

    /// DN for the first `k` components.
    fn dn(&self, name: &CompositeName, k: usize) -> Result<Dn> {
        let mut dn = self.base.clone();
        for c in name.components().iter().take(k) {
            dn = dn.child(Self::component_rdn(c)?);
        }
        Ok(dn)
    }

    fn read(&self, dn: &Dn) -> Result<Option<LdapEntry>> {
        match self.conn.read(dn, self.clock.now_ms()) {
            Ok((entry, delay)) => {
                *self.throttle_delay_ms.lock() += delay;
                Ok(Some(entry))
            }
            Err((ResultCode::NoSuchObject, _)) => Ok(None),
            Err((code, detail)) => Err(code_err(code, detail)),
        }
    }

    fn decode(entry: &LdapEntry) -> BoundValue {
        match entry.first(VALUE_ATTR) {
            Some(json) => common::unmarshal(json.as_bytes()),
            None => BoundValue::Null, // structural / foreign entry
        }
    }

    /// If the *base itself* is a federation mount, continue with an empty
    /// remaining name — used by `list`/`search`, whose base may denote a
    /// mounted foreign context.
    fn check_base_mount(&self, name: &CompositeName) -> Result<Option<NamingError>> {
        if name.is_empty() {
            return Ok(None);
        }
        let dn = self.dn(name, name.len())?;
        if let Some(entry) = self.read(&dn)? {
            let v = Self::decode(&entry);
            if v.is_federation_link() {
                return Ok(Some(NamingError::Continue {
                    resolved: v,
                    remaining: CompositeName::empty(),
                }));
            }
        }
        Ok(None)
    }

    /// Find a federation mount on a strict prefix of `name`.
    fn check_mount(&self, name: &CompositeName) -> Result<Option<NamingError>> {
        for k in (1..name.len()).rev() {
            let dn = self.dn(name, k)?;
            if let Some(entry) = self.read(&dn)? {
                let v = Self::decode(&entry);
                if v.is_federation_link() {
                    return Ok(Some(NamingError::Continue {
                        resolved: v,
                        remaining: name.suffix(k),
                    }));
                }
                return Ok(None); // a real intermediate entry: no mount
            }
        }
        Ok(None)
    }

    fn core_attrs(entry: &LdapEntry) -> Attributes {
        let mut out = Attributes::new();
        for a in entry.attrs() {
            if a.id.eq_ignore_ascii_case(VALUE_ATTR) {
                continue;
            }
            let mut attr = Attribute::new(a.id.clone());
            for v in &a.values {
                attr = attr.with(v.clone());
            }
            out.put(attr);
        }
        out
    }

    fn build_entry(&self, dn: Dn, payload: Vec<u8>, attrs: &Attributes) -> Result<LdapEntry> {
        let mut entry = LdapEntry::new(dn.clone());
        entry.add_value(CLASS_ATTR, RNDI_CLASS);
        let rdn = dn
            .rdn()
            .ok_or_else(|| NamingError::invalid_name("", "cannot bind the base DN"))?;
        entry.add_value(&rdn.attr, rdn.value.clone());
        entry.add_value(
            VALUE_ATTR,
            String::from_utf8(payload)
                .map_err(|_| NamingError::unsupported("non-UTF8 payloads in LDAP"))?,
        );
        for a in attrs.iter() {
            for v in &a.values {
                if let AttrValue::Str(s) = v {
                    entry.add_value(&a.id, s.clone());
                }
            }
        }
        Ok(entry)
    }
}

impl LdapProviderContext {
    fn lookup(&self, name: &CompositeName) -> Result<BoundValue> {
        if name.is_empty() {
            return Err(NamingError::invalid_name("", "empty name"));
        }
        let dn = self.dn(name, name.len())?;
        match self.read(&dn)? {
            Some(entry) => Ok(Self::decode(&entry)),
            None => match self.check_mount(name)? {
                Some(cont) => Err(cont),
                None => Err(NamingError::not_found(dn.to_string())),
            },
        }
    }

    fn unbind(&self, name: &CompositeName, trace: Option<&TraceCtx>) -> Result<()> {
        let dn = self.dn(name, name.len())?;
        match self.conn.delete_traced(&dn, trace) {
            Ok(()) => Ok(()),
            Err((ResultCode::NoSuchObject, _)) => Ok(()), // idempotent
            Err((code, detail)) => Err(code_err(code, detail)),
        }
    }

    fn rename(&self, old: &CompositeName, new: &CompositeName) -> Result<()> {
        let old_dn = self.dn(old, old.len())?;
        let new_rdn = Self::component_rdn(
            new.components()
                .last()
                .ok_or_else(|| NamingError::invalid_name("", "empty target"))?,
        )?;
        // LDAP modifyRDN renames within the same parent.
        if old.prefix(old.len() - 1) != new.prefix(new.len() - 1) {
            return Err(NamingError::unsupported(
                "LDAP rename across parents (modifyRDN is same-parent)",
            ));
        }
        self.conn
            .modify_rdn(&old_dn, new_rdn)
            .map(|_| ())
            .map_err(|(c, d)| code_err(c, d))
    }

    fn list(&self, name: &CompositeName) -> Result<Vec<NameClassPair>> {
        if let Some(cont) = self.check_base_mount(name)? {
            return Err(cont);
        }
        let base = self.dn(name, name.len())?;
        let out = self
            .conn
            .search(
                &base,
                Scope::OneLevel,
                &LdapFilter::match_all(),
                None,
                self.clock.now_ms(),
            )
            .map_err(|(c, d)| code_err(c, d))?;
        *self.throttle_delay_ms.lock() += out.delay_ms;
        Ok(out
            .entries
            .iter()
            .map(|e| NameClassPair {
                name: e.dn.rdn().map(|r| r.to_string()).unwrap_or_default(),
                class_name: Self::decode(e).class_name().to_string(),
            })
            .collect())
    }

    fn list_bindings(&self, name: &CompositeName) -> Result<Vec<Binding>> {
        if let Some(cont) = self.check_base_mount(name)? {
            return Err(cont);
        }
        let base = self.dn(name, name.len())?;
        let out = self
            .conn
            .search(
                &base,
                Scope::OneLevel,
                &LdapFilter::match_all(),
                None,
                self.clock.now_ms(),
            )
            .map_err(|(c, d)| code_err(c, d))?;
        *self.throttle_delay_ms.lock() += out.delay_ms;
        Ok(out
            .entries
            .iter()
            .map(|e| Binding {
                name: e.dn.rdn().map(|r| r.to_string()).unwrap_or_default(),
                value: Self::decode(e),
            })
            .collect())
    }

    fn create_subcontext(&self, name: &CompositeName, trace: Option<&TraceCtx>) -> Result<()> {
        let dn = self.dn(name, name.len())?;
        let rdn = dn
            .rdn()
            .ok_or_else(|| NamingError::invalid_name("", "empty name"))?
            .clone();
        let mut entry = LdapEntry::new(dn);
        let class = if rdn.attr == "ou" {
            "organizationalUnit"
        } else {
            RNDI_CLASS
        };
        entry.add_value(CLASS_ATTR, class);
        entry.add_value(&rdn.attr, rdn.value.clone());
        self.conn
            .add_traced(entry, trace)
            .map_err(|(c, d)| code_err(c, d))
    }

    fn destroy_subcontext(&self, name: &CompositeName, trace: Option<&TraceCtx>) -> Result<()> {
        self.unbind(name, trace)
    }

    fn get_attributes(&self, name: &CompositeName) -> Result<Attributes> {
        let dn = self.dn(name, name.len())?;
        let entry = self
            .read(&dn)?
            .ok_or_else(|| NamingError::not_found(dn.to_string()))?;
        Ok(Self::core_attrs(&entry))
    }

    fn modify_attributes(
        &self,
        name: &CompositeName,
        mods: &[AttrMod],
        trace: Option<&TraceCtx>,
    ) -> Result<()> {
        let dn = self.dn(name, name.len())?;
        let ldap_mods: Vec<Modification> = mods
            .iter()
            .map(|m| match m {
                AttrMod::Add(a) => Modification::Add(
                    a.id.clone(),
                    a.values
                        .iter()
                        .filter_map(|v| v.as_str().map(String::from))
                        .collect(),
                ),
                AttrMod::Replace(a) => Modification::Replace(
                    a.id.clone(),
                    a.values
                        .iter()
                        .filter_map(|v| v.as_str().map(String::from))
                        .collect(),
                ),
                AttrMod::Remove(id) => Modification::Delete(id.clone(), vec![]),
                AttrMod::RemoveValues(a) => Modification::Delete(
                    a.id.clone(),
                    a.values
                        .iter()
                        .filter_map(|v| v.as_str().map(String::from))
                        .collect(),
                ),
            })
            .collect();
        self.conn
            .modify_traced(&dn, &ldap_mods, trace)
            .map_err(|(c, d)| code_err(c, d))
    }

    fn bind_with_attrs(
        &self,
        name: &CompositeName,
        payload: Vec<u8>,
        attrs: &Attributes,
        trace: Option<&TraceCtx>,
    ) -> Result<()> {
        if let Some(cont) = self.check_mount(name)? {
            return Err(cont);
        }
        let dn = self.dn(name, name.len())?;
        let entry = self.build_entry(dn, payload, attrs)?;
        self.conn
            .add_traced(entry, trace)
            .map_err(|(c, d)| code_err(c, d))
    }

    fn rebind_with_attrs(
        &self,
        name: &CompositeName,
        payload: Vec<u8>,
        attrs: &Attributes,
        trace: Option<&TraceCtx>,
    ) -> Result<()> {
        if let Some(cont) = self.check_mount(name)? {
            return Err(cont);
        }
        let dn = self.dn(name, name.len())?;
        let entry = self.build_entry(dn.clone(), payload, attrs)?;
        match self.conn.delete_traced(&dn, trace) {
            Ok(()) | Err((ResultCode::NoSuchObject, _)) => {}
            Err((code, detail)) => return Err(code_err(code, detail)),
        }
        self.conn
            .add_traced(entry, trace)
            .map_err(|(c, d)| code_err(c, d))
    }

    fn search(
        &self,
        name: &CompositeName,
        filter: &Filter,
        controls: &SearchControls,
        trace: Option<&TraceCtx>,
    ) -> Result<Vec<SearchItem>> {
        if let Some(cont) = self.check_base_mount(name)? {
            return Err(cont);
        }
        let base = self.dn(name, name.len())?;
        let scope = match controls.scope {
            SearchScope::Object => Scope::Base,
            SearchScope::OneLevel => Scope::OneLevel,
            SearchScope::Subtree => Scope::Subtree,
        };
        let ldap_filter = to_ldap_filter(filter)?;
        let attrs_proj: Option<Vec<String>> = controls.return_attrs.clone();
        let out = self
            .conn
            .search_traced(
                &base,
                scope,
                &ldap_filter,
                attrs_proj.as_deref(),
                self.clock.now_ms(),
                trace,
            )
            .map_err(|(c, d)| code_err(c, d))?;
        *self.throttle_delay_ms.lock() += out.delay_ms;
        let mut items: Vec<SearchItem> = out
            .entries
            .iter()
            .map(|e| SearchItem {
                name: relative_name(&e.dn, &base),
                value: controls.return_values.then(|| Self::decode(e)),
                attrs: Self::core_attrs(e),
            })
            .collect();
        if controls.count_limit > 0 {
            items.truncate(controls.count_limit);
        }
        Ok(items)
    }
}

impl ProviderBackend for LdapProviderContext {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        // The server accepts the client's trace context directly (same
        // process), standing in for the wire frame a remote LDAP
        // connection would carry.
        let trace = op.trace_ctx();
        let trace = trace.as_ref();
        match op.kind {
            OpKind::Lookup => self.lookup(&op.name).map(OpOutcome::Value),
            OpKind::Bind | OpKind::BindWithAttrs => {
                let (payload, _) = op.wire_value()?;
                let attrs = op.attrs.clone().unwrap_or_default();
                self.bind_with_attrs(&op.name, payload, &attrs, trace)?;
                Ok(OpOutcome::Done)
            }
            OpKind::Rebind | OpKind::RebindWithAttrs => {
                let (payload, _) = op.wire_value()?;
                let attrs = op.attrs.clone().unwrap_or_default();
                self.rebind_with_attrs(&op.name, payload, &attrs, trace)?;
                Ok(OpOutcome::Done)
            }
            OpKind::Unbind => self.unbind(&op.name, trace).map(|_| OpOutcome::Done),
            OpKind::Rename => self
                .rename(&op.name, op.new_name()?)
                .map(|_| OpOutcome::Done),
            OpKind::List => self.list(&op.name).map(OpOutcome::Names),
            OpKind::ListBindings => self.list_bindings(&op.name).map(OpOutcome::Bindings),
            OpKind::CreateSubcontext => self
                .create_subcontext(&op.name, trace)
                .map(|_| OpOutcome::Done),
            OpKind::DestroySubcontext => self
                .destroy_subcontext(&op.name, trace)
                .map(|_| OpOutcome::Done),
            OpKind::GetAttributes => self.get_attributes(&op.name).map(OpOutcome::Attrs),
            OpKind::ModifyAttributes => match &op.payload {
                OpPayload::Mods(mods) => self
                    .modify_attributes(&op.name, mods, trace)
                    .map(|_| OpOutcome::Done),
                _ => Err(NamingError::service("modify_attributes payload missing")),
            },
            OpKind::Search => match &op.payload {
                OpPayload::Query { filter, controls } => self
                    .search(&op.name, filter, controls, trace)
                    .map(OpOutcome::Found),
                _ => Err(NamingError::service("search payload missing")),
            },
            // dirserv has no change-notification protocol.
            _ => Err(NamingError::unsupported(op.kind.label())),
        }
    }

    fn provider_id(&self) -> String {
        format!("ldap:{}/{}", self.instance, self.base)
    }

    fn compound_syntax(&self) -> rndi_core::name::CompoundSyntax {
        rndi_core::name::CompoundSyntax::ldap()
    }

    fn wire_format(&self) -> WireFormat {
        WireFormat::Encoded
    }
}

/// Render `dn` relative to `base` as a composite-style name.
fn relative_name(dn: &Dn, base: &Dn) -> String {
    let extra = dn.depth().saturating_sub(base.depth());
    let rdns: Vec<String> = dn.rdns()[..extra]
        .iter()
        .rev()
        .map(|r| r.to_string())
        .collect();
    rdns.join("/")
}

/// URL factory: `ldap://host[:port]/...`. Hosts map to a server plus the
/// base DN the provider roots composite names at.
pub struct LdapFactory {
    hosts: Mutex<HashMap<String, (DirectoryServer, Dn)>>,
    clock: Arc<dyn MsClock>,
    /// One pipeline per `host|principal` pair — connections carry an
    /// authentication identity, so different principals must not share a
    /// cached context (or its lookup cache).
    contexts: Mutex<HashMap<String, Arc<ProviderPipeline<LdapProviderContext>>>>,
}

impl LdapFactory {
    pub fn new(clock: Arc<dyn MsClock>) -> Arc<Self> {
        Arc::new(LdapFactory {
            hosts: Mutex::new(HashMap::new()),
            clock,
            contexts: Mutex::new(HashMap::new()),
        })
    }

    pub fn register_host(&self, host: &str, server: DirectoryServer, base: Dn) {
        self.hosts.lock().insert(host.to_string(), (server, base));
        let prefix = format!("{host}|");
        self.contexts.lock().retain(|k, _| !k.starts_with(&prefix));
    }
}

impl UrlContextFactory for LdapFactory {
    fn scheme(&self) -> &str {
        "ldap"
    }

    fn create(&self, url: &RndiUrl, env: &Environment) -> Result<Arc<dyn DirContext>> {
        let key = format!(
            "{}|{}",
            url.host,
            env.get(keys::SECURITY_PRINCIPAL).unwrap_or("")
        );
        if let Some(ctx) = self.contexts.lock().get(&key) {
            return Ok(ctx.clone());
        }
        let (server, base) = self.hosts.lock().get(&url.host).cloned().ok_or_else(|| {
            NamingError::service(format!("no LDAP server registered for {}", url.host))
        })?;
        // Service-specific credentials flow through the environment — the
        // "service-specific configuration parameters" §3 mentions.
        let conn = match (
            env.get(keys::SECURITY_PRINCIPAL),
            env.get(keys::SECURITY_CREDENTIALS),
        ) {
            (Some(principal), Some(password)) => {
                let dn =
                    Dn::parse(principal).map_err(|r| NamingError::invalid_name(principal, r))?;
                server
                    .simple_bind(&dn, password)
                    .map_err(|(c, d)| code_err(c, d))?
            }
            _ => server.connect_anonymous(),
        };
        let ctx = LdapProviderContext::with_env(conn, base, self.clock.clone(), &url.host, env);
        self.contexts.lock().insert(key, ctx.clone());
        Ok(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirserv::ServerConfig;
    use rndi_core::context::{Context, ContextExt, DirContext};
    use rndi_core::value::Reference;

    struct ZeroClock;
    impl MsClock for ZeroClock {
        fn now_ms(&self) -> u64 {
            0
        }
    }

    fn setup() -> (Arc<ProviderPipeline<LdapProviderContext>>, DirectoryServer) {
        let server = DirectoryServer::new(ServerConfig {
            read_throttle_per_sec: None,
            validate_schema: true,
            ..Default::default()
        });
        let conn = server.connect_anonymous();
        conn.add(
            LdapEntry::new(Dn::parse("o=emory").unwrap())
                .with("objectClass", "organization")
                .with("o", "emory"),
        )
        .unwrap();
        let ctx = LdapProviderContext::new(
            server.connect_anonymous(),
            Dn::parse("o=emory").unwrap(),
            Arc::new(ZeroClock),
            "test",
        );
        (ctx, server)
    }

    #[test]
    fn bind_lookup_roundtrip() {
        let (ctx, server) = setup();
        ctx.bind_str("mokey", "the-monkey").unwrap();
        assert_eq!(
            ctx.lookup_str("mokey").unwrap().as_str(),
            Some("the-monkey")
        );
        assert_eq!(server.entry_count(), 2);
    }

    #[test]
    fn atomic_bind_maps_entry_exists() {
        let (ctx, _) = setup();
        ctx.bind_str("k", "1").unwrap();
        assert!(matches!(
            ctx.bind_str("k", "2"),
            Err(NamingError::AlreadyBound { .. })
        ));
        ctx.rebind_str("k", "2").unwrap();
        assert_eq!(ctx.lookup_str("k").unwrap().as_str(), Some("2"));
    }

    #[test]
    fn explicit_rdn_components() {
        let (ctx, _) = setup();
        ctx.create_subcontext(&"ou=dcl".into()).unwrap();
        ctx.bind_str("ou=dcl/host1", "stub").unwrap();
        assert_eq!(
            ctx.lookup_str("ou=dcl/host1").unwrap().as_str(),
            Some("stub")
        );
        let names: Vec<String> = ctx
            .list(&"ou=dcl".into())
            .unwrap()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(names, vec!["cn=host1"]);
    }

    #[test]
    fn hierarchy_requires_parent() {
        let (ctx, _) = setup();
        assert!(matches!(
            ctx.bind_str("missing/child", "v"),
            Err(NamingError::NameNotFound { .. })
        ));
    }

    #[test]
    fn unbind_idempotent_and_nonleaf_guard() {
        let (ctx, _) = setup();
        ctx.create_subcontext(&"ou=lab".into()).unwrap();
        ctx.bind_str("ou=lab/x", "v").unwrap();
        assert!(matches!(
            ctx.unbind_str("ou=lab"),
            Err(NamingError::ContextNotEmpty { .. })
        ));
        ctx.unbind_str("ou=lab/x").unwrap();
        ctx.unbind_str("ou=lab/x").unwrap(); // idempotent
        ctx.unbind_str("ou=lab").unwrap();
    }

    #[test]
    fn attributes_and_search() {
        let (ctx, _) = setup();
        ctx.bind_with_attrs(
            &"node1".into(),
            BoundValue::str("s"),
            common::attrs(&[("description", "compute node"), ("owner", "dcl")]),
        )
        .unwrap();
        ctx.bind_with_attrs(
            &"node2".into(),
            BoundValue::str("s"),
            common::attrs(&[("description", "storage node")]),
        )
        .unwrap();

        let attrs = ctx.get_attributes(&"node1".into()).unwrap();
        assert_eq!(attrs.get("owner").unwrap().first_str(), Some("dcl"));
        assert!(!attrs.contains(VALUE_ATTR), "internal attr hidden");

        let hits = ctx
            .search(
                &CompositeName::empty(),
                &Filter::parse("(description=compute*)").unwrap(),
                &SearchControls::default(),
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "cn=node1");
    }

    #[test]
    fn modify_attributes() {
        let (ctx, _) = setup();
        ctx.bind_with_attrs(
            &"e".into(),
            BoundValue::Null,
            common::attrs(&[("description", "old")]),
        )
        .unwrap();
        ctx.modify_attributes(
            &"e".into(),
            &[AttrMod::Replace(Attribute::single("description", "new"))],
        )
        .unwrap();
        let attrs = ctx.get_attributes(&"e".into()).unwrap();
        assert_eq!(attrs.get("description").unwrap().first_str(), Some("new"));
    }

    #[test]
    fn rename_same_parent() {
        let (ctx, _) = setup();
        ctx.bind_str("old", "v").unwrap();
        ctx.rename(&"old".into(), &"new".into()).unwrap();
        assert!(ctx.lookup_str("old").is_err());
        assert_eq!(ctx.lookup_str("new").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn federation_mount_via_stored_url() {
        let (ctx, _) = setup();
        ctx.bind(
            &"jiniServer".into(),
            BoundValue::Reference(Reference::url("jini://host1")),
        )
        .unwrap();
        // The paper's ldap://host/n=jiniServer/... case.
        let err = ctx.lookup(&"jiniServer/grp/obj".into()).unwrap_err();
        match err {
            NamingError::Continue {
                resolved,
                remaining,
            } => {
                assert_eq!(
                    resolved.as_reference().unwrap().url_addr(),
                    Some("jini://host1")
                );
                assert_eq!(remaining.to_string(), "grp/obj");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn authenticated_writes() {
        let server = DirectoryServer::new(ServerConfig {
            writes_require_auth: true,
            read_throttle_per_sec: None,
            ..Default::default()
        });
        let admin = server
            .simple_bind(&Dn::parse("cn=admin").unwrap(), "secret")
            .unwrap();
        admin
            .add(
                LdapEntry::new(Dn::parse("o=emory").unwrap())
                    .with("objectClass", "organization")
                    .with("o", "emory"),
            )
            .unwrap();
        let anon_ctx = LdapProviderContext::new(
            server.connect_anonymous(),
            Dn::parse("o=emory").unwrap(),
            Arc::new(ZeroClock),
            "t",
        );
        assert!(matches!(
            anon_ctx.bind_str("x", "v"),
            Err(NamingError::NoPermission { .. })
        ));
        let admin_ctx = LdapProviderContext::new(
            server
                .simple_bind(&Dn::parse("cn=admin").unwrap(), "secret")
                .unwrap(),
            Dn::parse("o=emory").unwrap(),
            Arc::new(ZeroClock),
            "t",
        );
        admin_ctx.bind_str("x", "v").unwrap();
        assert_eq!(anon_ctx.lookup_str("x").unwrap().as_str(), Some("v"));
    }
}
