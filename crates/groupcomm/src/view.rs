//! Group views.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::Addr;

/// Identifies a view: a monotonically increasing sequence number plus the
/// coordinator that installed it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ViewId {
    pub seq: u64,
    pub coord: Addr,
}

impl fmt::Debug for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}|{}]", self.coord, self.seq)
    }
}

/// A membership view: the members, in join order. The first member is the
/// coordinator (JGroups convention: the oldest member coordinates).
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    pub id: ViewId,
    pub members: Vec<Addr>,
}

impl View {
    /// Build a view; `members` must be non-empty and in join order.
    pub fn new(seq: u64, members: Vec<Addr>) -> View {
        assert!(!members.is_empty(), "a view needs at least one member");
        View {
            id: ViewId {
                seq,
                coord: members[0],
            },
            members,
        }
    }

    pub fn coordinator(&self) -> Addr {
        self.id.coord
    }

    pub fn contains(&self, a: Addr) -> bool {
        self.members.contains(&a)
    }

    pub fn size(&self) -> usize {
        self.members.len()
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}{:?}", self.id, self.members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_is_first_member() {
        let v = View::new(3, vec![Addr(5), Addr(2), Addr(9)]);
        assert_eq!(v.coordinator(), Addr(5));
        assert_eq!(v.id.seq, 3);
        assert!(v.contains(Addr(9)));
        assert!(!v.contains(Addr(1)));
        assert_eq!(v.size(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_view_rejected() {
        View::new(0, vec![]);
    }
}
