//! # groupcast — reliable group communication (a JGroups analogue)
//!
//! HDNS (the paper's §4) is built on JGroups: "a toolkit for reliable
//! multicast group communication … the most powerful feature of JGroups is
//! a configurable protocol stack, allowing to defer quality-of-service
//! decisions regarding fault tolerance and scalability until run time."
//! This crate reimplements the parts HDNS observably depends on:
//!
//! * **Membership** ([`view::View`], [`protocols::gms`]) — join/leave,
//!   failure-driven view changes, coordinator election (oldest member).
//! * **Ordering** ([`config::OrderingMode`]):
//!   [`protocols::sequencer`] — coordinator-stamped **total order**
//!   (the Virtual Synchrony suite: "guarantees an atomic broadcast and
//!   delivery … at the cost of scalability"); and
//!   [`protocols::bimodal`] — best-effort multicast with gossip
//!   anti-entropy ("improves scalability, for the price of probabilistic
//!   message delivery reliability"), the HDNS default.
//! * **Failure handling** ([`protocols::fd`]) — reachability-based suspect
//!   detection feeding GMS.
//! * **State transfer** — snapshots to joiners and to partition losers.
//! * **PRIMARY_PARTITION** ([`protocols::primary`]) — the protocol the
//!   authors *added* to the JGroups stack: "after a transient network
//!   partition, it resolves state conflicts by uniquely selecting the
//!   partition deemed to have the valid state, and forcing other
//!   partitions to re-synchronize."
//! * **Flow control** ([`protocols::flow`]) — bounded or unbounded message
//!   buffers with memory accounting. The **unbounded** variant reproduces
//!   the paper's Fig. 5 failure: "flooding the server with requests cause
//!   internal JGroups message queues to grow without bounds, eventually
//!   causing memory exhaustion and server crash."
//!
//! The whole cluster is deterministic: messages queue in a
//! [`cluster::Cluster`] and are processed by explicit [`Cluster::pump`]
//! calls; gossip and loss draw from a seeded RNG.
//!
//! [`Cluster::pump`]: cluster::Cluster::pump

pub mod addr;
pub mod channel;
pub mod cluster;
pub mod config;
pub mod member;
pub mod protocols;
pub mod transport;
pub mod view;
pub mod wire;

pub use addr::Addr;
pub use channel::{ChannelEvent, GroupChannel, SendError};
pub use cluster::Cluster;
pub use config::{OrderingMode, StackConfig};
pub use member::{MemberCore, Outgoing};
pub use transport::GroupTransport;
pub use view::{View, ViewId};
pub use wire::Wire;
