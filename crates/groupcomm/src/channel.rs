//! The user-facing channel (JGroups `JChannel` analogue).

use crate::addr::Addr;
use crate::cluster::Cluster;
use crate::view::View;

/// Events an application drains from its channel.
#[derive(Clone, Debug, PartialEq)]
pub enum ChannelEvent {
    /// A group multicast, delivered per the stack's ordering discipline.
    Message { from: Addr, bytes: Vec<u8> },
    /// A new membership view was installed.
    View(View),
    /// You are the coordinator and `joiner` needs the application state —
    /// answer with [`GroupChannel::provide_state`].
    StateRequest { joiner: Addr },
    /// Install this application state snapshot (you joined, or you were on
    /// the losing side of a partition).
    SetState { bytes: Vec<u8> },
    /// You were on a losing partition side; the PRIMARY_PARTITION protocol
    /// will re-synchronize your state from `coordinator` (a `SetState`
    /// follows once the coordinator answers its `StateRequest`).
    ResyncNeeded { coordinator: Addr },
    /// This member died (crashed externally, or killed by memory
    /// exhaustion in the flow-control layer).
    Crashed { reason: String },
}

/// Errors from send-side operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SendError {
    /// The channel has not (successfully) joined a group yet.
    NotConnected,
    /// The member is dead.
    Dead,
    /// Bounded flow control refused the message (back off and retry).
    Backpressure,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::NotConnected => f.write_str("channel not connected"),
            SendError::Dead => f.write_str("member is dead"),
            SendError::Backpressure => f.write_str("flow control backpressure"),
        }
    }
}

impl std::error::Error for SendError {}

/// A handle onto one group member.
#[derive(Clone)]
pub struct GroupChannel {
    pub(crate) cluster: Cluster,
    pub(crate) addr: Addr,
}

impl GroupChannel {
    /// This member's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Join a group. The view (and any state transfer) arrives as events
    /// after the next [`Cluster::pump`].
    pub fn connect(&self, group: &str) -> Result<(), SendError> {
        self.cluster.connect(self.addr, group)
    }

    /// Leave the group.
    pub fn disconnect(&self) {
        self.cluster.disconnect(self.addr);
    }

    /// Multicast to the group under the configured ordering discipline.
    pub fn mcast(&self, bytes: Vec<u8>) -> Result<(), SendError> {
        self.cluster.mcast(self.addr, bytes)
    }

    /// Drain pending events.
    pub fn poll(&self) -> Vec<ChannelEvent> {
        self.cluster.poll(self.addr)
    }

    /// Answer a [`ChannelEvent::StateRequest`].
    pub fn provide_state(&self, to: Addr, bytes: Vec<u8>) -> Result<(), SendError> {
        self.cluster.provide_state(self.addr, to, bytes)
    }

    /// The currently installed view, if any.
    pub fn view(&self) -> Option<View> {
        self.cluster.view_of(self.addr)
    }

    /// Whether this member is alive.
    pub fn is_alive(&self) -> bool {
        self.cluster.is_alive(self.addr)
    }
}
