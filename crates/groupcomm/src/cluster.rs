//! The deterministic in-process cluster: transport, membership engine,
//! and protocol orchestration.
//!
//! Messages are queued in a single FIFO and processed by explicit
//! [`Cluster::pump`] calls, so every interleaving is reproducible; a
//! bounded pump budget lets drivers model receivers that are slower than
//! senders (which is how the benchmark harness grows the unbounded queues
//! of Fig. 5 until they crash).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::Addr;
use crate::channel::{ChannelEvent, GroupChannel, SendError};
use crate::config::{OrderingMode, StackConfig};
use crate::member::MemberCore;
use crate::protocols::flow::{Admission, InboxAccount};
use crate::protocols::gms;
use crate::protocols::primary;
use crate::view::View;
use crate::wire::Wire;

struct Envelope {
    from: Addr,
    to: Addr,
    wire: Wire,
    /// Inbox bytes charged at enqueue, released at processing.
    charged: u64,
}

struct Node {
    alive: bool,
    config: StackConfig,
    group: Option<String>,
    /// The transport-agnostic protocol engine (sequencer/bimodal/view).
    member: MemberCore,
    inbox: InboxAccount,
    partition_side: u32,
}

impl Node {
    fn new(addr: Addr, config: StackConfig) -> Node {
        let inbox = InboxAccount::new(config.inbox_bound, config.memory_limit);
        let member = MemberCore::new(addr, config.ordering.clone());
        Node {
            alive: true,
            config,
            group: None,
            member,
            inbox,
            partition_side: 0,
        }
    }
}

#[derive(Default)]
struct Group {
    /// Every currently joined member, in join order.
    join_order: Vec<Addr>,
    /// Highest view sequence issued for this group (monotonic across
    /// partitions).
    last_seq: u64,
    /// Coordinator of the last view installed while the group was whole —
    /// the lineage PRIMARY_PARTITION prefers.
    last_whole_coord: Option<Addr>,
}

struct Core {
    next_addr: u64,
    rng: StdRng,
    nodes: HashMap<Addr, Node>,
    groups: HashMap<String, Group>,
    in_flight: VecDeque<Envelope>,
}

/// The cluster handle (cheaply cloneable).
///
/// ```
/// use groupcast::{ChannelEvent, Cluster, StackConfig};
///
/// let cluster = Cluster::new(1);
/// let a = cluster.create_channel(StackConfig::default());
/// let b = cluster.create_channel(StackConfig::default());
/// a.connect("demo").unwrap();
/// cluster.pump_all();
/// b.connect("demo").unwrap();
/// cluster.pump_all();
/// b.poll(); // drain join events
///
/// a.mcast(b"hello".to_vec()).unwrap();
/// cluster.pump_all();
/// assert!(b
///     .poll()
///     .iter()
///     .any(|e| matches!(e, ChannelEvent::Message { bytes, .. } if bytes == b"hello")));
/// ```
#[derive(Clone)]
pub struct Cluster {
    core: Arc<Mutex<Core>>,
}

impl Cluster {
    pub fn new(seed: u64) -> Self {
        Cluster {
            core: Arc::new(Mutex::new(Core {
                next_addr: 1,
                rng: StdRng::seed_from_u64(seed),
                nodes: HashMap::new(),
                groups: HashMap::new(),
                in_flight: VecDeque::new(),
            })),
        }
    }

    /// Create a channel endpoint with the given stack configuration.
    pub fn create_channel(&self, config: StackConfig) -> GroupChannel {
        let mut core = self.core.lock();
        let addr = Addr(core.next_addr);
        core.next_addr += 1;
        core.nodes.insert(addr, Node::new(addr, config));
        GroupChannel {
            cluster: self.clone(),
            addr,
        }
    }

    // ------------------------------------------------------------------
    // Channel-facing operations
    // ------------------------------------------------------------------

    pub(crate) fn connect(&self, addr: Addr, group: &str) -> Result<(), SendError> {
        let mut core = self.core.lock();
        let node = core.nodes.get_mut(&addr).ok_or(SendError::Dead)?;
        if !node.alive {
            return Err(SendError::Dead);
        }
        node.group = Some(group.to_string());
        let g = core.groups.entry(group.to_string()).or_default();
        if !g.join_order.contains(&addr) {
            g.join_order.push(addr);
        }
        Self::recompute_group(&mut core, group);
        Ok(())
    }

    pub(crate) fn disconnect(&self, addr: Addr) {
        let mut core = self.core.lock();
        let Some(node) = core.nodes.get_mut(&addr) else {
            return;
        };
        let Some(group) = node.group.take() else {
            return;
        };
        node.member.clear_view();
        if let Some(g) = core.groups.get_mut(&group) {
            g.join_order.retain(|a| *a != addr);
        }
        Self::recompute_group(&mut core, &group);
    }

    pub(crate) fn mcast(&self, addr: Addr, bytes: Vec<u8>) -> Result<(), SendError> {
        let mut core = self.core.lock();
        let node = core.nodes.get(&addr).ok_or(SendError::Dead)?;
        if !node.alive {
            return Err(SendError::Dead);
        }
        let ordering = node.config.ordering.clone();
        let outgoing = core
            .nodes
            .get_mut(&addr)
            .expect("checked above")
            .member
            .mcast(bytes)?;
        match ordering {
            OrderingMode::Sequencer => {
                // Forward to the coordinator (possibly myself) for stamping.
                for out in outgoing {
                    Self::enqueue(&mut core, addr, out.to, out.wire, false)?;
                }
            }
            OrderingMode::Bimodal { loss, .. } => {
                // The core proposes the full fan-out; the transport is
                // where the initial multicast loses packets.
                for out in outgoing {
                    let lossy = out.to != addr && core.rng.gen::<f64>() < loss;
                    if lossy {
                        continue; // initial multicast dropped; gossip repairs
                    }
                    Self::enqueue(&mut core, addr, out.to, out.wire, false)?;
                }
            }
        }
        Ok(())
    }

    pub(crate) fn poll(&self, addr: Addr) -> Vec<ChannelEvent> {
        let mut core = self.core.lock();
        core.nodes
            .get_mut(&addr)
            .map(|n| n.member.take_events())
            .unwrap_or_default()
    }

    pub(crate) fn provide_state(
        &self,
        from: Addr,
        to: Addr,
        bytes: Vec<u8>,
    ) -> Result<(), SendError> {
        let mut core = self.core.lock();
        let node = core.nodes.get(&from).ok_or(SendError::Dead)?;
        if !node.alive {
            return Err(SendError::Dead);
        }
        Self::enqueue(&mut core, from, to, Wire::State { bytes }, true)?;
        Ok(())
    }

    pub(crate) fn view_of(&self, addr: Addr) -> Option<View> {
        self.core
            .lock()
            .nodes
            .get(&addr)
            .and_then(|n| n.member.view().cloned())
    }

    /// Inject a raw wire message into the simulated network (the
    /// [`GroupTransport`](crate::transport::GroupTransport) surface).
    pub(crate) fn send_wire(&self, from: Addr, to: Addr, wire: Wire) -> Result<(), SendError> {
        let mut core = self.core.lock();
        let node = core.nodes.get(&from).ok_or(SendError::Dead)?;
        if !node.alive {
            return Err(SendError::Dead);
        }
        Self::enqueue(&mut core, from, to, wire, false)
    }

    pub(crate) fn is_alive(&self, addr: Addr) -> bool {
        self.core.lock().nodes.get(&addr).is_some_and(|n| n.alive)
    }

    // ------------------------------------------------------------------
    // Fault injection & membership maintenance
    // ------------------------------------------------------------------

    /// Kill a member outright (process crash).
    pub fn crash(&self, addr: Addr) {
        let mut core = self.core.lock();
        Self::kill(&mut core, addr, "crashed by fault injection");
    }

    /// Partition the cluster: each listed set becomes an isolated side;
    /// unlisted members form side 0. Call [`Cluster::detect_failures`] to
    /// let membership react.
    pub fn partition(&self, sides: &[&[Addr]]) {
        let mut core = self.core.lock();
        for node in core.nodes.values_mut() {
            node.partition_side = 0;
        }
        for (i, side) in sides.iter().enumerate() {
            for addr in *side {
                if let Some(n) = core.nodes.get_mut(addr) {
                    n.partition_side = (i + 1) as u32;
                }
            }
        }
    }

    /// Heal all partitions. Call [`Cluster::detect_failures`] afterwards to
    /// trigger the merge (and PRIMARY_PARTITION resolution).
    pub fn heal(&self) {
        let mut core = self.core.lock();
        for node in core.nodes.values_mut() {
            node.partition_side = 0;
        }
    }

    /// Run the failure detector + membership engine: every group's views
    /// are reconciled with current liveness and partition sides. This is
    /// where crashes shrink views, joins after heal merge views, and the
    /// PRIMARY_PARTITION winner is chosen.
    pub fn detect_failures(&self) {
        let mut core = self.core.lock();
        let groups: Vec<String> = core.groups.keys().cloned().collect();
        for g in groups {
            Self::recompute_group(&mut core, &g);
        }
    }

    /// One anti-entropy round: every live bimodal member pushes its digest
    /// to `fanout` random reachable peers; receivers answer with
    /// retransmissions.
    pub fn gossip_round(&self) {
        let mut core = self.core.lock();
        let members: Vec<(Addr, Vec<Addr>, usize)> = core
            .nodes
            .iter()
            .filter_map(|(addr, n)| {
                if !n.alive {
                    return None;
                }
                let OrderingMode::Bimodal { fanout, .. } = n.config.ordering else {
                    return None;
                };
                let view = n.member.view()?;
                let peers: Vec<Addr> = view
                    .members
                    .iter()
                    .copied()
                    .filter(|m| *m != *addr)
                    .collect();
                Some((*addr, peers, fanout))
            })
            .collect();
        for (addr, mut peers, fanout) in members {
            // Deterministic Fisher-Yates prefix shuffle for peer choice.
            for i in 0..peers.len().min(fanout) {
                let j = core.rng.gen_range(i..peers.len());
                peers.swap(i, j);
            }
            let digest = core
                .nodes
                .get(&addr)
                .map(|n| n.member.digest())
                .unwrap_or_default();
            for peer in peers.into_iter().take(fanout) {
                let _ = Self::enqueue(
                    &mut core,
                    addr,
                    peer,
                    Wire::DigestPush {
                        entries: digest.clone(),
                    },
                    false,
                );
            }
        }
    }

    /// The STABLE protocol: compute, per group side, the minimum delivered
    /// digest across members and let everyone prune retained messages the
    /// whole side already has.
    pub fn stable_round(&self) {
        let mut core = self.core.lock();
        let groups: Vec<String> = core.groups.keys().cloned().collect();
        for g in groups {
            let member_addrs: Vec<Addr> = core.groups[&g].join_order.clone();
            // Group by partition side.
            let mut by_side: HashMap<u32, Vec<Addr>> = HashMap::new();
            for a in member_addrs {
                if let Some(n) = core.nodes.get(&a) {
                    if n.alive {
                        by_side.entry(n.partition_side).or_default().push(a);
                    }
                }
            }
            for side in by_side.values() {
                // min contiguous digest across the side.
                let mut min: HashMap<Addr, u64> = HashMap::new();
                let mut first = true;
                for a in side {
                    let digest: HashMap<Addr, u64> =
                        core.nodes[a].member.digest().into_iter().collect();
                    if first {
                        min = digest;
                        first = false;
                    } else {
                        min.retain(|origin, v| match digest.get(origin) {
                            Some(&other) => {
                                *v = (*v).min(other);
                                true
                            }
                            None => false,
                        });
                    }
                }
                let stable: Vec<(Addr, u64)> = min.into_iter().collect();
                for a in side {
                    if let Some(n) = core.nodes.get_mut(a) {
                        n.member.prune(&stable);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Pumping
    // ------------------------------------------------------------------

    /// Process up to `budget` queued messages (`None` = drain everything
    /// currently queued *and* everything they generate). Returns the
    /// number processed.
    pub fn pump(&self, budget: Option<usize>) -> usize {
        let mut processed = 0;
        loop {
            if budget.is_some_and(|b| processed >= b) {
                return processed;
            }
            let mut core = self.core.lock();
            let Some(env) = core.in_flight.pop_front() else {
                return processed;
            };
            Self::process(&mut core, env);
            processed += 1;
        }
    }

    /// Drain the queue completely.
    pub fn pump_all(&self) -> usize {
        self.pump(None)
    }

    /// Messages currently queued.
    pub fn in_flight(&self) -> usize {
        self.core.lock().in_flight.len()
    }

    /// Queued inbound bytes at one member (flow-control diagnostics).
    pub fn inbox_bytes(&self, addr: Addr) -> u64 {
        self.core
            .lock()
            .nodes
            .get(&addr)
            .map(|n| n.inbox.bytes())
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn reachable(core: &Core, a: Addr, b: Addr) -> bool {
        match (core.nodes.get(&a), core.nodes.get(&b)) {
            (Some(x), Some(y)) => x.alive && y.alive && x.partition_side == y.partition_side,
            _ => false,
        }
    }

    /// Queue a message; `control` messages bypass flow control.
    fn enqueue(
        core: &mut Core,
        from: Addr,
        to: Addr,
        wire: Wire,
        control: bool,
    ) -> Result<(), SendError> {
        if !Self::reachable(core, from, to) {
            // Silently dropped, like a packet into a partition.
            return Ok(());
        }
        let size = wire.size();
        let mut charged = 0;
        if !control {
            let node = core.nodes.get_mut(&to).expect("reachable implies exists");
            match node.inbox.admit(size) {
                Admission::Ok => charged = size,
                Admission::Reject => return Err(SendError::Backpressure),
                Admission::Crash => {
                    let bytes = node.inbox.bytes();
                    Self::kill(
                        core,
                        to,
                        &format!("memory exhausted: {bytes} bytes of queued messages"),
                    );
                    return Ok(());
                }
            }
        }
        core.in_flight.push_back(Envelope {
            from,
            to,
            wire,
            charged,
        });
        Ok(())
    }

    fn kill(core: &mut Core, addr: Addr, reason: &str) {
        let Some(node) = core.nodes.get_mut(&addr) else {
            return;
        };
        if !node.alive {
            return;
        }
        node.alive = false;
        node.member.push_event(ChannelEvent::Crashed {
            reason: reason.to_string(),
        });
        node.member.clear_view();
        // Its queued messages evaporate with the process.
        core.in_flight.retain(|e| e.to != addr);
        // It no longer participates in its group.
        if let Some(group) = core.nodes.get(&addr).and_then(|n| n.group.clone()) {
            if let Some(g) = core.groups.get_mut(&group) {
                g.join_order.retain(|a| *a != addr);
            }
            Self::recompute_group(core, &group);
        }
    }

    fn process(core: &mut Core, env: Envelope) {
        // Release the inbox charge regardless of outcome.
        if env.charged > 0 {
            if let Some(n) = core.nodes.get_mut(&env.to) {
                n.inbox.release(env.charged);
            }
        }
        if !Self::reachable(core, env.from, env.to) {
            return;
        }
        let to = env.to;
        // The per-member protocol engine does all the thinking; we carry
        // its follow-up sends (re-forwards, Ordered fan-out, retransmits).
        let outgoing = match core.nodes.get_mut(&to) {
            Some(n) => n.member.on_wire(env.from, env.wire),
            None => return,
        };
        for out in outgoing {
            let _ = Self::enqueue(core, to, out.to, out.wire, false);
        }
    }

    fn install_view(core: &mut Core, at: Addr, view: View) {
        let Some(node) = core.nodes.get_mut(&at) else {
            return;
        };
        if !node.alive {
            return;
        }
        node.member.install_view(view);
    }

    /// Reconcile the views of one group with liveness and partitions.
    fn recompute_group(core: &mut Core, group: &str) {
        let Some(g) = core.groups.get(group) else {
            return;
        };
        let join_order = g.join_order.clone();
        let last_whole_coord = g.last_whole_coord;

        // Live, connected members by partition side.
        let mut sides: HashMap<u32, Vec<Addr>> = HashMap::new();
        for a in &join_order {
            if let Some(n) = core.nodes.get(a) {
                if n.alive && n.group.as_deref() == Some(group) {
                    sides.entry(n.partition_side).or_default().push(*a);
                }
            }
        }

        let whole = sides.len() == 1;
        let mut side_keys: Vec<u32> = sides.keys().copied().collect();
        side_keys.sort();

        for key in side_keys {
            let members = &sides[&key];
            // Current views held on this side, deduped by id, with dead
            // members pruned.
            let mut prev_views: Vec<View> = Vec::new();
            for a in members {
                if let Some(v) = core.nodes.get(a).and_then(|n| n.member.view().cloned()) {
                    if !prev_views.iter().any(|p| p.id == v.id) {
                        prev_views.push(v);
                    }
                }
            }
            for v in &mut prev_views {
                v.members.retain(|m| members.contains(m));
            }
            prev_views.retain(|v| !v.members.is_empty());

            // Desired membership.
            let desired: Vec<Addr> = if prev_views.len() > 1 {
                // Merge: PRIMARY_PARTITION picks the winner lineage.
                let anchor = last_whole_coord.unwrap_or(prev_views[0].coordinator());
                let w = primary::pick_winner(&prev_views, anchor);
                let winner = prev_views[w].clone();
                let losers: Vec<&View> = prev_views
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != w)
                    .map(|(_, v)| v)
                    .collect();
                let mut merged = gms::merged_view(&winner, &losers).members;
                for a in members {
                    if !merged.contains(a) {
                        merged.push(*a); // brand-new joiners go last
                    }
                }
                merged
            } else if let Some(p) = prev_views.first() {
                let mut m = p.members.clone();
                for a in members {
                    if !m.contains(a) {
                        m.push(*a);
                    }
                }
                m
            } else {
                members.clone()
            };

            // Skip if every member already holds exactly this membership.
            let converged = members.iter().all(|a| {
                core.nodes
                    .get(a)
                    .and_then(|n| n.member.view())
                    .is_some_and(|v| v.members == desired)
            });
            if converged {
                if whole {
                    if let Some(gm) = core.groups.get_mut(group) {
                        gm.last_whole_coord = Some(desired[0]);
                    }
                }
                continue;
            }

            let seq = {
                let gm = core.groups.get_mut(group).expect("group exists");
                gm.last_seq += 1;
                gm.last_seq
            };
            let view = View::new(seq, desired);
            if whole {
                if let Some(gm) = core.groups.get_mut(group) {
                    gm.last_whole_coord = Some(view.coordinator());
                }
            }
            // Install directly at each member (view installation is the
            // GMS's own reliable channel).
            for m in view.members.clone() {
                Self::install_view(core, m, view.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_cluster(n: usize) -> (Cluster, Vec<GroupChannel>) {
        let cluster = Cluster::new(7);
        let chans: Vec<GroupChannel> = (0..n)
            .map(|_| cluster.create_channel(StackConfig::default()))
            .collect();
        for c in &chans {
            c.connect("g").unwrap();
            cluster.pump_all();
        }
        // Drain join-time events.
        for c in &chans {
            c.poll();
        }
        (cluster, chans)
    }

    fn messages(events: &[ChannelEvent]) -> Vec<Vec<u8>> {
        events
            .iter()
            .filter_map(|e| match e {
                ChannelEvent::Message { bytes, .. } => Some(bytes.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn members_see_each_other_in_view() {
        let (_cluster, chans) = seq_cluster(3);
        for c in &chans {
            let v = c.view().unwrap();
            assert_eq!(v.size(), 3);
            assert_eq!(v.coordinator(), chans[0].addr());
        }
    }

    #[test]
    fn sequencer_total_order() {
        let (cluster, chans) = seq_cluster(3);
        // Two concurrent senders.
        chans[1].mcast(vec![1]).unwrap();
        chans[2].mcast(vec![2]).unwrap();
        cluster.pump_all();
        let orders: Vec<Vec<Vec<u8>>> = chans.iter().map(|c| messages(&c.poll())).collect();
        assert_eq!(orders[0].len(), 2);
        assert_eq!(orders[0], orders[1], "identical delivery order everywhere");
        assert_eq!(orders[1], orders[2]);
    }

    #[test]
    fn join_triggers_state_transfer() {
        let cluster = Cluster::new(1);
        let a = cluster.create_channel(StackConfig::default());
        a.connect("g").unwrap();
        cluster.pump_all();
        a.poll();

        let b = cluster.create_channel(StackConfig::default());
        b.connect("g").unwrap();
        cluster.pump_all();

        // Coordinator got the StateRequest.
        let evs = a.poll();
        let joiner = evs.iter().find_map(|e| match e {
            ChannelEvent::StateRequest { joiner } => Some(*joiner),
            _ => None,
        });
        assert_eq!(joiner, Some(b.addr()));

        a.provide_state(b.addr(), vec![42]).unwrap();
        cluster.pump_all();
        let evs = b.poll();
        assert!(evs
            .iter()
            .any(|e| matches!(e, ChannelEvent::SetState { bytes } if bytes == &vec![42])));
    }

    #[test]
    fn crash_shrinks_view_and_rotates_coordinator() {
        let (cluster, chans) = seq_cluster(3);
        cluster.crash(chans[0].addr());
        cluster.detect_failures();
        cluster.pump_all();
        let v = chans[1].view().unwrap();
        assert_eq!(v.size(), 2);
        assert_eq!(v.coordinator(), chans[1].addr(), "next-oldest coordinates");
        // Group still works.
        chans[2].mcast(vec![9]).unwrap();
        cluster.pump_all();
        assert_eq!(messages(&chans[1].poll()).len(), 1);
    }

    #[test]
    fn partition_splits_views_and_merge_resyncs() {
        let (cluster, chans) = seq_cluster(3);
        let (a, b, c) = (chans[0].addr(), chans[1].addr(), chans[2].addr());
        cluster.partition(&[&[a], &[b, c]]);
        cluster.detect_failures();
        cluster.pump_all();

        assert_eq!(chans[0].view().unwrap().members, vec![a]);
        let side2 = chans[1].view().unwrap();
        assert_eq!(side2.members, vec![b, c]);
        assert_eq!(side2.coordinator(), b);

        // Heal: PRIMARY_PARTITION — the side holding the pre-partition
        // coordinator (a) wins; b/c must resync.
        cluster.heal();
        cluster.detect_failures();
        cluster.pump_all();

        let merged = chans[0].view().unwrap();
        assert_eq!(merged.coordinator(), a);
        assert_eq!(merged.size(), 3);

        let evs_b = chans[1].poll();
        assert!(
            evs_b.iter().any(
                |e| matches!(e, ChannelEvent::ResyncNeeded { coordinator } if *coordinator == a)
            ),
            "loser side told to resync: {evs_b:?}"
        );
        // Winner coordinator asked to provide state for the losers.
        let evs_a = chans[0].poll();
        let requests: Vec<Addr> = evs_a
            .iter()
            .filter_map(|e| match e {
                ChannelEvent::StateRequest { joiner } => Some(*joiner),
                _ => None,
            })
            .collect();
        assert!(requests.contains(&b) && requests.contains(&c));
    }

    #[test]
    fn primary_partition_prefers_lineage_over_size() {
        let (cluster, chans) = seq_cluster(3);
        let (a, b, c) = (chans[0].addr(), chans[1].addr(), chans[2].addr());
        // Old coordinator a isolated alone; bigger side is {b,c}.
        cluster.partition(&[&[a], &[b, c]]);
        cluster.detect_failures();
        cluster.pump_all();
        cluster.heal();
        cluster.detect_failures();
        cluster.pump_all();
        let v = chans[2].view().unwrap();
        assert_eq!(v.coordinator(), a, "lineage wins despite smaller side");
    }

    #[test]
    fn bimodal_delivers_with_loss_after_gossip() {
        let cluster = Cluster::new(3);
        let config = StackConfig {
            ordering: OrderingMode::Bimodal {
                loss: 0.4,
                fanout: 2,
            },
            ..Default::default()
        };
        let chans: Vec<GroupChannel> = (0..3)
            .map(|_| cluster.create_channel(config.clone()))
            .collect();
        for c in &chans {
            c.connect("g").unwrap();
            cluster.pump_all();
        }
        for c in &chans {
            c.poll();
        }
        for i in 0..20u8 {
            chans[0].mcast(vec![i]).unwrap();
        }
        cluster.pump_all();
        // Repair until everyone has everything.
        for _ in 0..10 {
            cluster.gossip_round();
            cluster.pump_all();
        }
        for c in &chans[1..] {
            let got = messages(&c.poll());
            assert_eq!(got.len(), 20, "all messages after repair");
            let expect: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i]).collect();
            assert_eq!(got, expect, "per-sender FIFO preserved");
        }
    }

    #[test]
    fn stable_round_prunes_retained_messages() {
        let cluster = Cluster::new(3);
        let config = StackConfig {
            ordering: OrderingMode::Bimodal {
                loss: 0.0,
                fanout: 1,
            },
            ..Default::default()
        };
        let a = cluster.create_channel(config.clone());
        let b = cluster.create_channel(config);
        a.connect("g").unwrap();
        cluster.pump_all();
        b.connect("g").unwrap();
        cluster.pump_all();
        a.mcast(vec![0; 64]).unwrap();
        cluster.pump_all();
        cluster.stable_round();
        // Everything delivered everywhere → retained stores empty.
        let core = cluster.core.lock();
        for n in core.nodes.values() {
            assert_eq!(n.member.retained_count(), 0);
        }
    }

    #[test]
    fn unbounded_queue_crashes_slow_receiver() {
        let cluster = Cluster::new(5);
        let bimodal = OrderingMode::Bimodal {
            loss: 0.0,
            fanout: 1,
        };
        // The sender has headroom; the slow receiver's unbounded queue is
        // what exhausts memory (the Fig. 5 failure mode).
        let a = cluster.create_channel(StackConfig {
            ordering: bimodal.clone(),
            inbox_bound: None,
            memory_limit: None,
        });
        let b = cluster.create_channel(StackConfig {
            ordering: bimodal,
            inbox_bound: None,
            memory_limit: Some(4_000),
        });
        a.connect("g").unwrap();
        cluster.pump_all();
        b.connect("g").unwrap();
        cluster.pump_all();
        a.poll();
        b.poll();
        // Flood without pumping: b's inbox grows without bound.
        let mut crashed = false;
        for i in 0..200 {
            if a.mcast(vec![i as u8; 100]).is_err() {
                break;
            }
            if !b.is_alive() {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "memory exhaustion killed the receiver");
        let evs = b.poll();
        assert!(evs
            .iter()
            .any(|e| matches!(e, ChannelEvent::Crashed { reason } if reason.contains("memory"))));
    }

    #[test]
    fn bounded_queue_applies_backpressure_instead() {
        let cluster = Cluster::new(5);
        let config = StackConfig {
            ordering: OrderingMode::Bimodal {
                loss: 0.0,
                fanout: 1,
            },
            inbox_bound: Some(8),
            memory_limit: Some(4_000),
        };
        let a = cluster.create_channel(config.clone());
        let b = cluster.create_channel(config);
        a.connect("g").unwrap();
        cluster.pump_all();
        b.connect("g").unwrap();
        cluster.pump_all();
        let mut backpressured = false;
        for i in 0..200 {
            match a.mcast(vec![i as u8; 100]) {
                Err(SendError::Backpressure) => {
                    backpressured = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
                Ok(()) => {}
            }
        }
        assert!(backpressured);
        assert!(b.is_alive(), "bounded mode degrades gracefully");
        // After draining, sends work again.
        cluster.pump_all();
        assert!(a.mcast(vec![1]).is_ok());
    }

    #[test]
    fn disconnect_leaves_group() {
        let (cluster, chans) = seq_cluster(2);
        chans[1].disconnect();
        cluster.pump_all();
        assert_eq!(chans[0].view().unwrap().members, vec![chans[0].addr()]);
        assert!(chans[1].view().is_none());
        assert_eq!(chans[1].mcast(vec![1]), Err(SendError::NotConnected));
    }

    #[test]
    fn gossip_with_fanout_exceeding_peers() {
        let cluster = Cluster::new(8);
        let config = StackConfig {
            ordering: OrderingMode::Bimodal {
                loss: 0.5,
                fanout: 10, // more than the single peer available
            },
            ..Default::default()
        };
        let a = cluster.create_channel(config.clone());
        let b = cluster.create_channel(config);
        a.connect("g").unwrap();
        cluster.pump_all();
        b.connect("g").unwrap();
        cluster.pump_all();
        a.poll();
        b.poll();
        for i in 0..10u8 {
            a.mcast(vec![i]).unwrap();
        }
        cluster.pump_all();
        for _ in 0..10 {
            cluster.gossip_round();
            cluster.pump_all();
        }
        let got: Vec<ChannelEvent> = b.poll();
        let msgs = got
            .iter()
            .filter(|e| matches!(e, ChannelEvent::Message { .. }))
            .count();
        assert_eq!(msgs, 10, "fanout clamp still repairs everything");
    }

    #[test]
    fn dead_member_operations_fail_cleanly() {
        let (cluster, chans) = seq_cluster(2);
        let victim = chans[1].addr();
        cluster.crash(victim);
        assert_eq!(chans[1].mcast(vec![1]), Err(SendError::Dead));
        assert_eq!(chans[1].connect("other"), Err(SendError::Dead));
        assert_eq!(
            chans[1].provide_state(chans[0].addr(), vec![]),
            Err(SendError::Dead)
        );
        assert!(!chans[1].is_alive());
        // The survivor is unaffected.
        cluster.detect_failures();
        cluster.pump_all();
        assert!(chans[0].mcast(vec![2]).is_ok());
    }

    #[test]
    fn single_member_group_self_delivers() {
        let cluster = Cluster::new(2);
        let solo = cluster.create_channel(StackConfig::default());
        solo.connect("lonely").unwrap();
        cluster.pump_all();
        solo.poll();
        solo.mcast(vec![7]).unwrap();
        cluster.pump_all();
        let msgs = messages(&solo.poll());
        assert_eq!(msgs, vec![vec![7]], "total order includes self-delivery");
    }

    #[test]
    fn two_groups_are_isolated() {
        let cluster = Cluster::new(3);
        let a = cluster.create_channel(StackConfig::default());
        let b = cluster.create_channel(StackConfig::default());
        a.connect("red").unwrap();
        cluster.pump_all();
        b.connect("blue").unwrap();
        cluster.pump_all();
        a.poll();
        b.poll();
        a.mcast(vec![1]).unwrap();
        cluster.pump_all();
        assert_eq!(messages(&a.poll()).len(), 1);
        assert!(messages(&b.poll()).is_empty(), "no cross-group leakage");
        assert_eq!(a.view().unwrap().size(), 1);
        assert_eq!(b.view().unwrap().size(), 1);
    }

    #[test]
    fn restart_rejoins_with_fresh_address() {
        let (cluster, chans) = seq_cluster(2);
        let dead = chans[1].addr();
        cluster.crash(dead);
        cluster.detect_failures();
        cluster.pump_all();
        chans[0].poll();

        // "Restart": a new channel (new incarnation) joins.
        let revived = cluster.create_channel(StackConfig::default());
        revived.connect("g").unwrap();
        cluster.pump_all();
        assert_ne!(revived.addr(), dead);
        let v = revived.view().unwrap();
        assert_eq!(v.size(), 2);
        // Coordinator offers state to the rejoiner.
        let evs = chans[0].poll();
        assert!(evs.iter().any(
            |e| matches!(e, ChannelEvent::StateRequest { joiner } if *joiner == revived.addr())
        ));
    }
}
