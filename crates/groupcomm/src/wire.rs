//! Wire messages exchanged between members.

use serde::{Deserialize, Serialize};

use crate::addr::Addr;
use crate::view::View;

/// Everything that travels between members. Serialized with serde so byte
/// sizes are honest for memory accounting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Wire {
    /// Member → coordinator: please sequence this multicast (Sequencer).
    Forward { origin: Addr, body: Vec<u8> },
    /// Coordinator → members: globally ordered multicast (Sequencer).
    Ordered {
        gseq: u64,
        origin: Addr,
        body: Vec<u8>,
    },
    /// Sender → members: per-sender FIFO multicast (Bimodal).
    Gossip {
        origin: Addr,
        sseq: u64,
        body: Vec<u8>,
    },
    /// Gossip anti-entropy: "my highest contiguous seq per origin is …".
    DigestPush { entries: Vec<(Addr, u64)> },
    /// Retransmission of messages the digest showed missing.
    Retransmit { messages: Vec<(Addr, u64, Vec<u8>)> },
    /// Coordinator → members: install this view.
    InstallView(View),
    /// Coordinator/winner → member: full application state snapshot.
    State { bytes: Vec<u8> },
}

impl Wire {
    /// Serialized size, for memory/byte accounting.
    pub fn size(&self) -> u64 {
        serde_json::to_vec(self)
            .map(|v| v.len() as u64)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip_and_size() {
        let w = Wire::Ordered {
            gseq: 9,
            origin: Addr(1),
            body: vec![1, 2, 3],
        };
        let bytes = serde_json::to_vec(&w).unwrap();
        let back: Wire = serde_json::from_slice(&bytes).unwrap();
        match back {
            Wire::Ordered { gseq, origin, body } => {
                assert_eq!((gseq, origin, body), (9, Addr(1), vec![1, 2, 3]));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(w.size(), bytes.len() as u64);
    }
}
