//! Stack configuration — the JGroups "protocol stack file" analogue.

/// Multicast ordering/reliability discipline.
#[derive(Clone, Debug, PartialEq)]
pub enum OrderingMode {
    /// Virtual-synchrony suite: every multicast is forwarded to the
    /// coordinator, stamped with a global sequence number, and delivered
    /// in that order at every member. Atomic, totally ordered — and the
    /// coordinator is the throughput bottleneck ("the entire group is only
    /// as fast as its slowest member").
    Sequencer,
    /// Bimodal-multicast suite: senders multicast directly (per-sender
    /// FIFO), messages may be lost with probability `loss`, and periodic
    /// gossip rounds repair gaps. Scalable, probabilistically reliable —
    /// the HDNS default.
    Bimodal {
        /// Per-message loss probability on the initial multicast.
        loss: f64,
        /// Peers contacted per gossip round.
        fanout: usize,
    },
}

impl OrderingMode {
    /// The paper's default HDNS stack.
    pub fn bimodal_default() -> OrderingMode {
        OrderingMode::Bimodal {
            loss: 0.05,
            fanout: 2,
        }
    }
}

/// Per-channel stack configuration.
#[derive(Clone, Debug)]
pub struct StackConfig {
    pub ordering: OrderingMode,
    /// Maximum queued inbound messages before flow control reacts;
    /// `None` = unbounded (the paper-faithful, crash-prone setting).
    pub inbox_bound: Option<usize>,
    /// Process memory budget for retained/queued message bytes; exceeding
    /// it crashes the member (memory exhaustion). `None` = unlimited.
    pub memory_limit: Option<u64>,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            ordering: OrderingMode::Sequencer,
            inbox_bound: None,
            memory_limit: None,
        }
    }
}

impl StackConfig {
    /// The configuration HDNS shipped with: bimodal multicast, unbounded
    /// queues (Fig. 5's failure mode).
    pub fn hdns_default() -> StackConfig {
        StackConfig {
            ordering: OrderingMode::bimodal_default(),
            inbox_bound: None,
            memory_limit: Some(64 * 1024 * 1024),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = StackConfig::default();
        assert_eq!(c.ordering, OrderingMode::Sequencer);
        assert!(c.inbox_bound.is_none());

        let h = StackConfig::hdns_default();
        assert!(matches!(h.ordering, OrderingMode::Bimodal { .. }));
        assert!(h.memory_limit.is_some());
    }
}
