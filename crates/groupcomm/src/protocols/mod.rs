//! The protocol-stack building blocks.
//!
//! Each module is a self-contained, synchronously testable state machine;
//! [`crate::cluster::Cluster`] composes them per member according to the
//! [`crate::config::StackConfig`] — the analogue of assembling a JGroups
//! stack from protocol layers.

pub mod bimodal;
pub mod fd;
pub mod flow;
pub mod gms;
pub mod primary;
pub mod sequencer;
