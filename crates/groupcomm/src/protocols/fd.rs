//! Failure detection.
//!
//! Real JGroups FD layers send heartbeats and declare a member suspected
//! after missed acks. In the deterministic cluster the transport itself
//! knows reachability, so the detector reduces to an oracle sweep — the
//! same *information flow* (FD feeds suspicions to GMS, which excludes
//! suspects from the next view) without wall-clock timers.

use crate::addr::Addr;

/// Compute which of `members` a node at `me` should suspect, given a
/// reachability oracle.
pub fn suspects(me: Addr, members: &[Addr], reachable: impl Fn(Addr, Addr) -> bool) -> Vec<Addr> {
    members
        .iter()
        .copied()
        .filter(|&m| m != me && !reachable(me, m))
        .collect()
}

/// A heartbeat-based detector for real-time deployments: tracks the last
/// heartbeat per member and suspects members silent for longer than the
/// timeout. (The deterministic cluster uses [`suspects`]; this state
/// machine backs wall-clock drivers and is exercised by the HDNS recovery
/// tests through manual clocks.)
#[derive(Debug)]
pub struct HeartbeatDetector {
    timeout_ms: u64,
    last_seen: std::collections::HashMap<Addr, u64>,
}

impl HeartbeatDetector {
    pub fn new(timeout_ms: u64) -> Self {
        HeartbeatDetector {
            timeout_ms,
            last_seen: Default::default(),
        }
    }

    /// Record a heartbeat (or any traffic) from `from` at `now_ms`.
    pub fn heard_from(&mut self, from: Addr, now_ms: u64) {
        self.last_seen.insert(from, now_ms);
    }

    /// Members silent past the timeout.
    pub fn sweep(&self, members: &[Addr], me: Addr, now_ms: u64) -> Vec<Addr> {
        members
            .iter()
            .copied()
            .filter(|&m| {
                m != me
                    && match self.last_seen.get(&m) {
                        Some(&t) => now_ms.saturating_sub(t) > self.timeout_ms,
                        None => true,
                    }
            })
            .collect()
    }

    /// Forget a member (left or excluded).
    pub fn forget(&mut self, member: Addr) {
        self.last_seen.remove(&member);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_suspects_unreachable() {
        let members = [Addr(1), Addr(2), Addr(3)];
        let down = Addr(3);
        let s = suspects(Addr(1), &members, |_, to| to != down);
        assert_eq!(s, vec![Addr(3)]);
        // Never suspects self even if the oracle is weird.
        let s = suspects(Addr(1), &members, |_, _| false);
        assert_eq!(s, vec![Addr(2), Addr(3)]);
    }

    #[test]
    fn heartbeat_timeout() {
        let mut fd = HeartbeatDetector::new(100);
        let members = [Addr(1), Addr(2), Addr(3)];
        fd.heard_from(Addr(2), 0);
        fd.heard_from(Addr(3), 50);

        assert!(fd.sweep(&members, Addr(1), 100).is_empty());
        assert_eq!(fd.sweep(&members, Addr(1), 101), vec![Addr(2)]);
        assert_eq!(fd.sweep(&members, Addr(1), 151), vec![Addr(2), Addr(3)]);

        fd.heard_from(Addr(2), 151);
        assert_eq!(fd.sweep(&members, Addr(1), 200), vec![Addr(3)]);
    }

    #[test]
    fn unknown_member_is_suspect() {
        let fd = HeartbeatDetector::new(100);
        assert_eq!(fd.sweep(&[Addr(9)], Addr(1), 0), vec![Addr(9)]);
    }

    #[test]
    fn forget_removes_tracking() {
        let mut fd = HeartbeatDetector::new(100);
        fd.heard_from(Addr(2), 0);
        fd.forget(Addr(2));
        assert_eq!(fd.sweep(&[Addr(2)], Addr(1), 10), vec![Addr(2)]);
    }
}
