//! Coordinator-based total ordering (the virtual-synchrony suite's
//! SEQUENCER protocol).
//!
//! Multicasts are forwarded to the coordinator, which stamps a global
//! sequence number; every member delivers strictly in stamp order,
//! buffering out-of-order arrivals.

use std::collections::BTreeMap;

use crate::addr::Addr;

/// Per-member sequencer state (coordinator role included).
#[derive(Debug, Default)]
pub struct Sequencer {
    /// Next stamp to assign (meaningful only at the coordinator).
    next_stamp: u64,
    /// Next gseq this member will deliver.
    next_deliver: u64,
    /// Out-of-order buffer.
    pending: BTreeMap<u64, (Addr, Vec<u8>)>,
}

impl Sequencer {
    pub fn new() -> Self {
        Sequencer::default()
    }

    /// Coordinator: stamp a forwarded multicast.
    pub fn assign(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Member: accept an ordered message; returns everything now
    /// deliverable, in order.
    pub fn on_ordered(&mut self, gseq: u64, origin: Addr, body: Vec<u8>) -> Vec<(Addr, Vec<u8>)> {
        if gseq >= self.next_deliver {
            self.pending.insert(gseq, (origin, body));
        }
        let mut out = Vec::new();
        while let Some(entry) = self.pending.remove(&self.next_deliver) {
            out.push(entry);
            self.next_deliver += 1;
        }
        out
    }

    /// Messages buffered but not yet deliverable (diagnostics / memory
    /// accounting).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Reset on view installation: a new view starts a new stamp epoch.
    pub fn reset(&mut self) {
        self.next_stamp = 0;
        self.next_deliver = 0;
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery() {
        let mut s = Sequencer::new();
        assert_eq!(s.assign(), 0);
        assert_eq!(s.assign(), 1);
        let d = s.on_ordered(0, Addr(1), vec![0]);
        assert_eq!(d.len(), 1);
        let d = s.on_ordered(1, Addr(2), vec![1]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn out_of_order_buffers_until_gap_fills() {
        let mut s = Sequencer::new();
        assert!(s.on_ordered(2, Addr(1), vec![2]).is_empty());
        assert!(s.on_ordered(1, Addr(1), vec![1]).is_empty());
        assert_eq!(s.pending_len(), 2);
        let d = s.on_ordered(0, Addr(1), vec![0]);
        assert_eq!(d.len(), 3);
        assert_eq!(
            d.iter().map(|(_, b)| b[0]).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn duplicates_and_stale_ignored() {
        let mut s = Sequencer::new();
        assert_eq!(s.on_ordered(0, Addr(1), vec![0]).len(), 1);
        assert!(s.on_ordered(0, Addr(1), vec![0]).is_empty(), "stale");
    }

    #[test]
    fn reset_starts_new_epoch() {
        let mut s = Sequencer::new();
        s.assign();
        s.on_ordered(0, Addr(1), vec![0]);
        s.reset();
        assert_eq!(s.assign(), 0);
        assert_eq!(s.on_ordered(0, Addr(1), vec![9]).len(), 1);
    }
}
