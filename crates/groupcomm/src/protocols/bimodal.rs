//! Bimodal multicast: per-sender FIFO delivery with gossip repair.
//!
//! Senders multicast directly; each member delivers each origin's stream
//! in contiguous per-sender order, buffering gaps. Periodic anti-entropy
//! rounds exchange digests ("my highest contiguous seq per origin") and
//! retransmit what peers are missing. Retained messages are pruned once a
//! stability digest shows all members have them (the STABLE protocol).

use std::collections::{BTreeMap, HashMap};

use crate::addr::Addr;

/// Per-member bimodal state.
#[derive(Debug, Default)]
pub struct Bimodal {
    /// My next send sequence number.
    next_sseq: u64,
    /// Retained messages per origin (for retransmission), including my own.
    store: HashMap<Addr, BTreeMap<u64, Vec<u8>>>,
    /// Highest contiguous sequence delivered per origin.
    delivered: HashMap<Addr, u64>,
    /// Bytes currently retained (memory accounting).
    retained_bytes: u64,
}

impl Bimodal {
    pub fn new() -> Self {
        Bimodal::default()
    }

    /// Allocate the sequence number for my next multicast (and retain the
    /// message so I can serve retransmissions). Returns the sseq.
    pub fn next_send(&mut self, me: Addr, body: Vec<u8>) -> u64 {
        let sseq = self.next_sseq;
        self.next_sseq += 1;
        self.retain(me, sseq, body);
        sseq
    }

    fn retain(&mut self, origin: Addr, sseq: u64, body: Vec<u8>) {
        let per = self.store.entry(origin).or_default();
        if let std::collections::btree_map::Entry::Vacant(e) = per.entry(sseq) {
            self.retained_bytes += body.len() as u64;
            e.insert(body);
        }
    }

    /// Record an incoming message; returns the bodies now deliverable from
    /// that origin, in sequence order. (The sender delivers its own
    /// messages through here too, giving uniform FIFO self-delivery.)
    pub fn on_message(&mut self, origin: Addr, sseq: u64, body: Vec<u8>) -> Vec<(u64, Vec<u8>)> {
        self.retain(origin, sseq, body);
        let mut out = Vec::new();
        let next = self.delivered.entry(origin).or_insert(0);
        let per = self.store.get(&origin).expect("retained above");
        while let Some(body) = per.get(next) {
            out.push((*next, body.clone()));
            *next += 1;
        }
        out
    }

    /// My digest: highest contiguous delivered seq per origin (exclusive —
    /// the count of delivered messages).
    pub fn digest(&self) -> Vec<(Addr, u64)> {
        let mut d: Vec<(Addr, u64)> = self.delivered.iter().map(|(a, s)| (*a, *s)).collect();
        d.sort();
        d
    }

    /// Messages I retain that `peer_digest` shows the peer has not yet
    /// delivered (gap filling).
    pub fn missing_for(&self, peer_digest: &[(Addr, u64)]) -> Vec<(Addr, u64, Vec<u8>)> {
        let peer: HashMap<Addr, u64> = peer_digest.iter().copied().collect();
        let mut out = Vec::new();
        for (origin, per) in &self.store {
            let peer_has = peer.get(origin).copied().unwrap_or(0);
            for (sseq, body) in per.range(peer_has..) {
                out.push((*origin, *sseq, body.clone()));
            }
        }
        out.sort_by_key(|(a, s, _)| (*a, *s));
        out
    }

    /// Prune retained messages that `stable` shows everyone has delivered.
    pub fn prune(&mut self, stable: &[(Addr, u64)]) {
        for (origin, up_to) in stable {
            if let Some(per) = self.store.get_mut(origin) {
                let keep = per.split_off(up_to);
                let dropped: u64 = per.values().map(|b| b.len() as u64).sum();
                self.retained_bytes = self.retained_bytes.saturating_sub(dropped);
                *per = keep;
            }
        }
        self.store.retain(|_, per| !per.is_empty());
    }

    /// Bytes currently retained.
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }

    /// Number of retained messages (diagnostics).
    pub fn retained_count(&self) -> usize {
        self.store.values().map(|m| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_origin_with_gap() {
        let mut b = Bimodal::new();
        let o = Addr(7);
        assert!(b.on_message(o, 1, vec![1]).is_empty(), "gap at 0");
        let d = b.on_message(o, 0, vec![0]);
        assert_eq!(d, vec![(0, vec![0]), (1, vec![1])]);
        // Duplicate delivery suppressed.
        assert!(b.on_message(o, 0, vec![0]).is_empty());
    }

    #[test]
    fn independent_origins() {
        let mut b = Bimodal::new();
        assert_eq!(b.on_message(Addr(1), 0, vec![1]).len(), 1);
        assert_eq!(b.on_message(Addr(2), 0, vec![2]).len(), 1);
        assert!(b.on_message(Addr(2), 2, vec![9]).is_empty());
    }

    #[test]
    fn digest_and_gap_fill() {
        let mut sender = Bimodal::new();
        let me = Addr(1);
        let s0 = sender.next_send(me, vec![10]);
        let s1 = sender.next_send(me, vec![11]);
        assert_eq!((s0, s1), (0, 1));
        sender.on_message(me, 0, vec![10]);
        sender.on_message(me, 1, vec![11]);

        let mut receiver = Bimodal::new();
        // Receiver saw only message 1 (0 lost).
        receiver.on_message(me, 1, vec![11]);
        let digest = receiver.digest();
        // Receiver's contiguous point for m1 is 0 (nothing delivered).
        assert_eq!(digest, vec![(me, 0)]);

        let fill = sender.missing_for(&digest);
        assert_eq!(fill.len(), 2, "retransmit everything from 0");
        let mut delivered = Vec::new();
        for (o, s, body) in fill {
            delivered.extend(receiver.on_message(o, s, body));
        }
        assert_eq!(delivered.len(), 2);
        assert_eq!(receiver.digest(), vec![(me, 2)]);
    }

    #[test]
    fn prune_releases_memory() {
        let mut b = Bimodal::new();
        let me = Addr(1);
        b.next_send(me, vec![0; 100]);
        b.next_send(me, vec![0; 100]);
        assert_eq!(b.retained_bytes(), 200);
        assert_eq!(b.retained_count(), 2);
        b.prune(&[(me, 1)]);
        assert_eq!(b.retained_bytes(), 100);
        assert_eq!(b.retained_count(), 1);
        b.prune(&[(me, 2)]);
        assert_eq!(b.retained_count(), 0);
    }

    #[test]
    fn missing_for_unknown_origin_sends_all() {
        let mut a = Bimodal::new();
        a.next_send(Addr(1), vec![5]);
        let fill = a.missing_for(&[]);
        assert_eq!(fill.len(), 1);
    }
}
