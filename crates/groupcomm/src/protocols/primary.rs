//! The PRIMARY_PARTITION protocol (the paper's §4.3 addition).
//!
//! "After a transient network partition, the PRIMARY PARTITION protocol
//! resolves state conflicts by uniquely selecting the partition deemed to
//! have the valid state, and forcing other partitions to re-synchronize."
//!
//! Selection rule, applied in order:
//! 1. the side whose membership contains the pre-partition coordinator
//!    (it kept the "primary" lineage);
//! 2. otherwise the side with the most members (majority heuristic);
//! 3. ties broken by lowest coordinator address (deterministic).

use crate::addr::Addr;
use crate::view::View;

/// Pick the winning side among partition views. Returns the index into
/// `sides`. Panics on an empty slice — callers merge at least one side.
pub fn pick_winner(sides: &[View], pre_partition_coord: Addr) -> usize {
    assert!(!sides.is_empty(), "no partition sides to merge");
    if let Some(i) = sides.iter().position(|v| v.contains(pre_partition_coord)) {
        return i;
    }
    let mut best = 0;
    for (i, v) in sides.iter().enumerate().skip(1) {
        let b = &sides[best];
        if v.size() > b.size() || (v.size() == b.size() && v.coordinator() < b.coordinator()) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_lineage_wins() {
        let a = View::new(2, vec![Addr(1)]);
        let b = View::new(2, vec![Addr(2), Addr(3), Addr(4)]);
        // Old coordinator was m1: its (smaller!) side wins.
        assert_eq!(pick_winner(&[a.clone(), b.clone()], Addr(1)), 0);
        // Old coordinator in the other side.
        assert_eq!(pick_winner(&[a, b], Addr(3)), 1);
    }

    #[test]
    fn size_majority_when_lineage_lost() {
        let a = View::new(2, vec![Addr(5)]);
        let b = View::new(2, vec![Addr(6), Addr(7)]);
        // Coordinator m1 crashed entirely; bigger side wins.
        assert_eq!(pick_winner(&[a, b], Addr(1)), 1);
    }

    #[test]
    fn deterministic_tiebreak() {
        let a = View::new(2, vec![Addr(9)]);
        let b = View::new(2, vec![Addr(4)]);
        assert_eq!(pick_winner(&[a, b], Addr(1)), 1, "lower coord addr");
    }

    #[test]
    fn single_side_trivially_wins() {
        let a = View::new(2, vec![Addr(2)]);
        assert_eq!(pick_winner(&[a], Addr(1)), 0);
    }
}
