//! Flow control: inbound queue accounting.
//!
//! The paper traced the HDNS overload crash to this layer: "internal
//! JGroups message queues … grow without bounds, eventually causing memory
//! exhaustion and server crash". [`InboxAccount`] supports both the
//! paper-faithful unbounded mode (crash on memory exhaustion) and the
//! bounded fix (reject with backpressure, degrade gracefully) measured by
//! the ablation experiment.

/// Admission decision for an inbound message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Enqueued.
    Ok,
    /// Bounded queue full: message refused (sender should back off).
    Reject,
    /// Unbounded queue exceeded the memory budget: the process dies.
    Crash,
}

/// Queue/memory accounting for one member.
#[derive(Clone, Debug)]
pub struct InboxAccount {
    bound: Option<usize>,
    memory_limit: Option<u64>,
    queued: usize,
    bytes: u64,
    /// High-water marks for diagnostics.
    pub max_queued: usize,
    pub max_bytes: u64,
}

impl InboxAccount {
    pub fn new(bound: Option<usize>, memory_limit: Option<u64>) -> Self {
        InboxAccount {
            bound,
            memory_limit,
            queued: 0,
            bytes: 0,
            max_queued: 0,
            max_bytes: 0,
        }
    }

    /// Try to admit a message of `size` bytes.
    pub fn admit(&mut self, size: u64) -> Admission {
        if let Some(bound) = self.bound {
            if self.queued >= bound {
                return Admission::Reject;
            }
        }
        self.queued += 1;
        self.bytes += size;
        self.max_queued = self.max_queued.max(self.queued);
        self.max_bytes = self.max_bytes.max(self.bytes);
        if let Some(limit) = self.memory_limit {
            if self.bound.is_none() && self.bytes > limit {
                return Admission::Crash;
            }
        }
        Admission::Ok
    }

    /// A message of `size` bytes finished processing.
    pub fn release(&mut self, size: u64) {
        self.queued = self.queued.saturating_sub(1);
        self.bytes = self.bytes.saturating_sub(size);
    }

    pub fn queued(&self) -> usize {
        self.queued
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_crashes_on_memory_exhaustion() {
        let mut q = InboxAccount::new(None, Some(250));
        assert_eq!(q.admit(100), Admission::Ok);
        assert_eq!(q.admit(100), Admission::Ok);
        assert_eq!(q.admit(100), Admission::Crash, "301 bytes > 250 budget");
        assert_eq!(q.max_bytes, 300);
    }

    #[test]
    fn bounded_rejects_instead_of_crashing() {
        let mut q = InboxAccount::new(Some(2), Some(100));
        assert_eq!(q.admit(90), Admission::Ok);
        assert_eq!(q.admit(90), Admission::Ok);
        // Bounded: never crashes, rejects at the bound.
        assert_eq!(q.admit(90), Admission::Reject);
        assert_eq!(q.queued(), 2);
    }

    #[test]
    fn release_frees_capacity() {
        let mut q = InboxAccount::new(Some(1), None);
        assert_eq!(q.admit(10), Admission::Ok);
        assert_eq!(q.admit(10), Admission::Reject);
        q.release(10);
        assert_eq!(q.admit(10), Admission::Ok);
        assert_eq!(q.bytes(), 10);
    }

    #[test]
    fn no_limits_always_ok() {
        let mut q = InboxAccount::new(None, None);
        for _ in 0..10_000 {
            assert_eq!(q.admit(1_000), Admission::Ok);
        }
        assert_eq!(q.max_queued, 10_000);
    }
}
