//! Group membership service helpers.
//!
//! View arithmetic used by the cluster's membership engine: computing
//! successor views on join/leave/crash while preserving join order and the
//! oldest-member-coordinates rule.

use crate::addr::Addr;
use crate::view::View;

/// Compute the next view after `joiner` joins (appended, preserving join
/// order). `prev` is `None` for a brand-new group.
pub fn view_after_join(prev: Option<&View>, joiner: Addr) -> View {
    match prev {
        None => View::new(1, vec![joiner]),
        Some(v) => {
            let mut members = v.members.clone();
            if !members.contains(&joiner) {
                members.push(joiner);
            }
            View::new(v.id.seq + 1, members)
        }
    }
}

/// Compute the next view after `leavers` are excluded (leave or crash);
/// `None` when nobody remains.
pub fn view_after_exclude(prev: &View, leavers: &[Addr]) -> Option<View> {
    let members: Vec<Addr> = prev
        .members
        .iter()
        .copied()
        .filter(|m| !leavers.contains(m))
        .collect();
    if members.is_empty() {
        None
    } else {
        Some(View::new(prev.id.seq + 1, members))
    }
}

/// Compute the merged view joining several partition-side views.
/// Members are ordered: winner side first (its join order), then the
/// remaining sides' members in (side, join) order — so the winner's
/// coordinator coordinates the merged group.
pub fn merged_view(winner: &View, losers: &[&View]) -> View {
    let mut members = winner.members.clone();
    let max_seq = losers
        .iter()
        .map(|v| v.id.seq)
        .chain(std::iter::once(winner.id.seq))
        .max()
        .expect("non-empty");
    for side in losers {
        for m in &side.members {
            if !members.contains(m) {
                members.push(*m);
            }
        }
    }
    View::new(max_seq + 1, members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_sequence() {
        let v1 = view_after_join(None, Addr(1));
        assert_eq!(v1.id.seq, 1);
        assert_eq!(v1.coordinator(), Addr(1));
        let v2 = view_after_join(Some(&v1), Addr(2));
        assert_eq!(v2.members, vec![Addr(1), Addr(2)]);
        assert_eq!(v2.id.seq, 2);
        // Rejoining an existing member does not duplicate.
        let v3 = view_after_join(Some(&v2), Addr(2));
        assert_eq!(v3.members, v2.members);
    }

    #[test]
    fn exclude_rotates_coordinator() {
        let v = View::new(5, vec![Addr(1), Addr(2), Addr(3)]);
        let v2 = view_after_exclude(&v, &[Addr(1)]).unwrap();
        assert_eq!(v2.coordinator(), Addr(2), "next-oldest coordinates");
        assert_eq!(v2.id.seq, 6);
        assert!(view_after_exclude(&v2, &[Addr(2), Addr(3)]).is_none());
    }

    #[test]
    fn merge_prefers_winner_ordering() {
        let winner = View::new(7, vec![Addr(1), Addr(3)]);
        let loser = View::new(9, vec![Addr(2), Addr(4)]);
        let merged = merged_view(&winner, &[&loser]);
        assert_eq!(merged.members, vec![Addr(1), Addr(3), Addr(2), Addr(4)]);
        assert_eq!(merged.coordinator(), Addr(1));
        assert_eq!(merged.id.seq, 10, "past both sides' sequences");
    }
}
