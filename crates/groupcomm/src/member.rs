//! The sans-IO per-member protocol engine.
//!
//! [`MemberCore`] is one group member's protocol state — sequencer,
//! bimodal store, installed view, pending events — with **no transport
//! attached**. Every operation consumes a [`Wire`] (or an application
//! request) and returns the [`Outgoing`] messages it wants sent; the
//! caller decides how they travel. The deterministic in-process
//! [`Cluster`](crate::cluster::Cluster) drives cores through its seeded
//! FIFO, and `rndi-cluster` drives the *same* cores over real TCP — the
//! simnet tests stay the oracle for the protocol logic both share.

use std::collections::VecDeque;

use crate::addr::Addr;
use crate::channel::{ChannelEvent, SendError};
use crate::config::OrderingMode;
use crate::protocols::bimodal::Bimodal;
use crate::protocols::sequencer::Sequencer;
use crate::view::View;
use crate::wire::Wire;

/// A wire message the core wants delivered to `to`.
#[derive(Clone, Debug)]
pub struct Outgoing {
    pub to: Addr,
    pub wire: Wire,
}

/// One member's protocol state machine, transport-agnostic.
pub struct MemberCore {
    me: Addr,
    ordering: OrderingMode,
    view: Option<View>,
    seq: Sequencer,
    bim: Bimodal,
    events: VecDeque<ChannelEvent>,
}

impl MemberCore {
    pub fn new(me: Addr, ordering: OrderingMode) -> MemberCore {
        MemberCore {
            me,
            ordering,
            view: None,
            seq: Sequencer::new(),
            bim: Bimodal::new(),
            events: VecDeque::new(),
        }
    }

    /// This member's address.
    pub fn me(&self) -> Addr {
        self.me
    }

    /// The currently installed view, if any.
    pub fn view(&self) -> Option<&View> {
        self.view.as_ref()
    }

    /// Drop the installed view (leave / crash).
    pub fn clear_view(&mut self) {
        self.view = None;
    }

    /// Queue an event for the application (used by drivers for
    /// transport-level conditions like [`ChannelEvent::Crashed`]).
    pub fn push_event(&mut self, event: ChannelEvent) {
        self.events.push_back(event);
    }

    /// Drain pending application events.
    pub fn take_events(&mut self) -> Vec<ChannelEvent> {
        self.events.drain(..).collect()
    }

    /// Multicast `bytes` to the group under the configured ordering.
    ///
    /// Returns one [`Outgoing`] per target; for bimodal stacks the
    /// *transport* applies loss per target (the core proposes the full
    /// fan-out in view-member order).
    pub fn mcast(&mut self, bytes: Vec<u8>) -> Result<Vec<Outgoing>, SendError> {
        let view = self.view.clone().ok_or(SendError::NotConnected)?;
        let mut out = Vec::new();
        match self.ordering {
            OrderingMode::Sequencer => {
                // Forward to the coordinator (possibly myself) for stamping.
                out.push(Outgoing {
                    to: view.coordinator(),
                    wire: Wire::Forward {
                        origin: self.me,
                        body: bytes,
                    },
                });
            }
            OrderingMode::Bimodal { .. } => {
                let sseq = self.bim.next_send(self.me, bytes.clone());
                for m in view.members {
                    out.push(Outgoing {
                        to: m,
                        wire: Wire::Gossip {
                            origin: self.me,
                            sseq,
                            body: bytes.clone(),
                        },
                    });
                }
            }
        }
        Ok(out)
    }

    /// Answer a [`ChannelEvent::StateRequest`] with a state snapshot.
    pub fn provide_state(&self, to: Addr, bytes: Vec<u8>) -> Outgoing {
        Outgoing {
            to,
            wire: Wire::State { bytes },
        }
    }

    /// Process one inbound wire message; returns follow-up sends.
    pub fn on_wire(&mut self, from: Addr, wire: Wire) -> Vec<Outgoing> {
        let mut out = Vec::new();
        match wire {
            Wire::Forward { origin, body } => {
                // I am (supposed to be) the coordinator: stamp + multicast.
                let Some(view) = self.view.clone() else {
                    return out;
                };
                if view.coordinator() != self.me {
                    // Stale coordinator info at the sender: re-forward.
                    out.push(Outgoing {
                        to: view.coordinator(),
                        wire: Wire::Forward { origin, body },
                    });
                    return out;
                }
                let gseq = self.seq.assign();
                for m in view.members {
                    out.push(Outgoing {
                        to: m,
                        wire: Wire::Ordered {
                            gseq,
                            origin,
                            body: body.clone(),
                        },
                    });
                }
            }
            Wire::Ordered { gseq, origin, body } => {
                for (from, bytes) in self.seq.on_ordered(gseq, origin, body) {
                    self.events.push_back(ChannelEvent::Message { from, bytes });
                }
            }
            Wire::Gossip { origin, sseq, body } => {
                for (_s, bytes) in self.bim.on_message(origin, sseq, body) {
                    self.events.push_back(ChannelEvent::Message {
                        from: origin,
                        bytes,
                    });
                }
            }
            Wire::DigestPush { entries } => {
                let missing = self.bim.missing_for(&entries);
                if !missing.is_empty() {
                    out.push(Outgoing {
                        to: from,
                        wire: Wire::Retransmit { messages: missing },
                    });
                }
            }
            Wire::Retransmit { messages } => {
                for (origin, sseq, body) in messages {
                    for (_s, bytes) in self.bim.on_message(origin, sseq, body) {
                        self.events.push_back(ChannelEvent::Message {
                            from: origin,
                            bytes,
                        });
                    }
                }
            }
            Wire::InstallView(view) => {
                self.install_view(view);
            }
            Wire::State { bytes } => {
                self.events.push_back(ChannelEvent::SetState { bytes });
            }
        }
        out
    }

    /// Install a view: reset ordering state, emit the view event, and (as
    /// coordinator) request state on behalf of every newcomer; members
    /// whose previous view lacked the new coordinator learn they lost the
    /// primary-partition decision.
    pub fn install_view(&mut self, view: View) {
        let prev = self.view.replace(view.clone());
        if prev.as_ref().is_some_and(|p| p.id == view.id) {
            return; // already installed
        }
        self.seq.reset();
        self.events.push_back(ChannelEvent::View(view.clone()));
        let i_coordinate = view.coordinator() == self.me;
        if i_coordinate {
            // Ask me for state on behalf of every newcomer.
            let newcomers: Vec<Addr> = view
                .members
                .iter()
                .copied()
                .filter(|m| {
                    *m != self.me
                        && match &prev {
                            Some(p) => !p.contains(*m),
                            None => true,
                        }
                })
                .collect();
            for j in newcomers {
                self.events
                    .push_back(ChannelEvent::StateRequest { joiner: j });
            }
        } else if let Some(p) = &prev {
            if !p.contains(view.coordinator()) {
                // My old side lost the primary-partition decision.
                self.events.push_back(ChannelEvent::ResyncNeeded {
                    coordinator: view.coordinator(),
                });
            }
        }
    }

    // --------------------------------------------------------------
    // Bimodal anti-entropy surface (drivers run the gossip schedule)
    // --------------------------------------------------------------

    /// "My highest contiguous seq per origin is …" — push to peers.
    pub fn digest(&self) -> Vec<(Addr, u64)> {
        self.bim.digest()
    }

    /// Prune retained messages the whole group is known to have.
    pub fn prune(&mut self, stable: &[(Addr, u64)]) {
        self.bim.prune(stable)
    }

    /// Messages retained for retransmission.
    pub fn retained_count(&self) -> usize {
        self.bim.retained_count()
    }

    /// Ordered-but-undelivered backlog (diagnostics).
    pub fn pending_len(&self) -> usize {
        self.seq.pending_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(seq: u64, members: &[u64]) -> View {
        View::new(seq, members.iter().map(|m| Addr(*m)).collect())
    }

    #[test]
    fn sequencer_core_roundtrip_without_transport() {
        let mut a = MemberCore::new(Addr(1), OrderingMode::Sequencer);
        let mut b = MemberCore::new(Addr(2), OrderingMode::Sequencer);
        a.install_view(view(1, &[1, 2]));
        b.install_view(view(1, &[1, 2]));
        a.take_events();
        b.take_events();

        // b multicasts: Forward goes to the coordinator a.
        let out = b.mcast(b"hi".to_vec()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, Addr(1));

        // a stamps and fans out Ordered to both members.
        let fan = a.on_wire(Addr(2), out[0].wire.clone());
        assert_eq!(fan.len(), 2);
        for o in fan {
            let core = if o.to == Addr(1) { &mut a } else { &mut b };
            assert!(core.on_wire(Addr(1), o.wire).is_empty());
        }
        for core in [&mut a, &mut b] {
            let evs = core.take_events();
            assert!(evs
                .iter()
                .any(|e| matches!(e, ChannelEvent::Message { bytes, .. } if bytes == b"hi")));
        }
    }

    #[test]
    fn stale_coordinator_reforwards() {
        let mut b = MemberCore::new(Addr(2), OrderingMode::Sequencer);
        b.install_view(view(3, &[1, 2]));
        b.take_events();
        // b is not the coordinator; a Forward sent to it bounces onward.
        let out = b.on_wire(
            Addr(3),
            Wire::Forward {
                origin: Addr(3),
                body: vec![9],
            },
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, Addr(1));
    }

    #[test]
    fn coordinator_requests_state_for_newcomers() {
        let mut a = MemberCore::new(Addr(1), OrderingMode::Sequencer);
        a.install_view(view(1, &[1]));
        a.take_events();
        a.install_view(view(2, &[1, 2]));
        let evs = a.take_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, ChannelEvent::StateRequest { joiner } if *joiner == Addr(2))));
    }

    #[test]
    fn losing_side_told_to_resync() {
        let mut c = MemberCore::new(Addr(3), OrderingMode::Sequencer);
        c.install_view(view(2, &[2, 3]));
        c.take_events();
        // Merged view coordinated by 1, absent from c's previous view.
        c.install_view(view(3, &[1, 2, 3]));
        let evs = c.take_events();
        assert!(evs.iter().any(
            |e| matches!(e, ChannelEvent::ResyncNeeded { coordinator } if *coordinator == Addr(1))
        ));
    }

    #[test]
    fn bimodal_digest_push_pulls_retransmit() {
        let cfg = OrderingMode::Bimodal {
            loss: 0.0,
            fanout: 1,
        };
        let mut a = MemberCore::new(Addr(1), cfg.clone());
        let mut b = MemberCore::new(Addr(2), cfg);
        a.install_view(view(1, &[1, 2]));
        b.install_view(view(1, &[1, 2]));
        a.take_events();
        b.take_events();
        // a sends but the transport "loses" b's copy entirely.
        let out = a.mcast(vec![7]).unwrap();
        assert_eq!(out.len(), 2, "full fan-out proposed in member order");
        // b pushes its (empty) digest; a answers with a retransmission.
        let push = Wire::DigestPush {
            entries: b.digest(),
        };
        let answer = a.on_wire(Addr(2), push);
        assert_eq!(answer.len(), 1);
        assert!(b.on_wire(Addr(1), answer[0].wire.clone()).is_empty());
        let evs = b.take_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, ChannelEvent::Message { bytes, .. } if bytes == &vec![7])));
    }
}
