//! Member addresses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one channel endpoint (a group member). Addresses are
/// assigned by the [`Cluster`](crate::cluster::Cluster) at channel creation
/// and are never reused — a restarted process gets a fresh address, which
/// is how membership distinguishes incarnations.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u64);

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_display() {
        assert!(Addr(1) < Addr(2));
        assert_eq!(Addr(3).to_string(), "m3");
    }
}
