//! Transport abstraction: how [`Wire`] messages travel between members.
//!
//! [`MemberCore`](crate::member::MemberCore) produces
//! [`Outgoing`](crate::member::Outgoing) messages and consumes inbound
//! [`Wire`]s; a `GroupTransport` carries them. Two backends exist:
//!
//! * the deterministic in-process [`Cluster`](crate::cluster::Cluster)
//!   (seeded FIFO, explicit pumping, fault injection) — the test oracle;
//! * `rndi-cluster`'s TCP backend, which ferries the same frames inside
//!   v2 `Gossip::Group` envelopes between OS processes/threads.

use crate::addr::Addr;
use crate::channel::SendError;
use crate::cluster::Cluster;
use crate::wire::Wire;

/// Delivers wire messages between group members. Implementations decide
/// latency, loss, and ordering; the protocol logic above is shared.
pub trait GroupTransport: Send + Sync {
    /// Send `wire` from `from` to `to`. A transport may drop the message
    /// silently (partition, loss) — reliability is the protocol's job.
    fn send(&self, from: Addr, to: Addr, wire: Wire) -> Result<(), SendError>;
}

impl GroupTransport for Cluster {
    fn send(&self, from: Addr, to: Addr, wire: Wire) -> Result<(), SendError> {
        self.send_wire(from, to, wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelEvent;
    use crate::config::StackConfig;

    #[test]
    fn cluster_is_a_group_transport() {
        let cluster = Cluster::new(11);
        let a = cluster.create_channel(StackConfig::default());
        let b = cluster.create_channel(StackConfig::default());
        a.connect("t").unwrap();
        cluster.pump_all();
        b.connect("t").unwrap();
        cluster.pump_all();
        a.poll();
        b.poll();

        // Drive a raw state frame through the trait object.
        let transport: &dyn GroupTransport = &cluster;
        transport
            .send(a.addr(), b.addr(), Wire::State { bytes: vec![5] })
            .unwrap();
        cluster.pump_all();
        assert!(b
            .poll()
            .iter()
            .any(|e| matches!(e, ChannelEvent::SetState { bytes } if bytes == &vec![5])));
    }
}
