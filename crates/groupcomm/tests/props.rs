//! Property tests: ordering and convergence under randomized schedules.

use proptest::prelude::*;

use groupcast::{ChannelEvent, Cluster, GroupChannel, OrderingMode, StackConfig};

fn deliveries(chan: &GroupChannel) -> Vec<(u64, Vec<u8>)> {
    chan.poll()
        .into_iter()
        .filter_map(|e| match e {
            ChannelEvent::Message { from, bytes } => Some((from.0, bytes)),
            _ => None,
        })
        .collect()
}

fn build(cluster: &Cluster, n: usize, config: StackConfig) -> Vec<GroupChannel> {
    let chans: Vec<GroupChannel> = (0..n)
        .map(|_| cluster.create_channel(config.clone()))
        .collect();
    for c in &chans {
        c.connect("g").unwrap();
        cluster.pump_all();
    }
    for c in &chans {
        c.poll();
    }
    chans
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Sequencer: whatever the interleaving of senders and pump budgets,
    /// every member delivers the identical total order.
    #[test]
    fn sequencer_total_order_under_random_schedules(
        seed in any::<u64>(),
        sends in proptest::collection::vec((0usize..3, any::<u8>()), 1..30),
        budgets in proptest::collection::vec(1usize..7, 1..40),
    ) {
        let cluster = Cluster::new(seed);
        let chans = build(&cluster, 3, StackConfig::default());
        let mut budget_iter = budgets.iter().cycle();
        for (sender, byte) in &sends {
            chans[*sender].mcast(vec![*byte]).unwrap();
            cluster.pump(Some(*budget_iter.next().unwrap()));
        }
        cluster.pump_all();
        let orders: Vec<Vec<(u64, Vec<u8>)>> = chans.iter().map(deliveries).collect();
        prop_assert_eq!(orders[0].len(), sends.len(), "all messages delivered");
        prop_assert_eq!(&orders[0], &orders[1]);
        prop_assert_eq!(&orders[1], &orders[2]);
    }

    /// Bimodal with loss: after enough gossip rounds every member delivers
    /// every message, in per-sender FIFO order.
    #[test]
    fn bimodal_converges_despite_loss(
        seed in any::<u64>(),
        loss in 0.0f64..0.5,
        sends in proptest::collection::vec((0usize..3, any::<u8>()), 1..25),
    ) {
        let cluster = Cluster::new(seed);
        let config = StackConfig {
            ordering: OrderingMode::Bimodal { loss, fanout: 2 },
            ..Default::default()
        };
        let chans = build(&cluster, 3, config);
        let mut per_sender: Vec<Vec<u8>> = vec![vec![]; 3];
        for (sender, byte) in &sends {
            chans[*sender].mcast(vec![*byte]).unwrap();
            per_sender[*sender].push(*byte);
        }
        cluster.pump_all();
        for _ in 0..24 {
            cluster.gossip_round();
            cluster.pump_all();
        }
        for (i, chan) in chans.iter().enumerate() {
            let got = deliveries(chan);
            prop_assert_eq!(got.len(), sends.len(), "member {} complete", i);
            // Per-sender FIFO: the subsequence from each origin matches the
            // send order.
            for (s, expected) in per_sender.iter().enumerate() {
                let addr = chans[s].addr().0;
                let stream: Vec<u8> = got
                    .iter()
                    .filter(|(from, _)| *from == addr)
                    .map(|(_, b)| b[0])
                    .collect();
                prop_assert_eq!(&stream, expected, "member {} origin {}", i, s);
            }
        }
    }

    /// View invariants under random crash/partition/heal scripts: view
    /// sequence numbers only grow at each member, the coordinator is
    /// always a view member, and co-located members agree on views.
    #[test]
    fn view_sequences_are_monotone(
        seed in any::<u64>(),
        script in proptest::collection::vec(0u8..5, 1..20),
    ) {
        let cluster = Cluster::new(seed);
        let chans = build(&cluster, 4, StackConfig::default());
        let mut last_seq = vec![0u64; 4];
        let mut down = [false; 4];
        let check = |chans: &[GroupChannel], last_seq: &mut Vec<u64>| {
            for (i, c) in chans.iter().enumerate() {
                for ev in c.poll() {
                    if let ChannelEvent::View(v) = ev {
                        assert!(
                            v.id.seq >= last_seq[i],
                            "member {i}: view seq went backwards"
                        );
                        assert!(v.contains(v.coordinator()));
                        assert!(v.contains(c.addr()));
                        last_seq[i] = v.id.seq;
                    }
                }
            }
        };
        for step in script {
            match step {
                0 if !down[3] && !down.iter().all(|d| *d) => {
                    cluster.crash(chans[3].addr());
                    down[3] = true;
                }
                1 => {
                    let a = chans[0].addr();
                    let rest: Vec<_> = chans[1..].iter().map(|c| c.addr()).collect();
                    cluster.partition(&[&[a], &rest]);
                }
                2 => cluster.heal(),
                _ => {}
            }
            cluster.detect_failures();
            cluster.pump_all();
            check(&chans, &mut last_seq);
        }
    }
}
