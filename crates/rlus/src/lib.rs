//! # rlus — Rust Lookup Service (a Jini LUS analogue)
//!
//! Jini's lookup service stores *service items*: a proxy object plus
//! attribute entries, registered under a 128-bit service ID and kept alive
//! by leases. Clients find services by template matching over service
//! types and attribute entries, and can register for remote events fired on
//! match-set transitions. This crate reimplements that contract:
//!
//! * [`id::ServiceId`] — 128-bit service identifiers.
//! * [`item::ServiceItem`] — proxy stub + typed attribute entries.
//! * [`template::ServiceTemplate`] — id/type/entry matching.
//! * [`lease::LeaseSet`] — granted leases with expiry sweeping; **all**
//!   registrations are leased, exactly the property the paper's JNDI
//!   provider has to paper over with client-side renewal.
//! * [`registrar::Registrar`] — the lookup service proper. Registration is
//!   **overwrite-only** ("aiming at achieving idempotency, Jini
//!   registration methods always overwrite the previous value") — there is
//!   deliberately no atomic bind primitive, which is what forces the JNDI
//!   provider into Eisenberg–McGuire distributed locking.
//! * [`event`] — `SERVICE_ADDED` / `REMOVED` / `CHANGED` remote events.
//! * [`discovery::DiscoveryRealm`] — group-based registrar discovery.
//!
//! The service is deliberately independent of `rndi-core`: it models an
//! *existing, heterogeneous* backend that the integration middleware must
//! adapt to, not one designed for it.

pub mod clock;
pub mod discovery;
pub mod event;
pub mod id;
mod index;
pub mod item;
pub mod lease;
pub mod registrar;
pub mod template;

pub use clock::{Clock, ManualClock, SystemClock};
pub use discovery::DiscoveryRealm;
pub use event::{ServiceEvent, ServiceListener, Transition};
pub use id::ServiceId;
pub use item::{Entry, ServiceItem, ServiceStub};
pub use lease::{Lease, LeaseError};
pub use registrar::{Registrar, ServiceRegistration};
pub use template::{EntryTemplate, ServiceTemplate};
