//! Registrar discovery (Jini multicast discovery, in-process analogue).
//!
//! Jini clients find lookup services by multicasting a discovery request
//! carrying the group names they are interested in; registrars answer with
//! their locator. In this workspace, services live in one process (or one
//! simulation), so [`DiscoveryRealm`] models the multicast domain: lookup
//! services announce themselves into it, and clients discover by group.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::registrar::Registrar;

/// Where a registrar can be reached.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LookupLocator {
    pub host: String,
    pub port: u16,
}

impl LookupLocator {
    pub fn new(host: impl Into<String>, port: u16) -> Self {
        LookupLocator {
            host: host.into(),
            port,
        }
    }
}

struct Announced {
    locator: LookupLocator,
    groups: Vec<String>,
    registrar: Registrar,
}

/// A multicast discovery domain.
#[derive(Clone, Default)]
pub struct DiscoveryRealm {
    inner: Arc<RwLock<HashMap<LookupLocator, Announced>>>,
}

impl DiscoveryRealm {
    pub fn new() -> Self {
        DiscoveryRealm::default()
    }

    /// Announce a registrar as serving the given groups.
    pub fn announce(&self, locator: LookupLocator, groups: &[&str], registrar: Registrar) {
        self.inner.write().insert(
            locator.clone(),
            Announced {
                locator,
                groups: groups.iter().map(|s| s.to_string()).collect(),
                registrar,
            },
        );
    }

    /// Withdraw a registrar's announcement.
    pub fn withdraw(&self, locator: &LookupLocator) {
        self.inner.write().remove(locator);
    }

    /// Discover every registrar serving `group` (`""` = all groups).
    pub fn discover(&self, group: &str) -> Vec<(LookupLocator, Registrar)> {
        let inner = self.inner.read();
        let mut out: Vec<(LookupLocator, Registrar)> = inner
            .values()
            .filter(|a| group.is_empty() || a.groups.iter().any(|g| g == group))
            .map(|a| (a.locator.clone(), a.registrar.clone()))
            .collect();
        out.sort_by(|a, b| (&a.0.host, a.0.port).cmp(&(&b.0.host, b.0.port)));
        out
    }

    /// Unicast discovery: fetch the registrar at a known locator.
    pub fn locate(&self, locator: &LookupLocator) -> Option<Registrar> {
        self.inner.read().get(locator).map(|a| a.registrar.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn reg() -> Registrar {
        Registrar::new(ManualClock::new(), 60_000, 0)
    }

    #[test]
    fn group_discovery() {
        let realm = DiscoveryRealm::new();
        realm.announce(LookupLocator::new("h1", 4160), &["public"], reg());
        realm.announce(LookupLocator::new("h2", 4160), &["public", "dept"], reg());
        realm.announce(LookupLocator::new("h3", 4160), &["private"], reg());

        assert_eq!(realm.discover("public").len(), 2);
        assert_eq!(realm.discover("dept").len(), 1);
        assert_eq!(realm.discover("none").len(), 0);
        assert_eq!(realm.discover("").len(), 3, "empty group = all");
    }

    #[test]
    fn unicast_locate_and_withdraw() {
        let realm = DiscoveryRealm::new();
        let loc = LookupLocator::new("h1", 4160);
        realm.announce(loc.clone(), &["g"], reg());
        assert!(realm.locate(&loc).is_some());
        realm.withdraw(&loc);
        assert!(realm.locate(&loc).is_none());
        assert!(realm.discover("g").is_empty());
    }

    #[test]
    fn reannounce_replaces() {
        let realm = DiscoveryRealm::new();
        let loc = LookupLocator::new("h1", 4160);
        realm.announce(loc.clone(), &["a"], reg());
        realm.announce(loc.clone(), &["b"], reg());
        assert!(realm.discover("a").is_empty());
        assert_eq!(realm.discover("b").len(), 1);
    }
}
