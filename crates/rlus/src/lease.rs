//! Leases: time-bounded resource grants (Jini's leasing model).
//!
//! Every registration and event subscription in the lookup service is
//! leased: unless the holder renews before expiry, the registrar reclaims
//! the resource. This is the fundamental mismatch with JNDI, whose API "does
//! not specify any explicit data expiration policy" — the JNDI provider
//! resolves it by renewing leases client-side.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A granted lease.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// Registrar-local lease identifier.
    pub id: u64,
    /// Absolute expiry (clock-relative milliseconds).
    pub expires_at_ms: u64,
}

impl Lease {
    pub fn is_expired(&self, now_ms: u64) -> bool {
        now_ms >= self.expires_at_ms
    }

    /// Remaining validity at `now_ms`.
    pub fn remaining_ms(&self, now_ms: u64) -> u64 {
        self.expires_at_ms.saturating_sub(now_ms)
    }
}

/// Lease operation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeaseError {
    /// The lease id is unknown or was already reclaimed.
    Unknown(u64),
    /// The lease had already expired at the time of the call.
    Expired(u64),
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::Unknown(id) => write!(f, "unknown lease {id}"),
            LeaseError::Expired(id) => write!(f, "lease {id} expired"),
        }
    }
}

impl std::error::Error for LeaseError {}

/// Bookkeeping for all leases a registrar has granted over resources of
/// type `R` (service ids, event registration ids, …).
#[derive(Debug)]
pub struct LeaseSet<R> {
    next_id: u64,
    /// Maximum duration the registrar will grant, regardless of request.
    max_duration_ms: u64,
    leases: HashMap<u64, (u64 /* expires */, R)>,
}

/// `[grant, renew, cancel, expire]` lease-lifecycle counters, resolved
/// once per process (shared by every `LeaseSet` regardless of `R`).
fn lease_counters() -> &'static [std::sync::Arc<rndi_obs::Counter>; 4] {
    static COUNTERS: std::sync::OnceLock<[std::sync::Arc<rndi_obs::Counter>; 4]> =
        std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let name = rndi_obs::metrics::names::LEASE_EVENTS;
        ["grant", "renew", "cancel", "expire"].map(|event| {
            rndi_obs::metrics::counter(name, &[("component", "rlus"), ("event", event)])
        })
    })
}

impl<R: Clone> LeaseSet<R> {
    pub fn new(max_duration_ms: u64) -> Self {
        LeaseSet {
            next_id: 1,
            max_duration_ms,
            leases: HashMap::new(),
        }
    }

    /// Grant a lease over `resource`. The granted duration is
    /// `min(requested, max)` — Jini registrars may shorten requests.
    pub fn grant(&mut self, resource: R, requested_ms: u64, now_ms: u64) -> Lease {
        let duration = requested_ms.min(self.max_duration_ms);
        let id = self.next_id;
        self.next_id += 1;
        let expires = now_ms + duration;
        self.leases.insert(id, (expires, resource));
        lease_counters()[0].inc();
        Lease {
            id,
            expires_at_ms: expires,
        }
    }

    /// Renew an existing lease.
    pub fn renew(&mut self, id: u64, requested_ms: u64, now_ms: u64) -> Result<Lease, LeaseError> {
        let entry = self.leases.get_mut(&id).ok_or(LeaseError::Unknown(id))?;
        if now_ms >= entry.0 {
            return Err(LeaseError::Expired(id));
        }
        let duration = requested_ms.min(self.max_duration_ms);
        entry.0 = now_ms + duration;
        lease_counters()[1].inc();
        Ok(Lease {
            id,
            expires_at_ms: entry.0,
        })
    }

    /// Cancel a lease, returning its resource.
    pub fn cancel(&mut self, id: u64) -> Result<R, LeaseError> {
        let out = self
            .leases
            .remove(&id)
            .map(|(_, r)| r)
            .ok_or(LeaseError::Unknown(id));
        if out.is_ok() {
            lease_counters()[2].inc();
        }
        out
    }

    /// Reclaim every expired lease, returning the resources.
    pub fn sweep(&mut self, now_ms: u64) -> Vec<R> {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, (exp, _))| now_ms >= *exp)
            .map(|(id, _)| *id)
            .collect();
        let out: Vec<R> = expired
            .into_iter()
            .filter_map(|id| self.leases.remove(&id).map(|(_, r)| r))
            .collect();
        lease_counters()[3].add(out.len() as u64);
        out
    }

    /// The id the next [`LeaseSet::grant`] will assign. Callers that need
    /// the resource to embed its own lease id use this to pre-compute it.
    pub fn peek_next_id(&self) -> u64 {
        self.next_id
    }

    /// Look up the resource behind an unexpired lease.
    pub fn resource(&self, id: u64, now_ms: u64) -> Option<&R> {
        self.leases
            .get(&id)
            .filter(|(exp, _)| now_ms < *exp)
            .map(|(_, r)| r)
    }

    pub fn len(&self) -> usize {
        self.leases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_caps_at_max() {
        let mut ls: LeaseSet<&str> = LeaseSet::new(1000);
        let l = ls.grant("svc", 10_000, 0);
        assert_eq!(l.expires_at_ms, 1000);
        let l2 = ls.grant("svc2", 500, 0);
        assert_eq!(l2.expires_at_ms, 500);
        assert_ne!(l.id, l2.id);
    }

    #[test]
    fn renew_extends_unexpired() {
        let mut ls: LeaseSet<&str> = LeaseSet::new(1000);
        let l = ls.grant("svc", 1000, 0);
        let l2 = ls.renew(l.id, 1000, 400).unwrap();
        assert_eq!(l2.expires_at_ms, 1400);
    }

    #[test]
    fn renew_after_expiry_fails() {
        let mut ls: LeaseSet<&str> = LeaseSet::new(1000);
        let l = ls.grant("svc", 100, 0);
        assert_eq!(ls.renew(l.id, 100, 100), Err(LeaseError::Expired(l.id)));
        assert_eq!(ls.renew(999, 100, 0), Err(LeaseError::Unknown(999)));
    }

    #[test]
    fn sweep_reclaims_only_expired() {
        let mut ls: LeaseSet<u32> = LeaseSet::new(10_000);
        ls.grant(1, 100, 0);
        ls.grant(2, 500, 0);
        ls.grant(3, 1000, 0);
        let mut reclaimed = ls.sweep(500);
        reclaimed.sort();
        assert_eq!(reclaimed, vec![1, 2]);
        assert_eq!(ls.len(), 1);
    }

    #[test]
    fn cancel_returns_resource() {
        let mut ls: LeaseSet<String> = LeaseSet::new(1000);
        let l = ls.grant("x".into(), 100, 0);
        assert_eq!(ls.cancel(l.id).unwrap(), "x");
        assert_eq!(ls.cancel(l.id), Err(LeaseError::Unknown(l.id)));
    }

    #[test]
    fn resource_respects_expiry() {
        let mut ls: LeaseSet<u8> = LeaseSet::new(1000);
        let l = ls.grant(9, 100, 0);
        assert_eq!(ls.resource(l.id, 50), Some(&9));
        assert_eq!(ls.resource(l.id, 100), None);
    }

    #[test]
    fn lease_helpers() {
        let l = Lease {
            id: 1,
            expires_at_ms: 200,
        };
        assert!(!l.is_expired(100));
        assert!(l.is_expired(200));
        assert_eq!(l.remaining_ms(150), 50);
        assert_eq!(l.remaining_ms(300), 0);
    }
}
