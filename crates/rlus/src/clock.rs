//! Time source for lease bookkeeping.
//!
//! The registrar never reads wall-clock time directly; everything flows
//! through [`Clock`], so simulations and tests control expiry
//! deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Milliseconds since an arbitrary epoch.
pub trait Clock: Send + Sync {
    fn now_ms(&self) -> u64;
}

/// Wall-clock time relative to process start.
pub struct SystemClock {
    start: std::time::Instant,
}

impl SystemClock {
    pub fn new() -> Arc<Self> {
        Arc::new(SystemClock {
            start: std::time::Instant::now(),
        })
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A manually advanced clock.
#[derive(Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock::default())
    }

    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
    }

    pub fn set(&self, ms: u64) {
        self.now.store(ms, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(100);
        assert_eq!(c.now_ms(), 100);
        c.set(5);
        assert_eq!(c.now_ms(), 5);
    }

    #[test]
    fn system_clock_monotonic() {
        let c = SystemClock::new();
        assert!(c.now_ms() <= c.now_ms() + 1);
    }
}
