//! 128-bit service identifiers (Jini `ServiceID`).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A 128-bit identifier assigned by the registrar (or proposed by the
/// service when re-registering after a restart).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId {
    pub hi: u64,
    pub lo: u64,
}

impl ServiceId {
    pub const fn new(hi: u64, lo: u64) -> Self {
        ServiceId { hi, lo }
    }

    /// Generate from any RNG (the registrar owns the RNG choice).
    pub fn random(rng: &mut impl rand::Rng) -> Self {
        ServiceId {
            hi: rng.gen(),
            lo: rng.gen(),
        }
    }
}

impl fmt::Display for ServiceId {
    /// UUID-style rendering, grouped 8-4-4-4-12.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = ((self.hi as u128) << 64) | self.lo as u128;
        let s = format!("{b:032x}");
        write!(
            f,
            "{}-{}-{}-{}-{}",
            &s[0..8],
            &s[8..12],
            &s[12..16],
            &s[16..20],
            &s[20..32]
        )
    }
}

impl fmt::Debug for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ServiceId({self})")
    }
}

impl FromStr for ServiceId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let hex: String = s.chars().filter(|c| *c != '-').collect();
        if hex.len() != 32 {
            return Err(format!("expected 32 hex digits, got {}", hex.len()));
        }
        let v = u128::from_str_radix(&hex, 16).map_err(|e| e.to_string())?;
        Ok(ServiceId {
            hi: (v >> 64) as u64,
            lo: v as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn display_parse_roundtrip() {
        let id = ServiceId::new(0x0123456789abcdef, 0xfedcba9876543210);
        let s = id.to_string();
        assert_eq!(s, "01234567-89ab-cdef-fedc-ba9876543210");
        assert_eq!(s.parse::<ServiceId>().unwrap(), id);
    }

    #[test]
    fn random_ids_differ() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = ServiceId::random(&mut rng);
        let b = ServiceId::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("xyz".parse::<ServiceId>().is_err());
        assert!("0123".parse::<ServiceId>().is_err());
    }
}
