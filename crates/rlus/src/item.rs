//! Service items: what gets registered in the lookup service.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::id::ServiceId;

/// The marshalled service proxy. In Jini this is a serialized Java object
/// implementing the service's remote interfaces; here it is the interface
/// type list plus an opaque payload (whatever the client marshalled — the
/// JNDI provider stores encoded name/value tuples in it as "fake stubs").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStub {
    /// Fully qualified names of every interface the proxy implements, most
    /// derived first. Template type matching checks membership here.
    pub type_names: Vec<String>,
    /// Marshalled proxy state.
    pub payload: Vec<u8>,
}

impl ServiceStub {
    pub fn new(type_names: Vec<String>, payload: Vec<u8>) -> Self {
        ServiceStub {
            type_names,
            payload,
        }
    }

    /// Whether the stub implements (or extends) the named type.
    pub fn implements(&self, type_name: &str) -> bool {
        self.type_names.iter().any(|t| t == type_name)
    }

    /// The marshalled size in bytes — registrars account this for their
    /// serialization cost model.
    pub fn size(&self) -> usize {
        self.payload.len() + self.type_names.iter().map(|t| t.len()).sum::<usize>()
    }
}

/// An attribute entry (Jini `net.jini.core.entry.Entry`): a typed record of
/// public fields. Matching is per-class with exact field comparison.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entry {
    /// The entry's class, e.g. `"net.jini.lookup.entry.Name"`.
    pub class: String,
    /// Field name → field value (string-typed fields only, as the common
    /// Jini entry classes use).
    pub fields: BTreeMap<String, String>,
}

impl Entry {
    pub fn new(class: impl Into<String>) -> Self {
        Entry {
            class: class.into(),
            fields: BTreeMap::new(),
        }
    }

    /// Builder-style field setter.
    pub fn with(mut self, field: impl Into<String>, value: impl Into<String>) -> Self {
        self.fields.insert(field.into(), value.into());
        self
    }

    /// The standard `Name` entry.
    pub fn name(value: impl Into<String>) -> Self {
        Entry::new("Name").with("name", value)
    }
}

/// A registered (or to-be-registered) service.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceItem {
    /// `None` on first registration — the registrar assigns one.
    pub service_id: Option<ServiceId>,
    pub service: ServiceStub,
    pub attribute_sets: Vec<Entry>,
}

impl ServiceItem {
    pub fn new(service: ServiceStub) -> Self {
        ServiceItem {
            service_id: None,
            service,
            attribute_sets: Vec::new(),
        }
    }

    pub fn with_id(mut self, id: ServiceId) -> Self {
        self.service_id = Some(id);
        self
    }

    pub fn with_entry(mut self, entry: Entry) -> Self {
        self.attribute_sets.push(entry);
        self
    }

    /// Approximate marshalled size in bytes.
    pub fn size(&self) -> usize {
        self.service.size()
            + self
                .attribute_sets
                .iter()
                .map(|e| {
                    e.class.len()
                        + e.fields
                            .iter()
                            .map(|(k, v)| k.len() + v.len())
                            .sum::<usize>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_type_membership() {
        let stub = ServiceStub::new(
            vec!["PrinterService".into(), "Service".into()],
            vec![1, 2, 3],
        );
        assert!(stub.implements("PrinterService"));
        assert!(stub.implements("Service"));
        assert!(!stub.implements("ScannerService"));
    }

    #[test]
    fn entry_builder() {
        let e = Entry::name("laser").with("location", "room-3");
        assert_eq!(e.class, "Name");
        assert_eq!(e.fields["name"], "laser");
        assert_eq!(e.fields["location"], "room-3");
    }

    #[test]
    fn item_size_accounts_everything() {
        let item = ServiceItem::new(ServiceStub::new(vec!["T".into()], vec![0; 10]))
            .with_entry(Entry::new("C").with("f", "v"));
        // payload 10 + type "T" 1 + class "C" 1 + field "f"+"v" 2
        assert_eq!(item.size(), 14);
    }

    #[test]
    fn serde_roundtrip() {
        let item = ServiceItem::new(ServiceStub::new(vec!["T".into()], vec![9]))
            .with_id(ServiceId::new(1, 2))
            .with_entry(Entry::name("n"));
        let json = serde_json::to_string(&item).unwrap();
        let back: ServiceItem = serde_json::from_str(&json).unwrap();
        assert_eq!(back, item);
    }
}
