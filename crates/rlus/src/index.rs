//! Secondary indexes over registered service items.
//!
//! [`ServiceIndex`] maintains posting sets keyed by service type, entry
//! class, and `(class, field, value)` so template lookups resolve by
//! intersecting a few small sets instead of scanning every item. The
//! postings are *supersets* of the true match set: a candidate drawn from
//! them must still be verified with [`ServiceTemplate::matches`], which
//! keeps the index logic simple (it only has to never miss a match) and
//! the matching semantics in exactly one place.
//!
//! Coherence rule: every mutation of the item map (`register`,
//! `set_attributes`, lease cancel/expiry) removes the *old* item from the
//! index before inserting the *new* one, under the same write lock. The
//! index therefore never refers to a service id absent from the item map.

use std::collections::{BTreeSet, HashMap};

use crate::id::ServiceId;
use crate::item::ServiceItem;
use crate::template::ServiceTemplate;

/// Posting sets for the registrar's read path.
///
/// `BTreeSet` postings make candidate enumeration (and hence
/// `lookup_all`) deterministic in service-id order.
#[derive(Debug, Default)]
pub(crate) struct ServiceIndex {
    /// service type name → ids of items whose stub implements it.
    by_type: HashMap<String, BTreeSet<ServiceId>>,
    /// entry class → ids of items carrying an entry of that class.
    by_class: HashMap<String, BTreeSet<ServiceId>>,
    /// (entry class, field, value) → ids of items with a matching entry field.
    by_field: HashMap<(String, String, String), BTreeSet<ServiceId>>,
}

impl ServiceIndex {
    /// Add `item` (registered under `id`) to every relevant posting set.
    pub(crate) fn insert(&mut self, id: ServiceId, item: &ServiceItem) {
        for t in &item.service.type_names {
            self.by_type.entry(t.clone()).or_default().insert(id);
        }
        for entry in &item.attribute_sets {
            self.by_class
                .entry(entry.class.clone())
                .or_default()
                .insert(id);
            for (field, value) in &entry.fields {
                self.by_field
                    .entry((entry.class.clone(), field.clone(), value.clone()))
                    .or_default()
                    .insert(id);
            }
        }
    }

    /// Remove `item` from every posting set, dropping sets that empty out
    /// so long-lived registrars don't accumulate dead keys.
    pub(crate) fn remove(&mut self, id: ServiceId, item: &ServiceItem) {
        for t in &item.service.type_names {
            if let Some(set) = self.by_type.get_mut(t) {
                set.remove(&id);
                if set.is_empty() {
                    self.by_type.remove(t);
                }
            }
        }
        for entry in &item.attribute_sets {
            if let Some(set) = self.by_class.get_mut(&entry.class) {
                set.remove(&id);
                if set.is_empty() {
                    self.by_class.remove(&entry.class);
                }
            }
            for (field, value) in &entry.fields {
                let key = (entry.class.clone(), field.clone(), value.clone());
                if let Some(set) = self.by_field.get_mut(&key) {
                    set.remove(&id);
                    if set.is_empty() {
                        self.by_field.remove(&key);
                    }
                }
            }
        }
    }

    /// Candidate service ids for `template`, or `None` when the template
    /// carries no indexable constraint (wildcard → caller scans).
    ///
    /// The result is a superset of the true match set (callers verify with
    /// `template.matches`), in ascending service-id order. An explicit
    /// `service_id` constraint is the caller's fast path and not handled
    /// here.
    pub(crate) fn candidates(&self, template: &ServiceTemplate) -> Option<Vec<ServiceId>> {
        let mut postings: Vec<&BTreeSet<ServiceId>> = Vec::new();
        for t in &template.service_types {
            match self.by_type.get(t) {
                Some(set) => postings.push(set),
                // No item implements the type: the intersection is empty.
                None => return Some(Vec::new()),
            }
        }
        for tmpl in &template.attribute_templates {
            // Pick the most selective posting this entry template offers:
            // the smallest (class, field, value) set among its equality
            // fields, falling back to the class posting when it only has
            // wildcard fields.
            let mut best: Option<&BTreeSet<ServiceId>> = None;
            let mut has_equality = false;
            for (field, value) in &tmpl.fields {
                let Some(value) = value else { continue };
                has_equality = true;
                match self
                    .by_field
                    .get(&(tmpl.class.clone(), field.clone(), value.clone()))
                {
                    Some(set) => {
                        if best.is_none_or(|b| set.len() < b.len()) {
                            best = Some(set);
                        }
                    }
                    None => return Some(Vec::new()),
                }
            }
            if !has_equality {
                match self.by_class.get(&tmpl.class) {
                    Some(set) => best = Some(set),
                    None => return Some(Vec::new()),
                }
            }
            postings.push(best.expect("equality or class posting chosen above"));
        }
        if postings.is_empty() {
            return None;
        }
        // Intersect starting from the smallest posting set.
        postings.sort_by_key(|s| s.len());
        let (first, rest) = postings.split_first().expect("non-empty");
        Some(
            first
                .iter()
                .copied()
                .filter(|id| rest.iter().all(|s| s.contains(id)))
                .collect(),
        )
    }

    #[cfg(test)]
    fn posting_count(&self) -> usize {
        self.by_type.len() + self.by_class.len() + self.by_field.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{Entry, ServiceStub};
    use crate::template::EntryTemplate;

    fn item(id: u64, types: &[&str], entries: Vec<Entry>) -> (ServiceId, ServiceItem) {
        let sid = ServiceId::new(id, id);
        let mut it = ServiceItem::new(ServiceStub::new(
            types.iter().map(|t| t.to_string()).collect(),
            vec![],
        ))
        .with_id(sid);
        it.attribute_sets = entries;
        (sid, it)
    }

    #[test]
    fn wildcard_template_has_no_plan() {
        let idx = ServiceIndex::default();
        assert_eq!(idx.candidates(&ServiceTemplate::any()), None);
    }

    #[test]
    fn type_and_field_intersection() {
        let mut idx = ServiceIndex::default();
        let (a, ia) = item(1, &["Printer"], vec![Entry::name("laser")]);
        let (b, ib) = item(2, &["Printer"], vec![Entry::name("inkjet")]);
        let (c, ic) = item(3, &["Scanner"], vec![Entry::name("laser")]);
        idx.insert(a, &ia);
        idx.insert(b, &ib);
        idx.insert(c, &ic);

        let t = ServiceTemplate::by_type("Printer")
            .with_entry(EntryTemplate::new("Name").with("name", "laser"));
        assert_eq!(idx.candidates(&t), Some(vec![a]));

        let t = ServiceTemplate::by_type("Printer");
        assert_eq!(idx.candidates(&t), Some(vec![a, b]));

        // Unknown type short-circuits to empty.
        let t = ServiceTemplate::by_type("Fax");
        assert_eq!(idx.candidates(&t), Some(Vec::new()));
    }

    #[test]
    fn wildcard_field_uses_class_posting() {
        let mut idx = ServiceIndex::default();
        let (a, ia) = item(1, &["S"], vec![Entry::name("x")]);
        idx.insert(a, &ia);
        // with_any("name") has no equality field → class posting (a superset:
        // it would also admit Name entries lacking the field).
        let t = ServiceTemplate::any().with_entry(EntryTemplate::new("Name").with_any("name"));
        assert_eq!(idx.candidates(&t), Some(vec![a]));
    }

    #[test]
    fn remove_drains_postings() {
        let mut idx = ServiceIndex::default();
        let (a, ia) = item(1, &["S"], vec![Entry::name("x").with("loc", "y")]);
        idx.insert(a, &ia);
        assert!(idx.posting_count() > 0);
        idx.remove(a, &ia);
        assert_eq!(idx.posting_count(), 0, "empty posting sets are dropped");
    }
}
