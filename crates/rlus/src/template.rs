//! Template matching (Jini `ServiceTemplate`).
//!
//! A template matches a service item when **all** of its constraints hold:
//! the service id (if given) is equal, the stub implements every listed
//! type, and for each entry template there is some attribute entry of the
//! same class whose specified fields match exactly (unspecified fields are
//! wildcards).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::id::ServiceId;
use crate::item::{Entry, ServiceItem};

/// A partially specified [`Entry`]: `None` fields are wildcards.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntryTemplate {
    pub class: String,
    pub fields: BTreeMap<String, Option<String>>,
}

impl EntryTemplate {
    pub fn new(class: impl Into<String>) -> Self {
        EntryTemplate {
            class: class.into(),
            fields: BTreeMap::new(),
        }
    }

    /// Require `field == value`.
    pub fn with(mut self, field: impl Into<String>, value: impl Into<String>) -> Self {
        self.fields.insert(field.into(), Some(value.into()));
        self
    }

    /// Require the field to exist, with any value.
    pub fn with_any(mut self, field: impl Into<String>) -> Self {
        self.fields.insert(field.into(), None);
        self
    }

    /// Whether `entry` satisfies this template.
    pub fn matches(&self, entry: &Entry) -> bool {
        if entry.class != self.class {
            return false;
        }
        self.fields
            .iter()
            .all(|(k, want)| match entry.fields.get(k) {
                Some(have) => want.as_ref().is_none_or(|w| w == have),
                None => false,
            })
    }
}

/// The full service template.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceTemplate {
    pub service_id: Option<ServiceId>,
    /// Types the service must implement (all of them).
    pub service_types: Vec<String>,
    /// Entry templates, each of which must be satisfied by some entry.
    pub attribute_templates: Vec<EntryTemplate>,
}

impl ServiceTemplate {
    /// The wildcard template: matches every item.
    pub fn any() -> Self {
        ServiceTemplate::default()
    }

    pub fn by_id(id: ServiceId) -> Self {
        ServiceTemplate {
            service_id: Some(id),
            ..Default::default()
        }
    }

    pub fn by_type(type_name: impl Into<String>) -> Self {
        ServiceTemplate {
            service_types: vec![type_name.into()],
            ..Default::default()
        }
    }

    pub fn with_type(mut self, type_name: impl Into<String>) -> Self {
        self.service_types.push(type_name.into());
        self
    }

    pub fn with_entry(mut self, tmpl: EntryTemplate) -> Self {
        self.attribute_templates.push(tmpl);
        self
    }

    /// Whether `item` satisfies every constraint.
    pub fn matches(&self, item: &ServiceItem) -> bool {
        if let Some(want) = self.service_id {
            if item.service_id != Some(want) {
                return false;
            }
        }
        if !self
            .service_types
            .iter()
            .all(|t| item.service.implements(t))
        {
            return false;
        }
        self.attribute_templates
            .iter()
            .all(|tmpl| item.attribute_sets.iter().any(|e| tmpl.matches(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ServiceStub;

    fn printer() -> ServiceItem {
        ServiceItem::new(ServiceStub::new(
            vec!["PrinterService".into(), "Service".into()],
            vec![],
        ))
        .with_id(ServiceId::new(7, 7))
        .with_entry(Entry::name("laser").with("location", "room-3"))
        .with_entry(Entry::new("Status").with("state", "idle"))
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(ServiceTemplate::any().matches(&printer()));
    }

    #[test]
    fn id_matching() {
        assert!(ServiceTemplate::by_id(ServiceId::new(7, 7)).matches(&printer()));
        assert!(!ServiceTemplate::by_id(ServiceId::new(1, 1)).matches(&printer()));
    }

    #[test]
    fn type_matching_requires_all() {
        assert!(ServiceTemplate::by_type("PrinterService").matches(&printer()));
        assert!(ServiceTemplate::by_type("Service")
            .with_type("PrinterService")
            .matches(&printer()));
        assert!(!ServiceTemplate::by_type("Scanner").matches(&printer()));
        assert!(!ServiceTemplate::by_type("PrinterService")
            .with_type("Scanner")
            .matches(&printer()));
    }

    #[test]
    fn entry_template_wildcards() {
        let t = ServiceTemplate::any().with_entry(EntryTemplate::new("Name").with("name", "laser"));
        assert!(t.matches(&printer()));

        let t = ServiceTemplate::any().with_entry(EntryTemplate::new("Name").with_any("location"));
        assert!(t.matches(&printer()));

        let t = ServiceTemplate::any().with_entry(EntryTemplate::new("Name").with_any("missing"));
        assert!(!t.matches(&printer()));

        let t =
            ServiceTemplate::any().with_entry(EntryTemplate::new("Name").with("name", "inkjet"));
        assert!(!t.matches(&printer()));
    }

    #[test]
    fn each_entry_template_independently_satisfied() {
        let t = ServiceTemplate::any()
            .with_entry(EntryTemplate::new("Name").with("name", "laser"))
            .with_entry(EntryTemplate::new("Status").with("state", "idle"));
        assert!(t.matches(&printer()));
        // One template can't straddle two entries.
        let t = ServiceTemplate::any().with_entry(
            EntryTemplate::new("Name")
                .with("name", "laser")
                .with("state", "idle"),
        );
        assert!(!t.matches(&printer()));
    }

    #[test]
    fn class_must_match_exactly() {
        let t = ServiceTemplate::any().with_entry(EntryTemplate::new("name"));
        assert!(!t.matches(&printer()), "entry class comparison is exact");
    }
}
