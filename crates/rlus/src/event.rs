//! Remote events (Jini `ServiceRegistrar.notify`).
//!
//! A client registers a template plus a transition mask; the registrar
//! fires an event whenever a service's membership in the template's match
//! set changes.

use std::sync::Arc;

use crate::id::ServiceId;
use crate::item::ServiceItem;

/// Match-set transition kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Transition {
    /// Item entered the match set (registered or changed into matching).
    Match,
    /// Item left the match set (deleted, expired, or changed away).
    NoMatch,
    /// Item changed while remaining in the match set.
    Changed,
}

/// An event delivered to a subscriber.
#[derive(Clone, Debug)]
pub struct ServiceEvent {
    /// Identifies the subscription that produced the event.
    pub registration_id: u64,
    /// Monotonically increasing per subscription.
    pub sequence: u64,
    pub service_id: ServiceId,
    pub transition: Transition,
    /// The item after the transition (absent for `NoMatch`, mirroring the
    /// Jini behaviour of delivering `null` for deleted items).
    pub item: Option<ServiceItem>,
}

/// Receives service events. Must be cheap and non-blocking.
pub trait ServiceListener: Send + Sync {
    fn notify(&self, event: &ServiceEvent);
}

/// A listener that buffers events — convenient for polling clients and
/// tests.
#[derive(Default)]
pub struct BufferingListener {
    events: parking_lot::Mutex<Vec<ServiceEvent>>,
}

impl BufferingListener {
    pub fn new() -> Arc<Self> {
        Arc::new(BufferingListener::default())
    }

    pub fn drain(&self) -> Vec<ServiceEvent> {
        std::mem::take(&mut self.events.lock())
    }

    pub fn count(&self) -> usize {
        self.events.lock().len()
    }
}

impl ServiceListener for BufferingListener {
    fn notify(&self, event: &ServiceEvent) {
        self.events.lock().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffering_listener_accumulates() {
        let l = BufferingListener::new();
        let ev = ServiceEvent {
            registration_id: 1,
            sequence: 1,
            service_id: ServiceId::new(0, 1),
            transition: Transition::Match,
            item: None,
        };
        l.notify(&ev);
        l.notify(&ev);
        assert_eq!(l.count(), 2);
        assert_eq!(l.drain().len(), 2);
        assert_eq!(l.count(), 0);
    }
}
