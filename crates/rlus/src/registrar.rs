//! The lookup service proper (Jini `ServiceRegistrar`).
//!
//! Key behavioural contract, faithfully mirrored from Jini because the
//! paper's provider design is a direct response to it:
//!
//! * [`Registrar::register`] **always overwrites** an existing item with
//!   the same service id ("aiming at achieving idempotency, Jini
//!   registration methods always overwrite the previous value") — there is
//!   no compare-and-set / atomic-bind primitive.
//! * Every registration and event subscription is **leased** and vanishes
//!   unless renewed ([`Registrar::sweep`] reclaims expired grants).
//! * Lookups match by [`ServiceTemplate`]; events fire on match-set
//!   transitions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::clock::Clock;
use crate::event::{ServiceEvent, ServiceListener, Transition};
use crate::id::ServiceId;
use crate::index::ServiceIndex;
use crate::item::{Entry, ServiceItem};
use crate::lease::{Lease, LeaseError, LeaseSet};
use crate::template::ServiceTemplate;

/// Returned by [`Registrar::register`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceRegistration {
    pub service_id: ServiceId,
    pub lease: Lease,
}

/// Returned by [`Registrar::notify`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRegistration {
    pub registration_id: u64,
    pub lease: Lease,
}

/// Aggregate counters, for experiments and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistrarStats {
    pub registrations: u64,
    pub overwrites: u64,
    pub lookups: u64,
    pub events_fired: u64,
    pub leases_expired: u64,
}

struct StoredItem {
    item: ServiceItem,
    lease_id: u64,
}

struct EventReg {
    template: ServiceTemplate,
    transitions: Vec<Transition>,
    listener: Arc<dyn ServiceListener>,
    sequence: u64,
}

/// Stats live outside the item map so the read path never needs a write
/// lock just to bump a counter.
#[derive(Default)]
struct StatsCounters {
    registrations: AtomicU64,
    overwrites: AtomicU64,
    lookups: AtomicU64,
    events_fired: AtomicU64,
    leases_expired: AtomicU64,
}

struct State {
    rng: StdRng,
    items: HashMap<ServiceId, StoredItem>,
    /// Posting sets over `items`; updated under the same write lock as
    /// every `items` mutation (see `crate::index` for the coherence rule).
    index: ServiceIndex,
    service_leases: LeaseSet<ServiceId>,
    event_regs: HashMap<u64, EventReg>,
    event_leases: LeaseSet<u64>,
}

/// A lookup service instance. Cloneable handle; thread-safe.
///
/// ```
/// use rlus::{Entry, ManualClock, Registrar, ServiceItem, ServiceStub, ServiceTemplate};
///
/// let registrar = Registrar::new(ManualClock::new(), 60_000, 0);
/// let item = ServiceItem::new(ServiceStub::new(vec!["Printer".into()], vec![]))
///     .with_entry(Entry::name("laser"));
/// let reg = registrar.register(item, 60_000);
/// let found = registrar
///     .lookup(&ServiceTemplate::by_type("Printer"))
///     .expect("registered service discoverable by type");
/// assert_eq!(found.service_id, Some(reg.service_id));
/// ```
#[derive(Clone)]
pub struct Registrar {
    clock: Arc<dyn Clock>,
    state: Arc<RwLock<State>>,
    stats: Arc<StatsCounters>,
}

impl Registrar {
    /// Create a registrar. `max_lease_ms` caps every granted lease.
    pub fn new(clock: Arc<dyn Clock>, max_lease_ms: u64, seed: u64) -> Self {
        Registrar {
            clock,
            state: Arc::new(RwLock::new(State {
                rng: StdRng::seed_from_u64(seed),
                items: HashMap::new(),
                index: ServiceIndex::default(),
                service_leases: LeaseSet::new(max_lease_ms),
                event_regs: HashMap::new(),
                event_leases: LeaseSet::new(max_lease_ms),
            })),
            stats: Arc::new(StatsCounters::default()),
        }
    }

    /// Register (or overwrite) a service item.
    pub fn register(&self, mut item: ServiceItem, lease_ms: u64) -> ServiceRegistration {
        let now = self.clock.now_ms();
        let (reg, events) = {
            let mut st = self.state.write();
            self.stats.registrations.fetch_add(1, Ordering::Relaxed);
            let id = match item.service_id {
                Some(id) => id,
                None => {
                    let id = ServiceId::random(&mut st.rng);
                    item.service_id = Some(id);
                    id
                }
            };
            let old = st.items.remove(&id);
            if let Some(prev) = &old {
                self.stats.overwrites.fetch_add(1, Ordering::Relaxed);
                st.index.remove(id, &prev.item);
                let _ = st.service_leases.cancel(prev.lease_id);
            }
            let lease = st.service_leases.grant(id, lease_ms, now);
            let events =
                self.transition_events(&mut st, id, old.as_ref().map(|s| &s.item), Some(&item));
            st.index.insert(id, &item);
            st.items.insert(
                id,
                StoredItem {
                    item,
                    lease_id: lease.id,
                },
            );
            (
                ServiceRegistration {
                    service_id: id,
                    lease,
                },
                events,
            )
        };
        self.fire(events);
        reg
    }

    /// Replace the attribute entries of a registered service.
    pub fn set_attributes(&self, id: ServiceId, entries: Vec<Entry>) -> Result<(), LeaseError> {
        let events = {
            let mut st = self.state.write();
            let stored = st.items.get(&id).ok_or(LeaseError::Unknown(0))?;
            let old = stored.item.clone();
            let mut new = old.clone();
            new.attribute_sets = entries;
            let events = self.transition_events(&mut st, id, Some(&old), Some(&new));
            st.index.remove(id, &old);
            st.index.insert(id, &new);
            st.items.get_mut(&id).expect("checked above").item = new;
            events
        };
        self.fire(events);
        Ok(())
    }

    /// First item matching `template`, if any.
    pub fn lookup(&self, template: &ServiceTemplate) -> Option<ServiceItem> {
        let st = self.state.read();
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        Self::collect_matches(&st, template, 1).pop()
    }

    /// Up to `max` items matching `template` (0 = unlimited).
    ///
    /// Resolved via the secondary indexes: an explicit service id is a
    /// direct map hit, otherwise the template's type/entry constraints are
    /// intersected over posting sets and only the (usually few) candidates
    /// are verified against the full template. A wildcard template still
    /// scans — everything matches it anyway.
    pub fn lookup_all(&self, template: &ServiceTemplate, max: usize) -> Vec<ServiceItem> {
        let st = self.state.read();
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        Self::collect_matches(&st, template, max)
    }

    /// Reference implementation of [`Registrar::lookup_all`]: a linear scan
    /// over every item, bypassing the indexes. Retained as the oracle the
    /// property/stress tests and the `readpath_scale` bench compare the
    /// indexed path against. Does not count toward [`RegistrarStats`].
    pub fn lookup_all_scan(&self, template: &ServiceTemplate, max: usize) -> Vec<ServiceItem> {
        let st = self.state.read();
        let iter = st
            .items
            .values()
            .map(|s| &s.item)
            .filter(|i| template.matches(i))
            .cloned();
        if max == 0 {
            iter.collect()
        } else {
            iter.take(max).collect()
        }
    }

    /// `[index, scan]` read-path counters, resolved once per process.
    fn read_path_counters() -> &'static [std::sync::Arc<rndi_obs::Counter>; 2] {
        static COUNTERS: std::sync::OnceLock<[std::sync::Arc<rndi_obs::Counter>; 2]> =
            std::sync::OnceLock::new();
        COUNTERS.get_or_init(|| {
            let name = rndi_obs::metrics::names::INDEX_READS;
            ["index", "scan"]
                .map(|path| rndi_obs::metrics::counter(name, &[("server", "rlus"), ("path", path)]))
        })
    }

    fn collect_matches(st: &State, template: &ServiceTemplate, max: usize) -> Vec<ServiceItem> {
        let cap = if max == 0 { usize::MAX } else { max };
        let mut out = Vec::new();
        if let Some(id) = template.service_id {
            // Id-constrained templates resolve to at most one item directly.
            Self::read_path_counters()[0].inc();
            if let Some(stored) = st.items.get(&id) {
                if template.matches(&stored.item) {
                    out.push(stored.item.clone());
                }
            }
            return out;
        }
        match st.index.candidates(template) {
            Some(ids) => {
                Self::read_path_counters()[0].inc();
                for id in ids {
                    let stored = st.items.get(&id).expect("index coherent with items");
                    if template.matches(&stored.item) {
                        out.push(stored.item.clone());
                        if out.len() == cap {
                            break;
                        }
                    }
                }
            }
            None => {
                Self::read_path_counters()[1].inc();
                for stored in st.items.values() {
                    if template.matches(&stored.item) {
                        out.push(stored.item.clone());
                        if out.len() == cap {
                            break;
                        }
                    }
                }
            }
        }
        out
    }

    /// Renew a service lease.
    pub fn renew_service_lease(&self, lease_id: u64, ms: u64) -> Result<Lease, LeaseError> {
        let now = self.clock.now_ms();
        self.state.write().service_leases.renew(lease_id, ms, now)
    }

    /// Cancel a service lease, removing the item (fires `NoMatch` events).
    pub fn cancel_service_lease(&self, lease_id: u64) -> Result<(), LeaseError> {
        let events = {
            let mut st = self.state.write();
            let id = st.service_leases.cancel(lease_id)?;
            let old = st.items.remove(&id);
            if let Some(prev) = &old {
                st.index.remove(id, &prev.item);
            }
            self.transition_events(&mut st, id, old.as_ref().map(|s| &s.item), None)
        };
        self.fire(events);
        Ok(())
    }

    /// Subscribe to match-set transitions for `template`.
    pub fn notify(
        &self,
        template: ServiceTemplate,
        transitions: &[Transition],
        listener: Arc<dyn ServiceListener>,
        lease_ms: u64,
    ) -> EventRegistration {
        let now = self.clock.now_ms();
        let mut st = self.state.write();
        // The registration id doubles as the lease resource: reuse the id
        // the next grant will receive, so each subscription has one id.
        let reg_id = st.event_leases.peek_next_id();
        let lease = st.event_leases.grant(reg_id, lease_ms, now);
        debug_assert_eq!(lease.id, reg_id);
        st.event_regs.insert(
            reg_id,
            EventReg {
                template,
                transitions: transitions.to_vec(),
                listener,
                sequence: 0,
            },
        );
        EventRegistration {
            registration_id: reg_id,
            lease,
        }
    }

    /// Renew an event-subscription lease.
    pub fn renew_event_lease(&self, lease_id: u64, ms: u64) -> Result<Lease, LeaseError> {
        let now = self.clock.now_ms();
        self.state.write().event_leases.renew(lease_id, ms, now)
    }

    /// Cancel an event-subscription lease.
    pub fn cancel_event_lease(&self, lease_id: u64) -> Result<(), LeaseError> {
        let mut st = self.state.write();
        let reg_id = st.event_leases.cancel(lease_id)?;
        st.event_regs.remove(&reg_id);
        Ok(())
    }

    /// Reclaim expired leases: expired services are removed (firing
    /// `NoMatch` events), expired subscriptions are dropped.
    pub fn sweep(&self) {
        let now = self.clock.now_ms();
        let events = {
            let mut st = self.state.write();
            let dead_services = st.service_leases.sweep(now);
            let mut events = Vec::new();
            for id in dead_services {
                self.stats.leases_expired.fetch_add(1, Ordering::Relaxed);
                let old = st.items.remove(&id);
                if let Some(prev) = &old {
                    st.index.remove(id, &prev.item);
                }
                events.extend(self.transition_events(
                    &mut st,
                    id,
                    old.as_ref().map(|s| &s.item),
                    None,
                ));
            }
            let dead_regs = st.event_leases.sweep(now);
            for reg_id in dead_regs {
                self.stats.leases_expired.fetch_add(1, Ordering::Relaxed);
                st.event_regs.remove(&reg_id);
            }
            events
        };
        self.fire(events);
    }

    /// Number of live registrations.
    pub fn item_count(&self) -> usize {
        self.state.read().items.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RegistrarStats {
        RegistrarStats {
            registrations: self.stats.registrations.load(Ordering::Relaxed),
            overwrites: self.stats.overwrites.load(Ordering::Relaxed),
            lookups: self.stats.lookups.load(Ordering::Relaxed),
            events_fired: self.stats.events_fired.load(Ordering::Relaxed),
            leases_expired: self.stats.leases_expired.load(Ordering::Relaxed),
        }
    }

    /// Compute the events produced by transitioning `id` from `old` to
    /// `new` across all subscriptions.
    fn transition_events(
        &self,
        st: &mut State,
        id: ServiceId,
        old: Option<&ServiceItem>,
        new: Option<&ServiceItem>,
    ) -> Vec<(Arc<dyn ServiceListener>, ServiceEvent)> {
        let mut out = Vec::new();
        for (reg_id, reg) in st.event_regs.iter_mut() {
            let was = old.is_some_and(|i| reg.template.matches(i));
            let is = new.is_some_and(|i| reg.template.matches(i));
            let transition = match (was, is) {
                (false, true) => Transition::Match,
                (true, false) => Transition::NoMatch,
                (true, true) if old != new => Transition::Changed,
                _ => continue,
            };
            if !reg.transitions.contains(&transition) {
                continue;
            }
            reg.sequence += 1;
            self.stats.events_fired.fetch_add(1, Ordering::Relaxed);
            out.push((
                reg.listener.clone(),
                ServiceEvent {
                    registration_id: *reg_id,
                    sequence: reg.sequence,
                    service_id: id,
                    transition,
                    item: is.then(|| new.expect("is implies new").clone()),
                },
            ));
        }
        out
    }

    fn fire(&self, events: Vec<(Arc<dyn ServiceListener>, ServiceEvent)>) {
        for (listener, event) in events {
            listener.notify(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::event::BufferingListener;
    use crate::item::ServiceStub;
    use crate::template::EntryTemplate;

    fn registrar() -> (Registrar, Arc<ManualClock>) {
        let clock = ManualClock::new();
        (Registrar::new(clock.clone(), 60_000, 42), clock)
    }

    fn item(name: &str) -> ServiceItem {
        ServiceItem::new(ServiceStub::new(vec!["Svc".into()], vec![1, 2]))
            .with_entry(Entry::name(name))
    }

    #[test]
    fn register_assigns_id_and_lookup_finds() {
        let (r, _) = registrar();
        let reg = r.register(item("a"), 10_000);
        let found = r
            .lookup(
                &ServiceTemplate::any().with_entry(EntryTemplate::new("Name").with("name", "a")),
            )
            .unwrap();
        assert_eq!(found.service_id, Some(reg.service_id));
        assert_eq!(r.item_count(), 1);
    }

    #[test]
    fn register_with_same_id_overwrites_silently() {
        let (r, _) = registrar();
        let reg1 = r.register(item("a"), 10_000);
        // Re-register under the same id with different attributes: no error,
        // previous value replaced — the Jini idempotency contract.
        let reg2 = r.register(item("b").with_id(reg1.service_id), 10_000);
        assert_eq!(reg1.service_id, reg2.service_id);
        assert_eq!(r.item_count(), 1);
        assert!(r
            .lookup(
                &ServiceTemplate::any().with_entry(EntryTemplate::new("Name").with("name", "a"))
            )
            .is_none());
        assert!(r
            .lookup(
                &ServiceTemplate::any().with_entry(EntryTemplate::new("Name").with("name", "b"))
            )
            .is_some());
        assert_eq!(r.stats().overwrites, 1);
    }

    #[test]
    fn lookup_all_respects_max() {
        let (r, _) = registrar();
        for i in 0..5 {
            r.register(item(&format!("s{i}")), 10_000);
        }
        assert_eq!(r.lookup_all(&ServiceTemplate::any(), 0).len(), 5);
        assert_eq!(r.lookup_all(&ServiceTemplate::any(), 3).len(), 3);
    }

    #[test]
    fn lease_expiry_removes_items() {
        let (r, clock) = registrar();
        r.register(item("x"), 1_000);
        clock.set(999);
        r.sweep();
        assert_eq!(r.item_count(), 1);
        clock.set(1_000);
        r.sweep();
        assert_eq!(r.item_count(), 0);
        assert_eq!(r.stats().leases_expired, 1);
    }

    #[test]
    fn renewal_keeps_item_alive() {
        let (r, clock) = registrar();
        let reg = r.register(item("x"), 1_000);
        clock.set(800);
        r.renew_service_lease(reg.lease.id, 1_000).unwrap();
        clock.set(1_500);
        r.sweep();
        assert_eq!(r.item_count(), 1, "renewed to t=1800");
        clock.set(1_800);
        r.sweep();
        assert_eq!(r.item_count(), 0);
    }

    #[test]
    fn cancel_removes_immediately() {
        let (r, _) = registrar();
        let reg = r.register(item("x"), 10_000);
        r.cancel_service_lease(reg.lease.id).unwrap();
        assert_eq!(r.item_count(), 0);
        assert!(matches!(
            r.cancel_service_lease(reg.lease.id),
            Err(LeaseError::Unknown(_))
        ));
    }

    #[test]
    fn events_fire_on_transitions() {
        let (r, _) = registrar();
        let l = BufferingListener::new();
        let tmpl =
            ServiceTemplate::any().with_entry(EntryTemplate::new("Name").with("name", "watched"));
        r.notify(
            tmpl,
            &[Transition::Match, Transition::NoMatch, Transition::Changed],
            l.clone(),
            60_000,
        );

        // Non-matching registration: no event.
        r.register(item("other"), 10_000);
        assert_eq!(l.count(), 0);

        // Matching registration: Match event with the item.
        let reg = r.register(item("watched"), 10_000);
        let evs = l.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].transition, Transition::Match);
        assert!(evs[0].item.is_some());

        // Attribute change keeping it matching: Changed.
        r.set_attributes(
            reg.service_id,
            vec![Entry::name("watched").with("extra", "1")],
        )
        .unwrap();
        let evs = l.drain();
        assert_eq!(evs[0].transition, Transition::Changed);

        // Changing away from the template: NoMatch, item absent.
        r.set_attributes(reg.service_id, vec![Entry::name("renamed")])
            .unwrap();
        let evs = l.drain();
        assert_eq!(evs[0].transition, Transition::NoMatch);
        assert!(evs[0].item.is_none());
    }

    #[test]
    fn event_sequence_numbers_increase() {
        let (r, _) = registrar();
        let l = BufferingListener::new();
        r.notify(
            ServiceTemplate::any(),
            &[Transition::Match, Transition::NoMatch],
            l.clone(),
            60_000,
        );
        let reg = r.register(item("a"), 10_000);
        r.cancel_service_lease(reg.lease.id).unwrap();
        let evs = l.drain();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].sequence < evs[1].sequence);
    }

    #[test]
    fn transition_mask_filters_events() {
        let (r, _) = registrar();
        let l = BufferingListener::new();
        r.notify(
            ServiceTemplate::any(),
            &[Transition::NoMatch],
            l.clone(),
            60_000,
        );
        let reg = r.register(item("a"), 10_000);
        assert_eq!(l.count(), 0, "Match filtered out");
        r.cancel_service_lease(reg.lease.id).unwrap();
        assert_eq!(l.count(), 1);
    }

    #[test]
    fn expired_subscription_stops_firing() {
        let (r, clock) = registrar();
        let l = BufferingListener::new();
        r.notify(
            ServiceTemplate::any(),
            &[Transition::Match],
            l.clone(),
            1_000,
        );
        clock.set(2_000);
        r.sweep();
        r.register(item("a"), 10_000);
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn lease_expiry_fires_nomatch_events() {
        let (r, clock) = registrar();
        let l = BufferingListener::new();
        r.notify(
            ServiceTemplate::any(),
            &[Transition::NoMatch],
            l.clone(),
            60_000,
        );
        r.register(item("dies"), 500);
        clock.set(600);
        r.sweep();
        let evs = l.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].transition, Transition::NoMatch);
    }

    #[test]
    fn cancel_event_lease_unsubscribes() {
        let (r, _) = registrar();
        let l = BufferingListener::new();
        let reg = r.notify(
            ServiceTemplate::any(),
            &[Transition::Match],
            l.clone(),
            60_000,
        );
        r.cancel_event_lease(reg.lease.id).unwrap();
        r.register(item("a"), 10_000);
        assert_eq!(l.count(), 0);
    }
}
