//! Property tests for the lookup service.

use proptest::prelude::*;

use rlus::{
    Entry, EntryTemplate, ManualClock, Registrar, ServiceId, ServiceItem, ServiceStub,
    ServiceTemplate,
};

fn entry_strategy() -> impl Strategy<Value = Entry> {
    (
        "[A-Z][a-z]{1,6}",
        proptest::collection::btree_map("[a-z]{1,4}", "[a-z0-9]{1,6}", 0..4),
    )
        .prop_map(|(class, fields)| Entry { class, fields })
}

fn item_strategy() -> impl Strategy<Value = ServiceItem> {
    (
        proptest::collection::vec("[A-Z][a-zA-Z]{1,8}", 1..4),
        proptest::collection::vec(any::<u8>(), 0..16),
        proptest::collection::vec(entry_strategy(), 0..4),
    )
        .prop_map(|(types, payload, entries)| {
            let mut item = ServiceItem::new(ServiceStub::new(types, payload));
            for e in entries {
                item = item.with_entry(e);
            }
            item
        })
}

proptest! {
    /// The wildcard template matches everything; a template built *from*
    /// an item matches that item (self-consistency).
    #[test]
    fn template_self_consistency(item in item_strategy()) {
        prop_assert!(ServiceTemplate::any().matches(&item));

        let mut t = ServiceTemplate::any();
        for ty in &item.service.type_names {
            t = t.with_type(ty.clone());
        }
        for e in &item.attribute_sets {
            let mut et = EntryTemplate::new(e.class.clone());
            for (k, v) in &e.fields {
                et = et.with(k.clone(), v.clone());
            }
            t = t.with_entry(et);
        }
        prop_assert!(t.matches(&item), "derived template must match its item");
    }

    /// Dropping constraints from a matching template never unmatches
    /// (matching is monotone in template generality).
    #[test]
    fn template_matching_is_monotone(item in item_strategy()) {
        let mut full = ServiceTemplate::any();
        for ty in &item.service.type_names {
            full = full.with_type(ty.clone());
        }
        for e in &item.attribute_sets {
            let mut et = EntryTemplate::new(e.class.clone());
            for (k, v) in &e.fields {
                et = et.with(k.clone(), v.clone());
            }
            full = full.with_entry(et);
        }
        prop_assume!(full.matches(&item));
        // Remove the entry templates: still matches.
        let weaker = ServiceTemplate {
            attribute_templates: vec![],
            ..full.clone()
        };
        prop_assert!(weaker.matches(&item));
        // Remove the type constraints too: still matches.
        let weakest = ServiceTemplate::any();
        prop_assert!(weakest.matches(&item));
    }

    /// Registrar invariant: after arbitrary register/cancel/sweep
    /// interleavings, item count equals live service leases, and lookup by
    /// assigned id finds exactly the registered items.
    #[test]
    fn registrar_state_consistency(
        script in proptest::collection::vec(
            (0u8..3, 0u64..5_000, any::<u8>()),
            1..40
        )
    ) {
        let clock = ManualClock::new();
        let registrar = Registrar::new(clock.clone(), 60_000, 42);
        let mut live: Vec<(ServiceId, u64)> = Vec::new(); // (id, lease id)
        let mut now = 0u64;
        for (op, dt, tag) in script {
            now += dt;
            clock.set(now);
            registrar.sweep();
            live.retain(|(_, lease_id)| {
                // A lease might have expired; probe by renewal.
                registrar.renew_service_lease(*lease_id, 60_000).is_ok()
            });
            match op {
                0 => {
                    let item = ServiceItem::new(ServiceStub::new(
                        vec![format!("T{tag}")],
                        vec![tag],
                    ));
                    let reg = registrar.register(item, 60_000);
                    live.push((reg.service_id, reg.lease.id));
                }
                1 => {
                    if let Some((_, lease_id)) = live.pop() {
                        registrar.cancel_service_lease(lease_id).ok();
                    }
                }
                _ => {
                    registrar.sweep();
                }
            }
            prop_assert_eq!(registrar.item_count(), live.len());
            for (id, _) in &live {
                prop_assert!(
                    registrar.lookup(&ServiceTemplate::by_id(*id)).is_some(),
                    "live item findable by id"
                );
            }
        }
    }

    /// Overwriting an id any number of times leaves exactly one item.
    #[test]
    fn register_is_idempotent_per_id(n in 1usize..10, hi in any::<u64>(), lo in any::<u64>()) {
        let clock = ManualClock::new();
        let registrar = Registrar::new(clock, 60_000, 1);
        for i in 0..n {
            let item = ServiceItem::new(ServiceStub::new(vec!["T".into()], vec![i as u8]))
                .with_id(ServiceId::new(hi, lo));
            registrar.register(item, 60_000);
        }
        prop_assert_eq!(registrar.item_count(), 1);
        let found = registrar
            .lookup(&ServiceTemplate::by_id(ServiceId::new(hi, lo)))
            .unwrap();
        prop_assert_eq!(found.service.payload, vec![(n - 1) as u8], "last write wins");
    }

    /// ServiceId display/parse roundtrip.
    #[test]
    fn service_id_roundtrip(hi in any::<u64>(), lo in any::<u64>()) {
        let id = ServiceId::new(hi, lo);
        prop_assert_eq!(id.to_string().parse::<ServiceId>().unwrap(), id);
    }

    /// Oracle equivalence: the indexed `lookup_all` agrees with the
    /// retained linear-scan implementation after arbitrary interleavings
    /// of registration, cancellation, attribute mutation and lease expiry,
    /// across a spread of selective and wildcard templates.
    #[test]
    fn indexed_lookup_matches_scan_oracle(
        script in proptest::collection::vec(
            (0u8..5, 0u64..1_500, any::<u8>()),
            1..50
        )
    ) {
        let clock = ManualClock::new();
        let registrar = Registrar::new(clock.clone(), 120_000, 7);
        let mut lease_ids: Vec<u64> = Vec::new();
        let mut ids: Vec<ServiceId> = Vec::new();
        let mut now = 0u64;
        for (op, dt, tag) in script {
            now += dt;
            clock.set(now);
            let entry = |prefix: &str| Entry {
                class: format!("C{}", tag % 3),
                fields: [("k".to_string(), format!("{prefix}{}", tag % 4))]
                    .into_iter()
                    .collect(),
            };
            match op {
                0 | 1 => {
                    // Short leases on op 1 so the sweeps below expire some.
                    let lease_ms = if op == 0 { 60_000 } else { 400 };
                    let item = ServiceItem::new(ServiceStub::new(
                        vec![format!("T{}", tag % 5)],
                        vec![tag],
                    ))
                    .with_entry(entry("v"));
                    let reg = registrar.register(item, lease_ms);
                    lease_ids.push(reg.lease.id);
                    ids.push(reg.service_id);
                }
                2 => {
                    if let Some(lease_id) = lease_ids.pop() {
                        let _ = registrar.cancel_service_lease(lease_id);
                    }
                }
                3 => {
                    if let Some(id) = ids.get(usize::from(tag) % ids.len().max(1)) {
                        let _ = registrar.set_attributes(*id, vec![entry("w")]);
                    }
                }
                _ => registrar.sweep(),
            }
            registrar.sweep();

            let mut templates = vec![
                ServiceTemplate::any(),
                ServiceTemplate::any().with_type(format!("T{}", tag % 5)),
                ServiceTemplate::any()
                    .with_entry(EntryTemplate::new(format!("C{}", tag % 3))),
                ServiceTemplate::any().with_entry(
                    EntryTemplate::new(format!("C{}", tag % 3))
                        .with("k", format!("v{}", tag % 4)),
                ),
                ServiceTemplate::any()
                    .with_type(format!("T{}", tag % 5))
                    .with_entry(
                        EntryTemplate::new(format!("C{}", tag % 3))
                            .with("k", format!("w{}", tag % 4)),
                    ),
            ];
            if let Some(id) = ids.first() {
                templates.push(ServiceTemplate::by_id(*id));
            }
            let key = |items: Vec<ServiceItem>| {
                let mut k: Vec<_> = items
                    .into_iter()
                    .map(|i| (i.service_id, i.service.payload, i.attribute_sets))
                    .collect();
                // Ids are unique per item, so this sort is total.
                k.sort_by_key(|(id, _, _)| *id);
                k
            };
            for t in &templates {
                let indexed = key(registrar.lookup_all(t, usize::MAX));
                let scanned = key(registrar.lookup_all_scan(t, usize::MAX));
                prop_assert_eq!(indexed, scanned, "template {:?}", t);
            }
        }
    }
}
