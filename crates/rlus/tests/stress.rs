//! Concurrency stress: hammer one registrar from many threads and check
//! that the secondary indexes stay coherent with the item table — no lost
//! registrations, no ghosts after cancellation, no stale index hits after
//! lease expiry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rlus::{
    Entry, EntryTemplate, ManualClock, Registrar, ServiceId, ServiceItem, ServiceStub,
    ServiceTemplate,
};

const WRITERS: usize = 4;
const READERS: usize = 4;
const OPS_PER_WRITER: usize = 300;

fn item(writer: usize, op: usize) -> ServiceItem {
    ServiceItem::new(ServiceStub::new(
        vec![format!("T{}", op % 3), "Stress".to_string()],
        vec![writer as u8, (op % 251) as u8],
    ))
    .with_entry(Entry {
        class: "Name".to_string(),
        fields: [("v".to_string(), format!("{}", op % 7))]
            .into_iter()
            .collect(),
    })
}

/// N writers register/cancel while M readers run wildcard, typed and
/// attribute lookups concurrently. Afterwards the surviving set must be
/// exactly what the writers say survived.
#[test]
fn concurrent_writers_and_readers_stay_coherent() {
    let clock = ManualClock::new();
    let registrar = Registrar::new(clock.clone(), 600_000, 99);
    let done = Arc::new(AtomicU64::new(0));

    let survivors: Vec<Vec<(ServiceId, u64)>> = std::thread::scope(|s| {
        let mut writer_handles = Vec::new();
        for w in 0..WRITERS {
            let registrar = registrar.clone();
            writer_handles.push(s.spawn(move || {
                let mut live: Vec<(ServiceId, u64)> = Vec::new();
                for op in 0..OPS_PER_WRITER {
                    let reg = registrar.register(item(w, op), 600_000);
                    live.push((reg.service_id, reg.lease.id));
                    // Cancel roughly half of what we register, interleaved.
                    if op % 2 == 1 {
                        let victim = live.swap_remove(op % live.len());
                        registrar
                            .cancel_service_lease(victim.1)
                            .expect("own live lease cancels");
                    }
                    if op % 16 == 0 {
                        let _ = registrar.set_attributes(
                            live[0].0,
                            vec![Entry {
                                class: "Name".to_string(),
                                fields: [("v".to_string(), "mut".to_string())]
                                    .into_iter()
                                    .collect(),
                            }],
                        );
                    }
                }
                live
            }));
        }

        for _ in 0..READERS {
            let registrar = registrar.clone();
            let done = done.clone();
            s.spawn(move || {
                let typed = ServiceTemplate::any().with_type("Stress".to_string());
                let attr =
                    ServiceTemplate::any().with_entry(EntryTemplate::new("Name").with("v", "3"));
                while done.load(Ordering::Relaxed) == 0 {
                    // Every hit an index hands back must genuinely match.
                    for hit in registrar.lookup_all(&typed, usize::MAX) {
                        assert!(typed.matches(&hit), "index returned a non-match");
                    }
                    for hit in registrar.lookup_all(&attr, usize::MAX) {
                        assert!(attr.matches(&hit), "index returned a non-match");
                    }
                    let _ = registrar.lookup(&ServiceTemplate::any());
                }
            });
        }

        let survivors: Vec<_> = writer_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        done.store(1, Ordering::Relaxed);
        survivors
    });

    let live: Vec<(ServiceId, u64)> = survivors.into_iter().flatten().collect();
    assert_eq!(registrar.item_count(), live.len(), "no lost or ghost items");
    for (id, _) in &live {
        assert!(
            registrar.lookup(&ServiceTemplate::by_id(*id)).is_some(),
            "surviving registration findable by id"
        );
    }
    // The wildcard scan and the indexed typed lookup agree on the world.
    let all = registrar.lookup_all(&ServiceTemplate::any(), usize::MAX);
    let typed = registrar.lookup_all(
        &ServiceTemplate::any().with_type("Stress".to_string()),
        usize::MAX,
    );
    assert_eq!(all.len(), live.len());
    assert_eq!(typed.len(), live.len(), "every item carries type Stress");
}

/// Lease expiry under concurrent readers: once the clock passes the lease
/// horizon and a sweep runs, no template — indexed or not — may surface
/// an expired registration.
#[test]
fn no_stale_index_hits_after_expiry() {
    let clock = ManualClock::new();
    let registrar = Registrar::new(clock.clone(), 600_000, 7);

    let mut short_ids = Vec::new();
    for op in 0..200 {
        let reg = registrar.register(item(0, op), 1_000); // expires at t=1000
        short_ids.push(reg.service_id);
    }
    for op in 0..50 {
        registrar.register(item(1, op), 600_000); // long-lived
    }

    clock.set(2_000);
    std::thread::scope(|s| {
        for _ in 0..READERS {
            let registrar = registrar.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    registrar.sweep();
                    let _ = registrar.lookup_all(&ServiceTemplate::any(), usize::MAX);
                }
            });
        }
    });

    registrar.sweep();
    assert_eq!(registrar.item_count(), 50);
    for id in short_ids {
        assert!(
            registrar.lookup(&ServiceTemplate::by_id(id)).is_none(),
            "expired item resolvable by id"
        );
    }
    let typed = registrar.lookup_all(
        &ServiceTemplate::any().with_type("Stress".to_string()),
        usize::MAX,
    );
    assert_eq!(typed.len(), 50, "index retains only unexpired items");
    assert!(registrar.stats().leases_expired >= 200);
}
