//! Property tests for snapshot merging: the cluster rollup is only
//! trustworthy if merging is a well-behaved monoid. Merging N shard
//! snapshots must be associative and commutative, conserve bucket counts
//! and sums exactly, and produce quantiles bounded by the per-shard
//! extremes — otherwise the "one cluster exposition" is a lie.

use proptest::prelude::*;

use rndi_obs::metrics::HISTOGRAM_BUCKETS;
use rndi_obs::snapshot::{HistogramSeries, MetricsSnapshot};

/// An arbitrary histogram series for one of a few (name, op) identities,
/// with self-consistent buckets/count and a sum plausible for the bucket
/// occupancy (exact arithmetic only needs count/sum consistency).
fn arb_histogram() -> impl Strategy<Value = HistogramSeries> {
    (
        prop_oneof![
            Just("rndi_net_request_duration_ns"),
            Just("rndi_op_duration_ns")
        ],
        prop_oneof![Just("lookup"), Just("bind"), Just("search")],
        proptest::collection::vec(0u64..200, HISTOGRAM_BUCKETS..HISTOGRAM_BUCKETS + 1),
    )
        .prop_map(|(name, op, buckets)| {
            let count: u64 = buckets.iter().sum();
            // Sum consistent with the buckets: each observation priced at
            // its bucket's lower bound.
            let sum: u64 = buckets
                .iter()
                .enumerate()
                .map(|(i, n)| n * if i == 0 { 1 } else { 1u64 << (i - 1) })
                .sum();
            HistogramSeries {
                name: name.to_string(),
                labels: vec![("op".to_string(), op.to_string())],
                buckets,
                sum,
                count,
            }
        })
}

fn arb_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    proptest::collection::vec(arb_histogram(), 1..4).prop_map(|histograms| {
        let mut snap = MetricsSnapshot::default();
        // Route through merge so each snapshot starts canonical (sorted,
        // same-key series pre-folded) like a real registry snapshot.
        for h in histograms {
            snap.merge_from(&MetricsSnapshot {
                histograms: vec![h],
                ..Default::default()
            });
        }
        snap
    })
}

fn merge_all(parts: &[MetricsSnapshot]) -> MetricsSnapshot {
    let mut out = MetricsSnapshot::default();
    for p in parts {
        out.merge_from(p);
    }
    out
}

proptest! {
    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
    #[test]
    fn merge_is_associative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        let left = a.clone().merged(&b).merged(&c);
        let right = a.merged(&b.merged(&c));
        prop_assert_eq!(left, right);
    }

    /// Any permutation of shard snapshots merges to the same result.
    #[test]
    fn merge_is_commutative(
        parts in proptest::collection::vec(arb_snapshot(), 2..5),
        seed in any::<u64>(),
    ) {
        let mut shuffled = parts.clone();
        // Cheap deterministic Fisher–Yates from the seed.
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        prop_assert_eq!(merge_all(&parts), merge_all(&shuffled));
    }

    /// Nothing is lost or invented: per-(name, labels) bucket counts,
    /// counts, and sums in the merge equal the sums over the parts.
    #[test]
    fn merge_conserves_buckets_counts_and_sums(
        parts in proptest::collection::vec(arb_snapshot(), 1..5),
    ) {
        let merged = merge_all(&parts);
        for h in &merged.histograms {
            let mut want_buckets = vec![0u64; HISTOGRAM_BUCKETS];
            let mut want_sum = 0u64;
            let mut want_count = 0u64;
            for part in &parts {
                for ph in part
                    .histograms
                    .iter()
                    .filter(|ph| ph.name == h.name && ph.labels == h.labels)
                {
                    for (i, n) in ph.buckets.iter().enumerate() {
                        want_buckets[i] += n;
                    }
                    want_sum += ph.sum;
                    want_count += ph.count;
                }
            }
            prop_assert_eq!(&h.buckets, &want_buckets);
            prop_assert_eq!(h.sum, want_sum);
            prop_assert_eq!(h.count, want_count);
        }
        // And the merge introduces no series that no part had.
        for h in &merged.histograms {
            prop_assert!(parts.iter().any(|p| p
                .histograms
                .iter()
                .any(|ph| ph.name == h.name && ph.labels == h.labels)));
        }
    }

    /// A merged quantile lies within [min, max] of the per-shard
    /// quantiles: the cluster view can't be faster than the fastest shard
    /// or slower than the slowest.
    #[test]
    fn merged_quantiles_bound_per_shard_quantiles(
        parts in proptest::collection::vec(arb_snapshot(), 2..5),
        q in prop_oneof![Just(0.5), Just(0.95), Just(0.99)],
    ) {
        let merged = merge_all(&parts);
        for h in &merged.histograms {
            let legs: Vec<f64> = parts
                .iter()
                .flat_map(|p| &p.histograms)
                .filter(|ph| ph.name == h.name && ph.labels == h.labels)
                .filter_map(|ph| ph.quantile(q))
                .collect();
            if legs.is_empty() {
                continue;
            }
            let merged_q = h.quantile(q).expect("merged series has samples");
            let lo = legs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = legs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(
                merged_q >= lo - 1e-9 && merged_q <= hi + 1e-9,
                "q{q}: merged {merged_q} outside [{lo}, {hi}]"
            );
        }
    }
}
