//! Fuzz-style hardening for the observability text surfaces: the
//! exposition parser and the trace frame codec must return errors on
//! malformed or truncated input — never panic, never read out of bounds.

use proptest::prelude::*;

use rndi_obs::{expo, frame, TraceCtx};

proptest! {
    /// Arbitrary text (including multi-byte characters, braces, quotes,
    /// backslashes) parses to Ok or Err — never a panic.
    #[test]
    fn parse_never_panics_on_arbitrary_text(text in ".*") {
        let _ = expo::parse(&text);
    }

    /// Hostile almost-exposition text built from the tokens the parser
    /// cares about, in random order.
    #[test]
    fn parse_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("{".to_string()),
                Just("}".to_string()),
                Just("\"".to_string()),
                Just("\\".to_string()),
                Just("=".to_string()),
                Just(",".to_string()),
                Just("# TYPE".to_string()),
                Just("+Inf".to_string()),
                Just("NaN".to_string()),
                Just("\n".to_string()),
                Just(" ".to_string()),
                proptest::string::string_regex("[a-z_]{1,8}").expect("regex"),
                proptest::string::string_regex("[0-9.eE+-]{1,8}").expect("regex"),
            ],
            0..40,
        )
    ) {
        let _ = expo::parse(&tokens.concat());
    }

    /// Truncating a *valid* exposition at any byte must not panic (the
    /// common failure when a scrape is cut off mid-line).
    #[test]
    fn parse_survives_truncation(cut in 0usize..500) {
        let mut text = String::new();
        expo::write_sample(
            &mut text,
            "rndi_fuzz_total",
            &[("provider", "a\"b\\c\nd"), ("op", "lookup")],
            42.5,
        );
        text.push_str("# TYPE rndi_fuzz_total counter\n");
        expo::write_sample(&mut text, "rndi_plain", &[], f64::INFINITY);
        let cut = cut.min(text.len());
        // Truncation may land inside a multi-byte char; use a lossy view
        // the way a scrape buffer would.
        let truncated = String::from_utf8_lossy(&text.as_bytes()[..cut]);
        let _ = expo::parse(&truncated);
    }

    /// Everything write_sample can emit, parse accepts and round-trips.
    #[test]
    fn write_sample_output_always_reparses(
        name in proptest::string::string_regex("[a-z_][a-z0-9_:]{0,20}").expect("regex"),
        labels in proptest::collection::vec(
            (
                proptest::string::string_regex("[a-z_][a-z0-9_]{0,10}").expect("regex"),
                "[ -~]{0,12}",
            ),
            0..4,
        ),
        value in any::<i32>().prop_map(|v| v as f64),
    ) {
        let mut text = String::new();
        let borrowed: Vec<(&str, &str)> =
            labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        expo::write_sample(&mut text, &name, &borrowed, value);
        let samples = expo::parse(&text).expect("emitted sample reparses");
        prop_assert_eq!(samples.len(), 1);
        prop_assert_eq!(&samples[0].name, &name);
        prop_assert_eq!(samples[0].labels.len(), labels.len());
        for ((k, v), (pk, pv)) in labels.iter().zip(&samples[0].labels) {
            prop_assert_eq!(k, pk);
            prop_assert_eq!(v, pv);
        }
        prop_assert_eq!(samples[0].value, value);
    }

    /// The trace-frame codec: stripping arbitrary bytes never panics, and
    /// bytes that don't carry a well-formed header pass through unchanged.
    #[test]
    fn frame_strip_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let (ctx, rest) = frame::strip(&bytes);
        if ctx.is_none() {
            prop_assert_eq!(rest, &bytes[..]);
        }
    }

    /// A wrapped payload always strips back to the identical context and
    /// payload, even when the payload itself looks like a frame header.
    #[test]
    fn frame_wrap_strip_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        evil_prefix in any::<bool>(),
    ) {
        let mut payload = payload;
        if evil_prefix {
            let mut p = frame::MAGIC.to_vec();
            p.extend_from_slice(&payload);
            payload = p;
        }
        let ctx = TraceCtx::root().child();
        let framed = frame::wrap(&ctx, &payload);
        let (parsed, rest) = frame::strip(&framed);
        prop_assert_eq!(parsed, Some(ctx));
        prop_assert_eq!(rest, &payload[..]);
    }

    /// Truncating a framed payload anywhere must not panic.
    #[test]
    fn frame_strip_survives_truncation(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 0usize..128,
    ) {
        let framed = frame::wrap(&TraceCtx::root(), &payload);
        let cut = cut.min(framed.len());
        let _ = frame::strip(&framed[..cut]);
    }

    /// TraceCtx::parse (the header's text form) on arbitrary strings.
    #[test]
    fn trace_ctx_parse_never_panics(s in "[0-9a-fx-]{0,40}") {
        let _ = TraceCtx::parse(&s);
    }
}
