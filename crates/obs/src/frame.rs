//! The optional trace header carried alongside wire payloads.
//!
//! Providers that ship opaque bytes to a server (HDNS replicated writes,
//! LDAP attribute strings) prepend an ASCII header line so the server can
//! link its span to the client's. Servers [`strip`] the header before
//! storing the payload, so stored data is identical to what an untraced
//! client would have written:
//!
//! ```text
//! %RNDI-TRACE:<trace>-<span>-<parent>-<depth>\n<payload bytes…>
//! ```
//!
//! Backward compatibility is structural: a payload without the header
//! (old client → new server) passes through `strip` untouched, and a
//! client that has no trace context simply doesn't wrap (new client → old
//! server sees the byte-identical legacy encoding).

use crate::trace::TraceCtx;

/// Header magic. ASCII so framed payloads stay valid UTF-8 whenever the
/// payload itself is.
pub const MAGIC: &[u8] = b"%RNDI-TRACE:";

/// Prefix `payload` with a trace header.
pub fn wrap(ctx: &TraceCtx, payload: &[u8]) -> Vec<u8> {
    let header = ctx.encode();
    let mut out = Vec::with_capacity(MAGIC.len() + header.len() + 1 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(header.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(payload);
    out
}

/// Split a possibly-framed payload into its trace context and the bare
/// payload. Unframed input (or a magic-prefixed payload whose header does
/// not parse — foreign bytes) comes back unchanged with no context.
pub fn strip(bytes: &[u8]) -> (Option<TraceCtx>, &[u8]) {
    let Some(rest) = bytes.strip_prefix(MAGIC) else {
        return (None, bytes);
    };
    let Some(newline) = rest.iter().position(|b| *b == b'\n') else {
        return (None, bytes);
    };
    let Some(ctx) = std::str::from_utf8(&rest[..newline])
        .ok()
        .and_then(TraceCtx::parse)
    else {
        return (None, bytes);
    };
    (Some(ctx), &rest[newline + 1..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_strip_roundtrip() {
        let ctx = TraceCtx::root().child();
        let payload = br#"{"Str":"hello"}"#;
        let framed = wrap(&ctx, payload);
        let (got, bare) = strip(&framed);
        assert_eq!(got, Some(ctx));
        assert_eq!(bare, payload);
    }

    #[test]
    fn unframed_bytes_pass_through() {
        for payload in [&b"plain"[..], b"", b"\x00\x01binary"] {
            let (ctx, bare) = strip(payload);
            assert_eq!(ctx, None);
            assert_eq!(bare, payload);
        }
    }

    #[test]
    fn bad_header_is_treated_as_payload() {
        // Magic prefix but no parseable header: foreign data, untouched.
        for bytes in [
            &b"%RNDI-TRACE:junk\npayload"[..],
            b"%RNDI-TRACE:no-newline",
            b"%RNDI-TRACE:\npayload",
        ] {
            let (ctx, bare) = strip(bytes);
            assert_eq!(ctx, None);
            assert_eq!(bare, bytes);
        }
    }

    #[test]
    fn framed_utf8_stays_utf8() {
        let ctx = TraceCtx::root();
        let framed = wrap(&ctx, "héllo".as_bytes());
        assert!(std::str::from_utf8(&framed).is_ok());
    }
}
