//! Observability primitives for the RNDI pipeline.
//!
//! This crate sits *below* every other workspace crate (it depends only on
//! vendored `parking_lot`/`serde`), so providers, servers, and the core
//! pipeline can all emit into one process-wide view:
//!
//! * [`trace`] — structured tracing. A [`TraceCtx`] (trace id, span id,
//!   parent, depth) is minted at the pipeline entry, propagated through
//!   interceptors and federation fan-out, and carried across the wire via
//!   [`frame`]. Finished spans land in every installed [`TraceSink`]
//!   (bounded ring buffer by default, optional JSONL file sink).
//! * [`metrics`] — a registry of counters, gauges, and fixed-bucket (log2)
//!   latency histograms keyed by `(name, labels)`.
//! * [`expo`] — Prometheus-style text exposition: `metrics::render()`
//!   produces it, [`expo::parse`] validates it (used by tests and the CI
//!   smoke job).
//! * [`frame`] — the optional trace header wrapped around wire payloads so
//!   server-side spans link to client spans without the servers needing
//!   the naming core's value codec.
//! * [`snapshot`] — serializable, mergeable registry snapshots plus the
//!   per-instance [`HealthSummary`]: the currency of the cluster telemetry
//!   plane (remote scrape over the v2 admin protocol, client-side merge).
//! * [`recorder`] — the always-on flight recorder: on an anomalous op
//!   (slower than a multiple of the trailing p99, or an error-rate spike)
//!   it dumps the trace ring and the metrics delta to a JSONL file.

pub mod clock;
pub mod expo;
pub mod frame;
pub mod metrics;
pub mod recorder;
pub mod snapshot;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use recorder::{FlightConfig, FlightRecorder};
pub use snapshot::{HealthSummary, MetricsSnapshot};
pub use trace::{RingSink, SpanOutcome, SpanRecord, TraceCell, TraceCtx, TraceSink};
