//! A tiny parser for the Prometheus-style text exposition produced by
//! [`crate::metrics::Registry::render`] (and `telemetry::render()` in the
//! naming core). Tests and the CI smoke job use it to assert the
//! exposition is non-empty and well-formed instead of string-grepping.

/// Append one sample line (`name{labels} value`) to `out`, escaping label
/// values. For callers that assemble exposition text from sources other
/// than a [`crate::metrics::Registry`] (e.g. the naming core's telemetry
/// snapshot).
pub fn write_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&crate::metrics::escape(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format!("{value}"));
    out.push('\n');
}

/// One parsed sample line: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(s: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_metric_name(&key) {
            return Err(format!("line {line_no}: bad label name {key:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {line_no}: label value must be quoted"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err(format!("line {line_no}: dangling escape")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start_matches(',');
    }
    Ok(labels)
}

/// Parse exposition text into samples. Comment lines (`# TYPE`, `# HELP`)
/// are validated for shape and skipped; blank lines are skipped; anything
/// else must be a well-formed sample line or the whole parse fails.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            // HELP and free-form comments pass through unvalidated.
            if let Some("TYPE") = words.next() {
                let name = words
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without a name"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: bad metric name {name:?}"));
                }
                match words.next() {
                    Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                    other => return Err(format!("line {line_no}: bad TYPE kind {other:?}")),
                }
            }
            continue;
        }
        let (name_part, rest) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {line_no}: unclosed label block"))?;
                if close < brace {
                    return Err(format!("line {line_no}: mismatched braces"));
                }
                (
                    &line[..brace],
                    Some((&line[brace + 1..close], &line[close + 1..])),
                )
            }
            None => (line.split_whitespace().next().unwrap_or(""), None),
        };
        if !valid_metric_name(name_part) {
            return Err(format!("line {line_no}: bad metric name {name_part:?}"));
        }
        let (labels, value_part) = match rest {
            Some((labels_str, tail)) => (parse_labels(labels_str, line_no)?, tail.trim()),
            None => (Vec::new(), line[name_part.len()..].trim()),
        };
        if value_part.is_empty() {
            return Err(format!("line {line_no}: sample without a value"));
        }
        let value = match value_part {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .split_whitespace()
                .next()
                .unwrap_or("")
                .parse()
                .map_err(|_| format!("line {line_no}: bad value {v:?}"))?,
        };
        samples.push(Sample {
            name: name_part.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_samples_with_and_without_labels() {
        let text = "\
# TYPE rndi_ops_total counter
rndi_ops_total{provider=\"jini:h1\",op=\"lookup\"} 42
# HELP free-form text is ignored
rndi_up 1
rndi_latency_bucket{le=\"+Inf\"} 7
";
        let samples = parse(text).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "rndi_ops_total");
        assert_eq!(samples[0].label("provider"), Some("jini:h1"));
        assert_eq!(samples[0].value, 42.0);
        assert_eq!(samples[1].labels, vec![]);
        assert_eq!(samples[2].label("le"), Some("+Inf"));
    }

    #[test]
    fn unescapes_label_values() {
        let samples = parse("m{k=\"a\\\"b\\\\c\\nd\"} 1").unwrap();
        assert_eq!(samples[0].label("k"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "1bad_name 3",
            "name{unclosed=\"v\" 3",
            "name{k=unquoted} 3",
            "name",
            "name{k=\"v\"} notanumber",
            "# TYPE name nonsense",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn write_sample_roundtrips_through_parse() {
        let mut text = String::new();
        write_sample(
            &mut text,
            "rndi_x_total",
            &[("provider", "a\"b"), ("op", "lookup")],
            3.0,
        );
        write_sample(&mut text, "rndi_plain", &[], 0.5);
        let samples = parse(&text).unwrap();
        assert_eq!(samples[0].label("provider"), Some("a\"b"));
        assert_eq!(samples[0].value, 3.0);
        assert_eq!(
            samples[1],
            Sample {
                name: "rndi_plain".into(),
                labels: vec![],
                value: 0.5
            }
        );
    }

    #[test]
    fn empty_input_is_empty_not_error() {
        assert_eq!(parse("").unwrap(), vec![]);
        assert_eq!(parse("\n# HELP x\n").unwrap(), vec![]);
    }
}
