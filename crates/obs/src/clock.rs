//! A cheap monotonic nanosecond clock for hot-path span timing.
//!
//! `Instant::now()` goes through the vDSO (`clock_gettime`) — fine in
//! isolation, but an instrumented pipeline reads the clock twice per obs
//! layer, and those ~25ns reads add up to a measurable slice of the
//! telemetry budget. On x86_64 the TSC is invariant on any hardware this
//! runs on, so one `rdtsc` plus a multiply gives the same answer for a
//! third of the cost.
//!
//! The tick-to-nanosecond scale is calibrated once per process against
//! `Instant` over a short sleep; if the TSC looks unusable (no ticks
//! elapsed — emulators, exotic guests) the clock quietly falls back to
//! `Instant`. Readings are process-relative nanoseconds: only differences
//! are meaningful, which is all span timing needs.

use std::sync::OnceLock;
use std::time::Instant;

struct Calib {
    base: Instant,
    tsc0: u64,
    /// Nanoseconds per TSC tick; `0.0` means "use `Instant`".
    ns_per_tick: f64,
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn rdtsc() -> u64 {
    // SAFETY: RDTSC has no preconditions; it is unsafe only because all
    // arch intrinsics are.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn rdtsc() -> u64 {
    0
}

fn calib() -> &'static Calib {
    static CALIB: OnceLock<Calib> = OnceLock::new();
    CALIB.get_or_init(|| {
        let base = Instant::now();
        let tsc0 = rdtsc();
        let ns_per_tick = if cfg!(target_arch = "x86_64") {
            std::thread::sleep(std::time::Duration::from_millis(5));
            let dt = base.elapsed().as_nanos() as f64;
            let dtsc = rdtsc().wrapping_sub(tsc0);
            if dtsc == 0 {
                0.0
            } else {
                dt / dtsc as f64
            }
        } else {
            0.0
        };
        Calib {
            base,
            tsc0,
            ns_per_tick,
        }
    })
}

/// Warm the calibration (one ~5ms sleep, once per process) so the first
/// instrumented op doesn't pay for it. Called from pipeline assembly.
pub fn init() {
    calib();
}

/// Process-relative monotonic nanoseconds. Subtract two readings for a
/// duration; the absolute value means nothing outside this process.
#[inline]
pub fn now_ns() -> u64 {
    let c = calib();
    if c.ns_per_tick > 0.0 {
        (rdtsc().wrapping_sub(c.tsc0) as f64 * c.ns_per_tick) as u64
    } else {
        c.base.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_wall_time_within_tolerance() {
        let w0 = Instant::now();
        let c0 = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let wall = w0.elapsed().as_nanos() as f64;
        let clock = (now_ns() - c0) as f64;
        let ratio = clock / wall;
        assert!(
            (0.9..1.1).contains(&ratio),
            "clock drift vs Instant: ratio {ratio}"
        );
    }

    #[test]
    fn is_monotonic_across_reads() {
        let mut last = now_ns();
        for _ in 0..10_000 {
            let next = now_ns();
            assert!(next >= last, "clock went backwards: {last} -> {next}");
            last = next;
        }
    }
}
