//! Counters, gauges, log2-bucket latency histograms, and the process-wide
//! registry that renders them as Prometheus-style text.
//!
//! Instruments are cheap handles over atomics: look one up once
//! (`counter("rndi_ops_total", &[("provider", p)])`), keep the `Arc`, and
//! bump it lock-free on the hot path. The registry lock is only taken on
//! first registration and at render/reset time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::Mutex;

/// Number of histogram buckets. Bucket `i` counts values `<= 2^i`
/// nanoseconds; the last bucket is the `+Inf` overflow. 2^38 ns ≈ 275 s,
/// far beyond any naming op.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Default cap on distinct `(name, label set)` series per registry
/// (`rndi.obs.max-series`). Past the cap, new label sets fold into an
/// `overflow="true"` series instead of growing the registry unboundedly
/// under per-client labels.
pub const DEFAULT_MAX_SERIES: usize = 4096;

/// Canonical metric names shared across the workspace, so the core
/// pipeline, providers, servers, and benches all feed the same families.
pub mod names {
    /// Histogram, ns: `{provider, op, layer}`.
    pub const OP_DURATION: &str = "rndi_op_duration_ns";
    /// Counter: `{provider, op, layer, outcome}`.
    pub const OPS_TOTAL: &str = "rndi_ops_total";
    /// Counter: `{provider, event}` with `event` one of
    /// `hit|miss|invalidation|eviction`.
    pub const CACHE_EVENTS: &str = "rndi_cache_events_total";
    /// Counter: `{provider}` — retry re-submissions (attempts beyond the
    /// first).
    pub const RETRIES: &str = "rndi_retries_total";
    /// Counter: `{provider, event}` with `event` one of
    /// `grant|renew|expire|cancel`.
    pub const LEASE_EVENTS: &str = "rndi_lease_events_total";
    /// Counter: `{provider, event}` — distributed mutex events
    /// (`acquire|wait|release`).
    pub const MUTEX_EVENTS: &str = "rndi_mutex_events_total";
    /// Counter: `{provider, path}` with `path` one of `index|scan` — how a
    /// read was satisfied, so the fallback-to-scan rate is visible.
    pub const INDEX_READS: &str = "rndi_index_reads_total";
    /// Histogram: mounts fanned out per federated search.
    pub const FED_FANOUT: &str = "rndi_federation_fanout_width";
    /// Histogram: federation recursion depth per federated search.
    pub const FED_DEPTH: &str = "rndi_federation_depth";
    /// Counter: `{server, op}` — ops observed server-side.
    pub const SERVER_OPS: &str = "rndi_server_ops_total";
    /// Histogram, ns: `{server, op}` — server-side service time.
    pub const SERVER_DURATION: &str = "rndi_server_duration_ns";
    /// Counter: `{provider, dir}` with `dir` one of `read|write` — bytes
    /// moved through a storage-backed provider.
    pub const IO_BYTES: &str = "rndi_io_bytes_total";
    /// Counter: `{server, dir}` with `dir` one of `in|out` — payload bytes
    /// moved across the TCP transport, server side.
    pub const NET_BYTES: &str = "rndi_net_bytes_total";
    /// Counter: `{server}` — connections accepted over the server's life.
    pub const NET_CONNS: &str = "rndi_net_connections_total";
    /// Gauge: `{server}` — connections currently being served.
    pub const NET_ACTIVE_CONNS: &str = "rndi_net_active_connections";
    /// Counter: `{server, op, outcome}` — requests decoded and dispatched
    /// by a `NetServer` (`outcome` is `ok|err`).
    pub const NET_REQUESTS: &str = "rndi_net_requests_total";
    /// Histogram, ns: `{server, op}` — server-side request service time,
    /// decode through encode.
    pub const NET_REQUEST_DURATION: &str = "rndi_net_request_duration_ns";
    /// Counter: `{endpoint, event}` with `event` one of
    /// `dial|redial|reuse|drop|health_ok|health_fail` — client-side
    /// connection-pool activity.
    pub const NET_CLIENT_EVENTS: &str = "rndi_net_client_events_total";
    /// Counter: `{key}` — environment properties whose value failed to
    /// parse and fell back to a default (config hygiene warning).
    pub const CONFIG_PARSE_ERRORS: &str = "rndi_config_parse_errors_total";
    /// Gauge: `{endpoint}` — connections currently pooled by a
    /// `NetClient` for one endpoint.
    pub const NET_POOL_SIZE: &str = "rndi_net_pool_size";
    /// Counter: `{endpoint, reason}` with `reason` one of `idle|cap` —
    /// pooled client connections closed by pool hygiene.
    pub const NET_POOL_EVICTIONS: &str = "rndi_net_pool_evictions_total";
    /// Gauge: `{server, shard}` — calls waiting in one event-loop shard's
    /// admission queue.
    pub const NET_QUEUE_DEPTH: &str = "rndi_net_queue_depth";
    /// Counter: `{server, reason}` with `reason` one of
    /// `queue|rate|deadline` — calls shed with `Overloaded` before
    /// dispatch by the server's admission control.
    pub const NET_SHED: &str = "rndi_net_shed_total";
    /// Gauge: `{server, shard}` — the AIMD controller's current effective
    /// admission-queue bound for one shard (equals the configured
    /// queue-depth when the adaptive controller is off).
    pub const NET_CONCURRENCY_LIMIT: &str = "rndi_net_concurrency_limit";
    /// Counter: `{router, reason}` — scatter ops that returned a flagged
    /// partial result because one or more legs were shed (`overloaded`).
    pub const SHARD_PARTIAL: &str = "rndi_shard_partial_total";
    /// Counter: `{router, shard, mode}` with `mode` one of
    /// `point|scatter` — ops a shard router sent to each shard.
    pub const SHARD_ROUTED: &str = "rndi_shard_routed_total";
    /// Histogram: `{router}` — shards touched per scatter op.
    pub const SHARD_FANOUT: &str = "rndi_shard_fanout_width";
    /// Histogram: `{router}` — scatter imbalance per op, as
    /// `100 × max(per-shard hits) / mean(per-shard hits)` (100 = perfectly
    /// even; only recorded for scatter ops that returned hits).
    pub const SHARD_IMBALANCE: &str = "rndi_shard_scatter_imbalance";
    /// Counter (no labels): label sets folded into an `overflow="true"`
    /// series because the registry hit its series cap.
    pub const SERIES_OVERFLOW: &str = "rndi_obs_series_overflow_total";
    /// Counter (no labels): spans evicted from the trace ring buffer
    /// before anyone read them — a nonzero value means ring dumps are
    /// partial.
    pub const TRACE_DROPPED: &str = "rndi_obs_trace_dropped_total";
    /// Gauge (per instance): members this node believes Alive.
    pub const CLUSTER_MEMBERS: &str = "rndi_cluster_members";
    /// Gauge (per instance): members currently under phi suspicion.
    pub const CLUSTER_SUSPECTS: &str = "rndi_cluster_suspects";
    /// Gauge (per instance): sequence number of the installed view.
    pub const CLUSTER_VIEW_EPOCH: &str = "rndi_cluster_view_epoch";
    /// Counter (per instance): membership gossip rounds initiated.
    pub const CLUSTER_GOSSIP_ROUNDS: &str = "rndi_cluster_gossip_rounds_total";
    /// Gauge (per instance, label `peer`): phi score ×1000 for one peer,
    /// as scored by the accrual failure detector.
    pub const CLUSTER_PHI: &str = "rndi_cluster_phi_millis";
}

/// A monotonically increasing counter.
#[derive(Default)]
// Instruments are tiny allocations updated from hot paths; without the
// alignment, two threads' counters (say the client's and the server's
// per-op totals) can land on one cache line and ping-pong it on every
// operation. 128 bytes covers the adjacent-line spatial prefetcher.
#[repr(align(128))]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Default)]
#[repr(align(128))]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket latency histogram with power-of-two bucket bounds.
///
/// Recording is two relaxed atomic adds plus one for the bucket — no lock,
/// no allocation — so it can sit on the per-op hot path. Quantiles are
/// estimated by linear interpolation inside the winning bucket, giving
/// sub-bucket resolution that is plenty for p50/p95/p99 reporting.
#[repr(align(128))]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// ceil(log2(value)): the smallest `i` with `value <= 2^i`, clamped
    /// into the bucket range. Public so off-registry accumulators (the
    /// flight recorder, snapshot merges) bucket identically.
    pub fn bucket_index(value: u64) -> usize {
        let i = if value <= 1 {
            0
        } else {
            (64 - (value - 1).leading_zeros()) as usize
        };
        i.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Upper bound of bucket `i` (the last bucket reports `+Inf`).
    pub fn bucket_bound(i: usize) -> Option<u64> {
        (i + 1 < HISTOGRAM_BUCKETS).then(|| 1u64 << i)
    }

    /// Record one observation (nanoseconds by convention).
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Per-bucket counts (diagnostics and exposition).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) of recorded values.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_over(&self.bucket_counts(), self.sum(), q)
    }
}

/// Quantile estimate over raw log2 bucket counts — the same interpolation
/// [`Histogram::quantile`] uses, shared with merged snapshot histograms.
pub fn quantile_over(counts: &[u64], sum: u64, q: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
    let mut cum = 0u64;
    for (i, &n) in counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if (cum + n) as f64 >= target {
            let lower = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
            let upper = match Histogram::bucket_bound(i) {
                Some(b) => b,
                None => lower.saturating_mul(2),
            };
            let frac = (target - cum as f64) / n as f64;
            return Some(lower as f64 + frac * (upper - lower) as f64);
        }
        cum += n;
    }
    Some(sum as f64 / total as f64)
}

// ----------------------------------------------------------- registry --

/// Canonical label set: sorted key/value pairs.
pub type Labels = Vec<(String, String)>;

fn canonical(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

pub(crate) fn escape(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

pub(crate) fn label_block(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

pub(crate) fn label_block_with(labels: &Labels, extra_key: &str, extra_value: &str) -> String {
    let mut all = labels.clone();
    all.push((extra_key.to_string(), extra_value.to_string()));
    all.sort();
    label_block(&all)
}

#[derive(Default)]
struct Family<T> {
    /// label-block string → instrument, per metric name (BTreeMap for a
    /// deterministic render order).
    by_name: BTreeMap<String, BTreeMap<String, (Labels, Arc<T>)>>,
}

impl<T: Default> Family<T> {
    fn lookup(&self, name: &str, key: &str) -> Option<Arc<T>> {
        self.by_name
            .get(name)
            .and_then(|f| f.get(key))
            .map(|(_, inst)| inst.clone())
    }

    fn insert(&mut self, name: &str, labels: Labels, key: String) -> Arc<T> {
        let inst = Arc::new(T::default());
        self.by_name
            .entry(name.to_string())
            .or_default()
            .insert(key, (labels, inst.clone()));
        inst
    }

    /// Lookup-or-insert under the series cap. On a would-be insert past
    /// the cap, the labels fold into `overflow="true"` and the second
    /// return is `true`. Overflow series themselves bypass the cap (they
    /// are bounded by the number of metric names).
    fn get_capped(
        &mut self,
        series: &AtomicUsize,
        max: usize,
        name: &str,
        labels: &[(&str, &str)],
    ) -> (Arc<T>, bool) {
        let labels = canonical(labels);
        let key = label_block(&labels);
        if let Some(found) = self.lookup(name, &key) {
            return (found, false);
        }
        let folds =
            series.load(Ordering::Relaxed) >= max && !labels.iter().any(|(k, _)| k == "overflow");
        if folds {
            let fold_labels = canonical(&[("overflow", "true")]);
            let fold_key = label_block(&fold_labels);
            if let Some(found) = self.lookup(name, &fold_key) {
                return (found, true);
            }
            series.fetch_add(1, Ordering::Relaxed);
            return (self.insert(name, fold_labels, fold_key), true);
        }
        series.fetch_add(1, Ordering::Relaxed);
        (self.insert(name, labels, key), false)
    }
}

/// A set of named, labeled instruments. Most code uses the process-wide
/// [`global_registry`] through the free functions below; tests and
/// per-shard servers can build private registries.
pub struct Registry {
    counters: Mutex<Family<Counter>>,
    gauges: Mutex<Family<Gauge>>,
    histograms: Mutex<Family<Histogram>>,
    /// Distinct (name, label set) series across all three families.
    series: AtomicUsize,
    max_series: AtomicUsize,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            counters: Mutex::default(),
            gauges: Mutex::default(),
            histograms: Mutex::default(),
            series: AtomicUsize::new(0),
            max_series: AtomicUsize::new(DEFAULT_MAX_SERIES),
        }
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Change the series cap (`rndi.obs.max-series`); `0` means unlimited.
    pub fn set_max_series(&self, max: usize) {
        let max = if max == 0 { usize::MAX } else { max };
        self.max_series.store(max, Ordering::Relaxed);
    }

    /// Number of distinct series currently registered.
    pub fn series_count(&self) -> usize {
        self.series.load(Ordering::Relaxed)
    }

    fn max(&self) -> usize {
        self.max_series.load(Ordering::Relaxed)
    }

    /// Bump [`names::SERIES_OVERFLOW`], bypassing the cap. Called after
    /// the originating family lock is released — never nested.
    fn note_overflow(&self) {
        let handle = {
            let mut fam = self.counters.lock();
            let key = label_block(&Vec::new());
            match fam.lookup(names::SERIES_OVERFLOW, &key) {
                Some(c) => c,
                None => {
                    self.series.fetch_add(1, Ordering::Relaxed);
                    fam.insert(names::SERIES_OVERFLOW, Vec::new(), key)
                }
            }
        };
        handle.inc();
    }

    /// The counter `name{labels}`, created on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let (c, folded) = self
            .counters
            .lock()
            .get_capped(&self.series, self.max(), name, labels);
        if folded {
            self.note_overflow();
        }
        c
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let (g, folded) = self
            .gauges
            .lock()
            .get_capped(&self.series, self.max(), name, labels);
        if folded {
            self.note_overflow();
        }
        g
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let (h, folded) = self
            .histograms
            .lock()
            .get_capped(&self.series, self.max(), name, labels);
        if folded {
            self.note_overflow();
        }
        h
    }

    /// Sum of a counter family across all label sets (tests, reports).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .by_name
            .get(name)
            .map(|f| f.values().map(|(_, c)| c.get()).sum())
            .unwrap_or(0)
    }

    /// Drop every registered instrument (test isolation). Handles already
    /// held elsewhere keep counting into detached instruments.
    pub fn reset(&self) {
        self.counters.lock().by_name.clear();
        self.gauges.lock().by_name.clear();
        self.histograms.lock().by_name.clear();
        self.series.store(0, Ordering::Relaxed);
    }

    /// A point-in-time, serializable copy of every instrument — the
    /// payload of the remote-scrape admin call (see [`crate::snapshot`]).
    pub fn snapshot(&self) -> crate::snapshot::MetricsSnapshot {
        let mut snap = crate::snapshot::MetricsSnapshot::default();
        for (name, family) in &self.counters.lock().by_name {
            for (labels, c) in family.values() {
                snap.counters.push(crate::snapshot::CounterSeries {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: c.get(),
                });
            }
        }
        for (name, family) in &self.gauges.lock().by_name {
            for (labels, g) in family.values() {
                snap.gauges.push(crate::snapshot::GaugeSeries {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: g.get(),
                });
            }
        }
        for (name, family) in &self.histograms.lock().by_name {
            for (labels, h) in family.values() {
                snap.histograms.push(crate::snapshot::HistogramSeries {
                    name: name.clone(),
                    labels: labels.clone(),
                    buckets: h.bucket_counts().to_vec(),
                    sum: h.sum(),
                    count: h.count(),
                });
            }
        }
        snap
    }

    /// Render every instrument as Prometheus-style text exposition lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.counters.lock().by_name {
            out.push_str(&format!("# TYPE {name} counter\n"));
            for (labels, counter) in family.values() {
                out.push_str(&format!(
                    "{name}{} {}\n",
                    label_block(labels),
                    counter.get()
                ));
            }
        }
        for (name, family) in &self.gauges.lock().by_name {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            for (labels, gauge) in family.values() {
                out.push_str(&format!("{name}{} {}\n", label_block(labels), gauge.get()));
            }
        }
        for (name, family) in &self.histograms.lock().by_name {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (labels, histogram) in family.values() {
                let counts = histogram.bucket_counts();
                let mut cum = 0u64;
                for (i, n) in counts.iter().enumerate() {
                    cum += n;
                    // Omit empty leading/inner buckets to keep the text
                    // readable; cumulative counts stay correct because
                    // every non-empty bucket and +Inf are printed.
                    if *n == 0 && i + 1 != HISTOGRAM_BUCKETS {
                        continue;
                    }
                    let le = match Histogram::bucket_bound(i) {
                        Some(b) => b.to_string(),
                        None => "+Inf".to_string(),
                    };
                    out.push_str(&format!(
                        "{name}_bucket{} {cum}\n",
                        label_block_with(labels, "le", &le)
                    ));
                }
                let block = label_block(labels);
                out.push_str(&format!("{name}_sum{block} {}\n", histogram.sum()));
                out.push_str(&format!("{name}_count{block} {}\n", histogram.count()));
            }
        }
        out
    }
}

fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// A shared handle on the process-wide registry — what servers embed by
/// default so one-process deployments scrape the whole picture.
pub fn global_registry() -> Arc<Registry> {
    global().clone()
}

/// The process-wide counter `name{labels}`.
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    global().counter(name, labels)
}

/// The process-wide gauge `name{labels}`.
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    global().gauge(name, labels)
}

/// The process-wide histogram `name{labels}`.
pub fn histogram(name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    global().histogram(name, labels)
}

/// Sum one process-wide counter family across label sets.
pub fn counter_total(name: &str) -> u64 {
    global().counter_total(name)
}

/// Render the process-wide registry as exposition text.
pub fn render() -> String {
    global().render()
}

/// Snapshot the process-wide registry (see [`Registry::snapshot`]).
pub fn snapshot() -> crate::snapshot::MetricsSnapshot {
    global().snapshot()
}

/// Cap the process-wide registry's series cardinality
/// (`rndi.obs.max-series`); `0` means unlimited.
pub fn set_max_series(max: usize) {
    global().set_max_series(max)
}

/// Clear the process-wide registry (test isolation).
pub fn reset() {
    global().reset()
}

/// Every histogram of one process-wide family, as
/// `(labels, histogram)` pairs — reports iterate these for per-provider
/// latency rows.
pub fn histogram_family(name: &str) -> Vec<(Labels, Arc<Histogram>)> {
    global()
        .histograms
        .lock()
        .by_name
        .get(name)
        .map(|f| f.values().cloned().collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("ops_total", &[("provider", "p1")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Same (name, labels) → same instrument; label order is canonical.
        let again = r.counter("ops_total", &[("provider", "p1")]);
        again.inc();
        assert_eq!(c.get(), 4);
        assert_eq!(r.counter_total("ops_total"), 4);

        let g = r.gauge("queue_depth", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);

        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile(0.5).unwrap();
        assert!((300.0..700.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > p50 && p99 <= 1024.0, "p99 {p99}");
        assert!(h.quantile(1.0).unwrap() <= 1024.0);
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn quantile_monotone_in_q() {
        let h = Histogram::new();
        for v in [10u64, 100, 1_000, 10_000, 100_000] {
            for _ in 0..20 {
                h.record(v);
            }
        }
        let mut last = 0.0;
        for q in [0.1, 0.5, 0.9, 0.99] {
            let v = h.quantile(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn series_cap_folds_into_overflow() {
        let r = Registry::new();
        r.set_max_series(3);
        let a = r.counter("capped_total", &[("client", "c0")]);
        r.counter("capped_total", &[("client", "c1")]).inc();
        r.gauge("depth", &[]).set(1);
        assert_eq!(r.series_count(), 3);

        // Past the cap: new label sets fold into one overflow series;
        // existing series keep resolving to their own instruments.
        let folded1 = r.counter("capped_total", &[("client", "c2")]);
        let folded2 = r.counter("capped_total", &[("client", "c3")]);
        assert!(Arc::ptr_eq(&folded1, &folded2), "fold shares one series");
        folded1.inc();
        folded2.inc();
        a.inc();
        assert!(Arc::ptr_eq(
            &a,
            &r.counter("capped_total", &[("client", "c0")])
        ));

        let text = r.render();
        assert!(text.contains("capped_total{overflow=\"true\"} 2"), "{text}");
        assert!(text.contains("rndi_obs_series_overflow_total 2"), "{text}");

        // Gauges and histograms fold too (and the cross-family overflow
        // bump must not deadlock).
        let h1 = r.histogram("lat_ns", &[("client", "c8")]);
        let h2 = r.histogram("lat_ns", &[("client", "c9")]);
        assert!(Arc::ptr_eq(&h1, &h2));
        assert_eq!(r.counter_total(names::SERIES_OVERFLOW), 4);
    }

    #[test]
    fn render_is_parseable_and_labeled() {
        let r = Registry::new();
        r.counter("rndi_ops_total", &[("provider", "a\"b")]).inc();
        r.gauge("rndi_up", &[]).set(1);
        let h = r.histogram("rndi_latency_ns", &[("op", "lookup")]);
        h.record(3);
        h.record(900);
        let text = r.render();
        assert!(text.contains("# TYPE rndi_ops_total counter"));
        assert!(text.contains("rndi_ops_total{provider=\"a\\\"b\"} 1"));
        assert!(text.contains("# TYPE rndi_latency_ns histogram"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("rndi_latency_ns_count{op=\"lookup\"} 2"));
        let samples = crate::expo::parse(&text).expect("own render parses");
        assert!(samples.len() >= 5);
        // +Inf cumulative count equals _count.
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "rndi_latency_ns_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .unwrap();
        assert_eq!(inf.value, 2.0);
        r.reset();
        assert_eq!(r.render(), "");
    }
}
