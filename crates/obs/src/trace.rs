//! Trace contexts, span records, and span sinks.
//!
//! A trace is a tree of spans sharing one `trace_id`. The root span is
//! minted wherever an operation first enters instrumented code (pipeline
//! entry, federation driver); every layer below derives a child via
//! [`TraceCtx::child`], so parent links reconstruct the tree even when
//! spans arrive out of order from worker threads or remote servers.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};
use serde::Serialize;

/// Default capacity of the process-wide span ring buffer.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

// ----------------------------------------------------------- identity --

/// splitmix64: cheap, well-distributed id stream from a counter.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn next_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed)
    });
    // Never 0: a zero parent id means "no parent".
    mix(seed ^ COUNTER.fetch_add(1, Ordering::Relaxed)) | 1
}

/// The propagated trace context: where in which trace the current
/// operation is executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    pub trace_id: u64,
    pub span_id: u64,
    /// `0` when this is the root span of its trace.
    pub parent_span: u64,
    /// Hop count from the root (federation depth, layer nesting).
    pub depth: u32,
}

impl TraceCtx {
    /// Mint a fresh root context (new trace).
    pub fn root() -> Self {
        TraceCtx {
            trace_id: next_id(),
            span_id: next_id(),
            parent_span: 0,
            depth: 0,
        }
    }

    /// A child context within the same trace.
    pub fn child(&self) -> Self {
        TraceCtx {
            trace_id: self.trace_id,
            span_id: next_id(),
            parent_span: self.span_id,
            depth: self.depth + 1,
        }
    }

    /// Compact ASCII encoding used in op metadata and wire frames:
    /// `trace-span-parent-depth`, hex fields.
    pub fn encode(&self) -> String {
        format!(
            "{:x}-{:x}-{:x}-{:x}",
            self.trace_id, self.span_id, self.parent_span, self.depth
        )
    }

    /// Inverse of [`TraceCtx::encode`]; `None` on any malformed input.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('-');
        let trace_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let span_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let parent_span = u64::from_str_radix(parts.next()?, 16).ok()?;
        let depth = u32::from_str_radix(parts.next()?, 16).ok()?;
        if parts.next().is_some() || trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceCtx {
            trace_id,
            span_id,
            parent_span,
            depth,
        })
    }
}

impl fmt::Display for TraceCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

// -------------------------------------------------------------- spans --

/// How a span's operation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanOutcome {
    Ok,
    Err,
    /// A federation continuation — control flow, not a failure.
    Continue,
}

impl Serialize for SpanOutcome {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.label().to_string())
    }
}

impl SpanOutcome {
    pub fn label(self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::Err => "err",
            SpanOutcome::Continue => "continue",
        }
    }
}

/// One finished span.
#[derive(Clone, Debug, Serialize)]
pub struct SpanRecord {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_span: u64,
    pub depth: u32,
    /// Which layer produced the span ("pipeline", "backend", "federation",
    /// "server", "client").
    pub layer: String,
    /// Provider / server instance label.
    pub provider: String,
    /// Operation kind label ("lookup", "search", …).
    pub op: String,
    pub outcome: SpanOutcome,
    pub duration_ns: u64,
}

impl SpanRecord {
    /// Build a record from the context the span executed under.
    pub fn new(
        ctx: &TraceCtx,
        layer: impl Into<String>,
        provider: impl Into<String>,
        op: impl Into<String>,
        outcome: SpanOutcome,
        duration: std::time::Duration,
    ) -> Self {
        SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span: ctx.parent_span,
            depth: ctx.depth,
            layer: layer.into(),
            provider: provider.into(),
            op: op.into(),
            outcome,
            duration_ns: duration.as_nanos().min(u64::MAX as u128) as u64,
        }
    }
}

// -------------------------------------------------------------- sinks --

/// Receives finished spans. Implementations must tolerate concurrent
/// callers and must never panic (sinks run inside every pipeline op).
pub trait TraceSink: Send + Sync {
    fn record(&self, span: &SpanRecord);
}

/// Bounded in-memory ring buffer: the default sink, always installed.
/// When full, the oldest span is dropped.
pub struct RingSink {
    capacity: AtomicU64,
    spans: Mutex<VecDeque<SpanRecord>>,
}

impl RingSink {
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: AtomicU64::new(capacity.max(1) as u64),
            spans: Mutex::new(VecDeque::new()),
        }
    }

    pub fn set_capacity(&self, capacity: usize) {
        self.capacity
            .store(capacity.max(1) as u64, Ordering::Relaxed);
        let cap = capacity.max(1);
        let mut spans = self.spans.lock();
        while spans.len() > cap {
            spans.pop_front();
        }
    }

    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.spans.lock().clear();
    }

    /// All buffered spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.spans.lock().iter().cloned().collect()
    }

    /// Every buffered span of one trace, oldest first.
    pub fn trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.spans
            .lock()
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// The `n` slowest root spans (no parent), slowest first — the entry
    /// point for "top-N slowest traces" reports.
    pub fn slowest_roots(&self, n: usize) -> Vec<SpanRecord> {
        let mut roots: Vec<SpanRecord> = self
            .spans
            .lock()
            .iter()
            .filter(|s| s.parent_span == 0)
            .cloned()
            .collect();
        roots.sort_by_key(|s| std::cmp::Reverse(s.duration_ns));
        roots.truncate(n);
        roots
    }
}

impl TraceSink for RingSink {
    fn record(&self, span: &SpanRecord) {
        let cap = self.capacity.load(Ordering::Relaxed) as usize;
        let mut spans = self.spans.lock();
        while spans.len() >= cap {
            spans.pop_front();
        }
        spans.push_back(span.clone());
    }
}

/// Appends one JSON object per span to a file (the `rndi.obs.trace-file`
/// knob). Write errors are swallowed — tracing must never fail an op.
pub struct JsonlSink {
    file: Mutex<std::fs::File>,
}

impl JsonlSink {
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlSink {
            file: Mutex::new(file),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, span: &SpanRecord) {
        if let Ok(line) = serde_json::to_string(span) {
            let mut file = self.file.lock();
            let _ = writeln!(file, "{line}");
        }
    }
}

// ------------------------------------------------------ global wiring --

struct Sinks {
    extra: Vec<Arc<dyn TraceSink>>,
    /// Paths already backed by a JSONL sink (idempotent installs).
    jsonl_paths: Vec<String>,
}

fn sinks() -> &'static RwLock<Sinks> {
    static SINKS: OnceLock<RwLock<Sinks>> = OnceLock::new();
    SINKS.get_or_init(|| {
        RwLock::new(Sinks {
            extra: Vec::new(),
            jsonl_paths: Vec::new(),
        })
    })
}

/// The always-installed process-wide ring buffer.
pub fn ring() -> &'static RingSink {
    static RING: OnceLock<RingSink> = OnceLock::new();
    RING.get_or_init(|| RingSink::new(DEFAULT_RING_CAPACITY))
}

/// Fan one finished span out to the ring and every installed sink.
pub fn record(span: SpanRecord) {
    ring().record(&span);
    for sink in sinks().read().extra.iter() {
        sink.record(&span);
    }
}

/// Install an additional sink alongside the ring buffer.
pub fn install_sink(sink: Arc<dyn TraceSink>) {
    sinks().write().extra.push(sink);
}

/// Install a JSONL file sink for `path`, once per path per process.
/// Returns `false` (without error) when the file cannot be opened.
pub fn install_jsonl(path: &str) -> bool {
    {
        let guard = sinks().read();
        if guard.jsonl_paths.iter().any(|p| p == path) {
            return true;
        }
    }
    let mut guard = sinks().write();
    if guard.jsonl_paths.iter().any(|p| p == path) {
        return true;
    }
    match JsonlSink::create(path) {
        Ok(sink) => {
            guard.extra.push(Arc::new(sink));
            guard.jsonl_paths.push(path.to_string());
            true
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ctx_encode_parse_roundtrip() {
        let root = TraceCtx::root();
        assert_eq!(TraceCtx::parse(&root.encode()), Some(root));
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span, root.span_id);
        assert_eq!(child.depth, 1);
        assert_ne!(child.span_id, root.span_id);
        assert_eq!(TraceCtx::parse(&child.encode()), Some(child));
    }

    #[test]
    fn ctx_parse_rejects_malformed() {
        for bad in [
            "",
            "xyz",
            "1-2",
            "1-2-3-4-5",
            "0-1-0-0",
            "1-0-0-0",
            "g-1-0-0",
        ] {
            assert_eq!(TraceCtx::parse(bad), None, "input {bad:?}");
        }
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    fn span(trace: &TraceCtx, ns: u64) -> SpanRecord {
        SpanRecord::new(
            trace,
            "pipeline",
            "p",
            "lookup",
            SpanOutcome::Ok,
            Duration::from_nanos(ns),
        )
    }

    #[test]
    fn ring_bounds_and_queries() {
        let ring = RingSink::new(3);
        let a = TraceCtx::root();
        let b = TraceCtx::root();
        ring.record(&span(&a, 5));
        ring.record(&span(&b, 10));
        ring.record(&span(&a.child(), 1));
        ring.record(&span(&b, 20));
        assert_eq!(ring.len(), 3, "oldest span evicted at capacity");
        assert_eq!(ring.trace(b.trace_id).len(), 2);
        let slow = ring.slowest_roots(10);
        assert!(slow.iter().all(|s| s.parent_span == 0));
        assert_eq!(slow.first().map(|s| s.duration_ns), Some(20));
        ring.set_capacity(1);
        assert_eq!(ring.len(), 1);
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!("obs-test-{}.jsonl", next_id()));
        let sink = JsonlSink::create(path.to_str().unwrap()).unwrap();
        sink.record(&span(&TraceCtx::root(), 7));
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(v.get("duration_ns").and_then(|n| n.as_u64()), Some(7));
        assert_eq!(v.get("outcome").and_then(|o| o.as_str()), Some("ok"));
        let _ = std::fs::remove_file(&path);
    }
}
