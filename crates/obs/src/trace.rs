//! Trace contexts, span records, and span sinks.
//!
//! A trace is a tree of spans sharing one `trace_id`. The root span is
//! minted wherever an operation first enters instrumented code (pipeline
//! entry, federation driver); every layer below derives a child via
//! [`TraceCtx::child`], so parent links reconstruct the tree even when
//! spans arrive out of order from worker threads or remote servers.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::metrics::{self, names, Counter};

/// Default capacity of the process-wide span ring buffer.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

// ----------------------------------------------------------- identity --

/// splitmix64: cheap, well-distributed id stream from a counter.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn next_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    // Threads draw counter blocks, not single values: span ids are minted
    // on both sides of every wire op, and a shared fetch_add per id would
    // bounce the counter line between client and server cores.
    const BLOCK: u64 = 1024;
    thread_local! {
        static LOCAL: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
    }
    let seed = *SEED.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed)
    });
    let n = LOCAL.with(|cell| {
        let (next, end) = cell.get();
        if next == end {
            let base = COUNTER.fetch_add(BLOCK, Ordering::Relaxed);
            cell.set((base + 1, base + BLOCK));
            base
        } else {
            cell.set((next + 1, end));
            next
        }
    });
    // Never 0: a zero parent id means "no parent".
    mix(seed ^ n) | 1
}

/// The propagated trace context: where in which trace the current
/// operation is executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    pub trace_id: u64,
    pub span_id: u64,
    /// `0` when this is the root span of its trace.
    pub parent_span: u64,
    /// Hop count from the root (federation depth, layer nesting).
    pub depth: u32,
}

impl TraceCtx {
    /// Mint a fresh root context (new trace).
    pub fn root() -> Self {
        TraceCtx {
            trace_id: next_id(),
            span_id: next_id(),
            parent_span: 0,
            depth: 0,
        }
    }

    /// A child context within the same trace.
    pub fn child(&self) -> Self {
        TraceCtx {
            trace_id: self.trace_id,
            span_id: next_id(),
            parent_span: self.span_id,
            depth: self.depth + 1,
        }
    }

    /// Compact ASCII encoding used in op metadata and wire frames:
    /// `trace-span-parent-depth`, hex fields.
    pub fn encode(&self) -> String {
        format!(
            "{:x}-{:x}-{:x}-{:x}",
            self.trace_id, self.span_id, self.parent_span, self.depth
        )
    }

    /// Inverse of [`TraceCtx::encode`]; `None` on any malformed input.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('-');
        let trace_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let span_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let parent_span = u64::from_str_radix(parts.next()?, 16).ok()?;
        let depth = u32::from_str_radix(parts.next()?, 16).ok()?;
        if parts.next().is_some() || trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceCtx {
            trace_id,
            span_id,
            parent_span,
            depth,
        })
    }
}

impl fmt::Display for TraceCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// An interior-mutable slot for a [`TraceCtx`] annotation.
///
/// Instrumented layers re-annotate the operation they pass down at every
/// hop; a cell of relaxed atomics lets a layer write the child context
/// through a shared reference — and restore the parent on exit — instead
/// of cloning the whole operation per layer. The four fields are *not*
/// written as one atomic unit: annotation flows down a single call chain,
/// and every concurrent scatter path (federation mounts, shard legs)
/// clones the op before re-annotating its own copy.
#[derive(Default)]
pub struct TraceCell {
    /// `0` = unannotated ([`TraceCtx`] ids are never zero).
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent_span: AtomicU64,
    depth: AtomicU64,
}

impl TraceCell {
    pub const fn empty() -> Self {
        TraceCell {
            trace_id: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            parent_span: AtomicU64::new(0),
            depth: AtomicU64::new(0),
        }
    }

    pub fn get(&self) -> Option<TraceCtx> {
        let trace_id = self.trace_id.load(Ordering::Relaxed);
        if trace_id == 0 {
            return None;
        }
        Some(TraceCtx {
            trace_id,
            span_id: self.span_id.load(Ordering::Relaxed),
            parent_span: self.parent_span.load(Ordering::Relaxed),
            depth: self.depth.load(Ordering::Relaxed) as u32,
        })
    }

    pub fn set(&self, ctx: &TraceCtx) {
        self.span_id.store(ctx.span_id, Ordering::Relaxed);
        self.parent_span.store(ctx.parent_span, Ordering::Relaxed);
        self.depth.store(ctx.depth as u64, Ordering::Relaxed);
        self.trace_id.store(ctx.trace_id, Ordering::Relaxed);
    }

    pub fn clear(&self) {
        self.trace_id.store(0, Ordering::Relaxed);
    }

    /// Put the cell back to a previously [`TraceCell::get`]-observed state.
    pub fn restore(&self, saved: Option<TraceCtx>) {
        match saved {
            Some(ctx) => self.set(&ctx),
            None => self.clear(),
        }
    }
}

impl Clone for TraceCell {
    fn clone(&self) -> Self {
        let cell = TraceCell::empty();
        if let Some(ctx) = self.get() {
            cell.set(&ctx);
        }
        cell
    }
}

impl From<Option<TraceCtx>> for TraceCell {
    fn from(ctx: Option<TraceCtx>) -> Self {
        let cell = TraceCell::empty();
        if let Some(ctx) = &ctx {
            cell.set(ctx);
        }
        cell
    }
}

impl fmt::Debug for TraceCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceCell({:?})", self.get())
    }
}

// -------------------------------------------------------------- spans --

/// How a span's operation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanOutcome {
    Ok,
    Err,
    /// A federation continuation — control flow, not a failure.
    Continue,
}

impl Serialize for SpanOutcome {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.label().to_string())
    }
}

impl Deserialize for SpanOutcome {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v.as_str() {
            Some("ok") => Ok(SpanOutcome::Ok),
            Some("err") => Ok(SpanOutcome::Err),
            Some("continue") => Ok(SpanOutcome::Continue),
            other => Err(serde::Error::custom(format!(
                "expected span outcome, got {other:?}"
            ))),
        }
    }
}

impl SpanOutcome {
    pub fn label(self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::Err => "err",
            SpanOutcome::Continue => "continue",
        }
    }
}

/// One finished span.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_span: u64,
    pub depth: u32,
    /// Which layer produced the span ("pipeline", "backend", "federation",
    /// "server", "client"). `Cow` because every producer passes a static
    /// label — span construction on the hot path must not allocate.
    pub layer: Cow<'static, str>,
    /// Provider / server instance label. `Arc` so producers that cache
    /// their label record it with a refcount bump, not a heap copy.
    pub provider: Arc<str>,
    /// Operation kind label ("lookup", "search", …); static, like `layer`.
    pub op: Cow<'static, str>,
    pub outcome: SpanOutcome,
    pub duration_ns: u64,
}

impl SpanRecord {
    /// Build a record from the context the span executed under.
    pub fn new(
        ctx: &TraceCtx,
        layer: impl Into<Cow<'static, str>>,
        provider: impl Into<Arc<str>>,
        op: impl Into<Cow<'static, str>>,
        outcome: SpanOutcome,
        duration: std::time::Duration,
    ) -> Self {
        SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span: ctx.parent_span,
            depth: ctx.depth,
            layer: layer.into(),
            provider: provider.into(),
            op: op.into(),
            outcome,
            duration_ns: duration.as_nanos().min(u64::MAX as u128) as u64,
        }
    }
}

// -------------------------------------------------------------- sinks --

/// Receives finished spans. Implementations must tolerate concurrent
/// callers and must never panic (sinks run inside every pipeline op).
pub trait TraceSink: Send + Sync {
    fn record(&self, span: &SpanRecord);
}

/// How many independently-locked segments a [`RingSink`] spreads its
/// spans over. Each producer thread sticks to one stripe, so client and
/// server threads recording into the process ring never contend on (or
/// bounce) a shared lock.
const RING_STRIPES: usize = 8;

/// Sequence numbers a stripe draws from the shared counter at a time.
/// One relaxed add per block instead of per push keeps the counter line
/// from bouncing between producer cores; the cost is that cross-stripe
/// ordering (and the eviction horizon) is only block-accurate.
const SEQ_BLOCK: u64 = 64;

/// One lock's worth of ring: a span queue (each span tagged with its
/// push sequence), this stripe's eviction count, and its unspent block
/// of sequence numbers. Everything lives inside the lock, so the
/// steady-state push touches no shared read-modify-write at all.
/// (Aligned so neighbouring stripes — each written by a different
/// producer thread — never share a cache line.)
#[repr(align(128))]
#[derive(Default)]
struct RingStripe {
    spans: VecDeque<(u64, SpanRecord)>,
    dropped: u64,
    seq_next: u64,
    seq_end: u64,
}

/// This thread's home stripe, assigned round-robin on first use.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HOME: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    HOME.with(|cell| {
        let mut i = cell.get();
        if i == usize::MAX {
            i = NEXT.fetch_add(1, Ordering::Relaxed) % RING_STRIPES;
            cell.set(i);
        }
        i
    })
}

/// Bounded in-memory ring buffer: the default sink, always installed.
/// The ring keeps (approximately) the newest `capacity` spans process-wide:
/// every push takes a global sequence number and each stripe evicts its
/// spans once they age more than `capacity` sequence steps — so the
/// surviving set matches the old single-queue FIFO, while the hot path
/// stays one uncontended stripe lock plus one relaxed counter bump.
/// Evictions are counted, both locally ([`RingSink::dropped`]) and in
/// `rndi_obs_trace_dropped_total`, so operators can tell a dump is
/// partial. (A stripe whose thread goes quiet holds its last spans until
/// a capacity change sweeps them, so the live total may transiently
/// exceed `capacity` — still bounded, by `capacity` per stripe.)
pub struct RingSink {
    capacity: AtomicU64,
    /// Global push-sequence allocator (stripes draw [`SEQ_BLOCK`]-sized
    /// runs from it); also the eviction clock.
    seq: AtomicU64,
    /// Live spans across all stripes. At steady state each push evicts
    /// exactly one span, so this is not touched on the hot path.
    len_total: AtomicU64,
    /// Drops already forwarded to the global counter (see [`Self::dropped`]).
    synced: AtomicU64,
    stripes: [Mutex<RingStripe>; RING_STRIPES],
}

/// Shared counter handle for ring evictions (all `RingSink`s feed it).
/// Cached so the per-drop cost stays two relaxed adds, not a registry
/// lock; after a `metrics::reset()` it keeps counting into the detached
/// instrument, like every other cached handle.
fn dropped_total() -> &'static Arc<Counter> {
    static DROPPED: OnceLock<Arc<Counter>> = OnceLock::new();
    DROPPED.get_or_init(|| metrics::counter(names::TRACE_DROPPED, &[]))
}

impl RingSink {
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: AtomicU64::new(capacity.max(1) as u64),
            seq: AtomicU64::new(0),
            len_total: AtomicU64::new(0),
            synced: AtomicU64::new(0),
            stripes: std::array::from_fn(|_| Mutex::new(RingStripe::default())),
        }
    }

    /// Drop every span older than `capacity` sequence steps from `stripe`.
    /// Returns how many it evicted (already added to the stripe's count).
    fn age_out(stripe: &mut RingStripe, next_seq: u64, cap: u64) -> u64 {
        let mut evicted = 0u64;
        while let Some(&(s, _)) = stripe.spans.front() {
            if s < next_seq.saturating_sub(cap) {
                stripe.spans.pop_front();
                evicted += 1;
            } else {
                break;
            }
        }
        stripe.dropped += evicted;
        evicted
    }

    pub fn set_capacity(&self, capacity: usize) {
        let cap = capacity.max(1) as u64;
        self.capacity.store(cap, Ordering::Relaxed);
        // Sweep every stripe against the new horizon — this is also what
        // reclaims spans stranded in stripes whose threads went quiet.
        // The horizon is the highest sequence actually *used*, not the
        // shared counter, which runs up to a block ahead per stripe.
        let next_seq = self
            .stripes
            .iter()
            .map(|s| s.lock().seq_next)
            .max()
            .unwrap_or(0);
        let mut evicted = 0u64;
        for stripe in &self.stripes {
            evicted += Self::age_out(&mut stripe.lock(), next_seq, cap);
        }
        if evicted > 0 {
            self.len_total.fetch_sub(evicted, Ordering::Relaxed);
        }
        // Surface the trims in the exposition counter right away.
        self.dropped();
    }

    /// Spans evicted from this ring before anyone read them. Also
    /// forwards any not-yet-reported drops to the global
    /// `rndi_obs_trace_dropped_total` counter — callers (health, flight
    /// dumps, scrapes) read this exactly where the figure is published.
    pub fn dropped(&self) -> u64 {
        let total: u64 = self.stripes.iter().map(|s| s.lock().dropped).sum();
        let prev = self.synced.swap(total, Ordering::Relaxed);
        if total > prev {
            dropped_total().add(total - prev);
        }
        total
    }

    pub fn len(&self) -> usize {
        self.len_total.load(Ordering::Relaxed) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        for stripe in &self.stripes {
            let mut stripe = stripe.lock();
            let n = stripe.spans.len();
            stripe.spans.clear();
            self.len_total.fetch_sub(n as u64, Ordering::Relaxed);
        }
    }

    /// All buffered spans, oldest first (merged across stripes by push
    /// sequence).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut tagged = Vec::with_capacity(self.len());
        for stripe in &self.stripes {
            tagged.extend(stripe.lock().spans.iter().cloned());
        }
        tagged.sort_by_key(|&(s, _)| s);
        tagged.into_iter().map(|(_, span)| span).collect()
    }

    /// Every buffered span of one trace, oldest first.
    pub fn trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut tagged = Vec::new();
        for stripe in &self.stripes {
            tagged.extend(
                stripe
                    .lock()
                    .spans
                    .iter()
                    .filter(|(_, s)| s.trace_id == trace_id)
                    .cloned(),
            );
        }
        tagged.sort_by_key(|&(s, _)| s);
        tagged.into_iter().map(|(_, span)| span).collect()
    }

    /// The `n` slowest root spans (no parent), slowest first — the entry
    /// point for "top-N slowest traces" reports.
    pub fn slowest_roots(&self, n: usize) -> Vec<SpanRecord> {
        let mut roots = Vec::new();
        for stripe in &self.stripes {
            roots.extend(
                stripe
                    .lock()
                    .spans
                    .iter()
                    .filter(|(_, s)| s.parent_span == 0)
                    .map(|(_, s)| s.clone()),
            );
        }
        roots.sort_by_key(|s| std::cmp::Reverse(s.duration_ns));
        roots.truncate(n);
        roots
    }
}

impl RingSink {
    /// [`TraceSink::record`] by value: the common single-sink path moves
    /// the span straight into the ring instead of cloning it.
    ///
    /// The hot path is one uncontended stripe lock (sequence numbers come
    /// from the stripe's pre-drawn block); at steady state the push ages
    /// out exactly one span of its own stripe, so it writes no shared
    /// cache line at all.
    pub fn push(&self, span: SpanRecord) {
        let cap = self.capacity.load(Ordering::Relaxed);
        let mut stripe = self.stripes[stripe_index()].lock();
        if stripe.seq_next == stripe.seq_end {
            let base = self.seq.fetch_add(SEQ_BLOCK, Ordering::Relaxed);
            stripe.seq_next = base;
            stripe.seq_end = base + SEQ_BLOCK;
        }
        let seq = stripe.seq_next;
        stripe.seq_next += 1;
        stripe.spans.push_back((seq, span));
        let evicted = Self::age_out(&mut stripe, seq + 1, cap);
        drop(stripe);
        // Net growth is usually 1 (warm-up) or 0 (steady state: one in,
        // one out); only the 0 case skips the shared counter entirely.
        if evicted != 1 {
            self.len_total
                .fetch_add(1u64.wrapping_sub(evicted), Ordering::Relaxed);
        }
    }
}

impl TraceSink for RingSink {
    fn record(&self, span: &SpanRecord) {
        self.push(span.clone());
    }
}

/// Appends one JSON object per span to a file (the `rndi.obs.trace-file`
/// knob). Write errors are swallowed — tracing must never fail an op.
pub struct JsonlSink {
    file: Mutex<std::fs::File>,
}

impl JsonlSink {
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlSink {
            file: Mutex::new(file),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, span: &SpanRecord) {
        if let Ok(line) = serde_json::to_string(span) {
            let mut file = self.file.lock();
            let _ = writeln!(file, "{line}");
        }
    }
}

// ------------------------------------------------------ global wiring --

struct Sinks {
    extra: Vec<Arc<dyn TraceSink>>,
    /// Paths already backed by a JSONL sink (idempotent installs).
    jsonl_paths: Vec<String>,
}

fn sinks() -> &'static RwLock<Sinks> {
    static SINKS: OnceLock<RwLock<Sinks>> = OnceLock::new();
    SINKS.get_or_init(|| {
        RwLock::new(Sinks {
            extra: Vec::new(),
            jsonl_paths: Vec::new(),
        })
    })
}

/// How many extra sinks are installed — checked with one relaxed load per
/// span so the common ring-only configuration never touches the lock.
static EXTRA_SINKS: AtomicUsize = AtomicUsize::new(0);

/// The always-installed process-wide ring buffer.
pub fn ring() -> &'static RingSink {
    static RING: OnceLock<RingSink> = OnceLock::new();
    RING.get_or_init(|| RingSink::new(DEFAULT_RING_CAPACITY))
}

/// Fan one finished span out to the ring and every installed sink.
pub fn record(span: SpanRecord) {
    if EXTRA_SINKS.load(Ordering::Relaxed) == 0 {
        return ring().push(span);
    }
    for sink in sinks().read().extra.iter() {
        sink.record(&span);
    }
    ring().push(span);
}

/// Install an additional sink alongside the ring buffer.
pub fn install_sink(sink: Arc<dyn TraceSink>) {
    sinks().write().extra.push(sink);
    EXTRA_SINKS.fetch_add(1, Ordering::Relaxed);
}

/// Install a JSONL file sink for `path`, once per path per process.
/// Returns `false` (without error) when the file cannot be opened.
pub fn install_jsonl(path: &str) -> bool {
    {
        let guard = sinks().read();
        if guard.jsonl_paths.iter().any(|p| p == path) {
            return true;
        }
    }
    let mut guard = sinks().write();
    if guard.jsonl_paths.iter().any(|p| p == path) {
        return true;
    }
    match JsonlSink::create(path) {
        Ok(sink) => {
            guard.extra.push(Arc::new(sink));
            guard.jsonl_paths.push(path.to_string());
            EXTRA_SINKS.fetch_add(1, Ordering::Relaxed);
            true
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ctx_encode_parse_roundtrip() {
        let root = TraceCtx::root();
        assert_eq!(TraceCtx::parse(&root.encode()), Some(root));
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span, root.span_id);
        assert_eq!(child.depth, 1);
        assert_ne!(child.span_id, root.span_id);
        assert_eq!(TraceCtx::parse(&child.encode()), Some(child));
    }

    #[test]
    fn ctx_parse_rejects_malformed() {
        for bad in [
            "",
            "xyz",
            "1-2",
            "1-2-3-4-5",
            "0-1-0-0",
            "1-0-0-0",
            "g-1-0-0",
        ] {
            assert_eq!(TraceCtx::parse(bad), None, "input {bad:?}");
        }
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    fn span(trace: &TraceCtx, ns: u64) -> SpanRecord {
        SpanRecord::new(
            trace,
            "pipeline",
            "p",
            "lookup",
            SpanOutcome::Ok,
            Duration::from_nanos(ns),
        )
    }

    #[test]
    fn ring_bounds_and_queries() {
        let ring = RingSink::new(3);
        let a = TraceCtx::root();
        let b = TraceCtx::root();
        ring.record(&span(&a, 5));
        ring.record(&span(&b, 10));
        ring.record(&span(&a.child(), 1));
        ring.record(&span(&b, 20));
        assert_eq!(ring.len(), 3, "oldest span evicted at capacity");
        assert_eq!(ring.dropped(), 1, "the eviction was counted");
        assert_eq!(ring.trace(b.trace_id).len(), 2);
        let slow = ring.slowest_roots(10);
        assert!(slow.iter().all(|s| s.parent_span == 0));
        assert_eq!(slow.first().map(|s| s.duration_ns), Some(20));
        ring.set_capacity(1);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 3, "capacity trims count as drops");
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn span_record_roundtrips_through_json() {
        let rec = span(&TraceCtx::root().child(), 123);
        let text = serde_json::to_string(&rec).unwrap();
        let back: SpanRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(rec, back);
        assert!(serde_json::from_str::<SpanRecord>("{\"outcome\":\"nope\"}").is_err());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!("obs-test-{}.jsonl", next_id()));
        let sink = JsonlSink::create(path.to_str().unwrap()).unwrap();
        sink.record(&span(&TraceCtx::root(), 7));
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(v.get("duration_ns").and_then(|n| n.as_u64()), Some(7));
        assert_eq!(v.get("outcome").and_then(|o| o.as_str()), Some("ok"));
        let _ = std::fs::remove_file(&path);
    }
}
