//! Serializable, mergeable metrics snapshots — the currency of the
//! cluster telemetry plane.
//!
//! A [`MetricsSnapshot`] is a point-in-time copy of a [`Registry`]
//! (`Registry::snapshot()`), cheap to ship over the v2 admin protocol and
//! to fold together client-side. Merge semantics are the natural monoid:
//! counters sum, log2 histogram buckets add bucket-wise (so merged
//! quantiles stay meaningful), and gauges sum — callers that merge across
//! instances label each snapshot with `instance` first (see
//! [`MetricsSnapshot::with_label`]) so instantaneous gauge values never
//! actually mix. Merged output is kept sorted by `(name, labels)`, which
//! makes the merge associative and commutative — property-tested in
//! `tests/merge_props.rs`.
//!
//! [`Registry`]: crate::metrics::Registry

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::metrics::{self, Labels, HISTOGRAM_BUCKETS};

/// One counter series: `name{labels} value`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSeries {
    pub name: String,
    pub labels: Labels,
    pub value: u64,
}

/// One gauge series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSeries {
    pub name: String,
    pub labels: Labels,
    pub value: i64,
}

/// One histogram series: raw (non-cumulative) log2 bucket counts plus
/// sum/count, exactly as the live [`crate::metrics::Histogram`] holds them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSeries {
    pub name: String,
    pub labels: Labels,
    pub buckets: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSeries {
    /// Quantile estimate over this series' buckets, same interpolation as
    /// the live histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        metrics::quantile_over(&self.buckets, self.sum, q)
    }
}

/// A point-in-time, serializable copy of a whole registry.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSeries>,
    pub gauges: Vec<GaugeSeries>,
    pub histograms: Vec<HistogramSeries>,
}

fn series_key(name: &str, labels: &Labels) -> (String, Labels) {
    let mut labels = labels.clone();
    labels.sort();
    (name.to_string(), labels)
}

fn add_label(labels: &Labels, key: &str, value: &str) -> Labels {
    let mut out: Labels = labels.iter().filter(|(k, _)| k != key).cloned().collect();
    out.push((key.to_string(), value.to_string()));
    out.sort();
    out
}

fn drop_labels(labels: &Labels, names: &[&str]) -> Labels {
    labels
        .iter()
        .filter(|(k, _)| !names.contains(&k.as_str()))
        .cloned()
        .collect()
}

impl MetricsSnapshot {
    /// Total of one counter family across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// A copy with `key="value"` set on every series (replacing any
    /// existing `key`). Cluster scrapes use this to stamp `instance`
    /// before merging, so per-instance series never collide.
    pub fn with_label(&self, key: &str, value: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| CounterSeries {
                    labels: add_label(&c.labels, key, value),
                    ..c.clone()
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| GaugeSeries {
                    labels: add_label(&g.labels, key, value),
                    ..g.clone()
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|h| HistogramSeries {
                    labels: add_label(&h.labels, key, value),
                    ..h.clone()
                })
                .collect(),
        }
    }

    /// Fold `other` into `self`: counters and gauges sum, histogram
    /// buckets add bucket-wise. Output stays sorted by `(name, labels)`.
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        let mut counters: BTreeMap<(String, Labels), u64> = BTreeMap::new();
        for c in self.counters.iter().chain(&other.counters) {
            *counters.entry(series_key(&c.name, &c.labels)).or_default() += c.value;
        }
        self.counters = counters
            .into_iter()
            .map(|((name, labels), value)| CounterSeries {
                name,
                labels,
                value,
            })
            .collect();

        let mut gauges: BTreeMap<(String, Labels), i64> = BTreeMap::new();
        for g in self.gauges.iter().chain(&other.gauges) {
            *gauges.entry(series_key(&g.name, &g.labels)).or_default() += g.value;
        }
        self.gauges = gauges
            .into_iter()
            .map(|((name, labels), value)| GaugeSeries {
                name,
                labels,
                value,
            })
            .collect();

        let mut histograms: BTreeMap<(String, Labels), (Vec<u64>, u64, u64)> = BTreeMap::new();
        for h in self.histograms.iter().chain(&other.histograms) {
            let entry = histograms
                .entry(series_key(&h.name, &h.labels))
                .or_insert_with(|| (vec![0; HISTOGRAM_BUCKETS], 0, 0));
            for (i, n) in h.buckets.iter().enumerate().take(entry.0.len()) {
                entry.0[i] += n;
            }
            entry.1 += h.sum;
            entry.2 += h.count;
        }
        self.histograms = histograms
            .into_iter()
            .map(|((name, labels), (buckets, sum, count))| HistogramSeries {
                name,
                labels,
                buckets,
                sum,
                count,
            })
            .collect();
    }

    /// Merge two snapshots (consuming form of [`merge_from`]).
    ///
    /// [`merge_from`]: MetricsSnapshot::merge_from
    pub fn merged(mut self, other: &MetricsSnapshot) -> MetricsSnapshot {
        self.merge_from(other);
        self
    }

    /// Re-aggregate after dropping the named labels: series that become
    /// identical sum together. Dropping `["server", "instance"]` turns
    /// per-instance series into a cluster rollup. Gauges are excluded —
    /// summing instantaneous values across instances reads as a lie.
    pub fn rollup_dropping(&self, labels: &[&str]) -> MetricsSnapshot {
        let stripped = MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| CounterSeries {
                    labels: drop_labels(&c.labels, labels),
                    ..c.clone()
                })
                .collect(),
            gauges: Vec::new(),
            histograms: self
                .histograms
                .iter()
                .map(|h| HistogramSeries {
                    labels: drop_labels(&h.labels, labels),
                    ..h.clone()
                })
                .collect(),
        };
        MetricsSnapshot::default().merged(&stripped)
    }

    /// Series-wise `self - baseline` for counters and histograms
    /// (saturating; gauges keep their current value). The flight recorder
    /// dumps this to show what moved since the last anomaly.
    pub fn delta_since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let base_counters: BTreeMap<(String, Labels), u64> = baseline
            .counters
            .iter()
            .map(|c| (series_key(&c.name, &c.labels), c.value))
            .collect();
        let base_hists: BTreeMap<(String, Labels), &HistogramSeries> = baseline
            .histograms
            .iter()
            .map(|h| (series_key(&h.name, &h.labels), h))
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|c| CounterSeries {
                value: c.value.saturating_sub(
                    base_counters
                        .get(&series_key(&c.name, &c.labels))
                        .copied()
                        .unwrap_or(0),
                ),
                ..c.clone()
            })
            .filter(|c| c.value > 0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let base = base_hists.get(&series_key(&h.name, &h.labels));
                HistogramSeries {
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .map(|(i, n)| {
                            n.saturating_sub(
                                base.and_then(|b| b.buckets.get(i)).copied().unwrap_or(0),
                            )
                        })
                        .collect(),
                    sum: h.sum.saturating_sub(base.map(|b| b.sum).unwrap_or(0)),
                    count: h.count.saturating_sub(base.map(|b| b.count).unwrap_or(0)),
                    ..h.clone()
                }
            })
            .filter(|h| h.count > 0)
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Render as Prometheus-style text, same format as
    /// [`crate::metrics::Registry::render`] (cumulative `_bucket` lines,
    /// empty inner buckets omitted, `+Inf` always present).
    pub fn render(&self) -> String {
        use crate::metrics::Histogram;
        let mut out = String::new();
        let mut last_type: Option<String> = None;
        let mut sorted = self.clone();
        sorted
            .counters
            .sort_by_key(|a| series_key(&a.name, &a.labels));
        sorted
            .gauges
            .sort_by_key(|a| series_key(&a.name, &a.labels));
        sorted
            .histograms
            .sort_by_key(|a| series_key(&a.name, &a.labels));
        for c in &sorted.counters {
            if last_type.as_deref() != Some(c.name.as_str()) {
                out.push_str(&format!("# TYPE {} counter\n", c.name));
                last_type = Some(c.name.clone());
            }
            out.push_str(&format!(
                "{}{} {}\n",
                c.name,
                metrics::label_block(&c.labels),
                c.value
            ));
        }
        last_type = None;
        for g in &sorted.gauges {
            if last_type.as_deref() != Some(g.name.as_str()) {
                out.push_str(&format!("# TYPE {} gauge\n", g.name));
                last_type = Some(g.name.clone());
            }
            out.push_str(&format!(
                "{}{} {}\n",
                g.name,
                metrics::label_block(&g.labels),
                g.value
            ));
        }
        last_type = None;
        for h in &sorted.histograms {
            if last_type.as_deref() != Some(h.name.as_str()) {
                out.push_str(&format!("# TYPE {} histogram\n", h.name));
                last_type = Some(h.name.clone());
            }
            let mut cum = 0u64;
            for (i, n) in h.buckets.iter().enumerate() {
                cum += n;
                if *n == 0 && i + 1 != h.buckets.len() {
                    continue;
                }
                let le = match Histogram::bucket_bound(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!(
                    "{}_bucket{} {cum}\n",
                    h.name,
                    metrics::label_block_with(&h.labels, "le", &le)
                ));
            }
            let block = metrics::label_block(&h.labels);
            out.push_str(&format!("{}_sum{block} {}\n", h.name, h.sum));
            out.push_str(&format!("{}_count{block} {}\n", h.name, h.count));
        }
        out
    }
}

/// One instance's health summary, served by the `Admin::Health` call:
/// liveness and saturation at a glance, including how partial its trace
/// ring is ([`trace_dropped`]).
///
/// [`trace_dropped`]: HealthSummary::trace_dropped
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthSummary {
    /// The serving instance's label (`net:<provider>`).
    pub instance: String,
    pub uptime_ms: u64,
    pub active_conns: u64,
    pub max_conns: u64,
    /// Accepted sockets queued at shard event loops, awaiting adoption.
    pub inbox_depth: u64,
    pub requests_ok: u64,
    pub requests_err: u64,
    /// Spans currently buffered in the trace ring.
    pub trace_spans: u64,
    /// Spans evicted unread — nonzero means ring dumps are partial.
    pub trace_dropped: u64,
    /// Calls waiting in admission queues, summed over event-loop shards.
    pub queue_depth: u64,
    /// Sum of per-shard effective admission bounds; `0` when the queues
    /// are unbounded (admission control off).
    pub concurrency_limit: u64,
    /// Calls shed with `Overloaded` before dispatch, over the server's
    /// life (queue-full + rate-limited + expired-in-queue).
    pub shed_total: u64,
    /// Membership summary (all zero on nodes without a cluster plane).
    /// Sequence number of the node's installed group view.
    pub view_epoch: u64,
    /// Peers this node believes Alive (including itself).
    pub members_alive: u64,
    /// Peers under phi suspicion.
    pub members_suspect: u64,
    /// Peers declared dead (includes quarantined).
    pub members_dead: u64,
}

impl HealthSummary {
    /// Error fraction of all dispatched requests (`0.0` when idle).
    pub fn error_rate(&self) -> f64 {
        let total = self.requests_ok + self.requests_err;
        if total == 0 {
            0.0
        } else {
            self.requests_err as f64 / total as f64
        }
    }

    /// Connection-slot headroom: `1 − active/max`, `0.0 ..= 1.0`.
    pub fn headroom(&self) -> f64 {
        if self.max_conns == 0 {
            return 1.0;
        }
        (1.0 - self.active_conns as f64 / self.max_conns as f64).clamp(0.0, 1.0)
    }

    /// Admission-queue headroom: `1 − queued/limit`, `0.0 ..= 1.0`.
    /// `1.0` when admission control is off (unbounded queues).
    pub fn admission_headroom(&self) -> f64 {
        if self.concurrency_limit == 0 {
            return 1.0;
        }
        (1.0 - self.queue_depth as f64 / self.concurrency_limit as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("reqs_total", &[("op", "lookup")]).add(7);
        r.counter("reqs_total", &[("op", "bind")]).add(3);
        r.gauge("active", &[]).set(2);
        let h = r.histogram("lat_ns", &[("op", "lookup")]);
        h.record(100);
        h.record(1000);
        h.record(100_000);
        r
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = sample_registry().snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.counter_total("reqs_total"), 10);
    }

    #[test]
    fn merge_sums_counters_and_buckets() {
        let a = sample_registry().snapshot();
        let b = sample_registry().snapshot();
        let merged = a.clone().merged(&b);
        assert_eq!(merged.counter_total("reqs_total"), 20);
        let h = merged
            .histograms
            .iter()
            .find(|h| h.name == "lat_ns")
            .unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 2 * 101_100);
        let one = a.histograms.iter().find(|h| h.name == "lat_ns").unwrap();
        assert_eq!(
            h.buckets.iter().sum::<u64>(),
            2 * one.buckets.iter().sum::<u64>(),
            "bucket counts conserved"
        );
        // Same-shaped inputs: merged quantile equals the per-shard one.
        assert_eq!(h.quantile(0.5), one.quantile(0.5));
    }

    #[test]
    fn instance_labels_keep_series_apart_and_rollup_rejoins_them() {
        let a = sample_registry().snapshot().with_label("instance", "s0");
        let b = sample_registry().snapshot().with_label("instance", "s1");
        let merged = a.merged(&b);
        assert_eq!(
            merged
                .counters
                .iter()
                .filter(|c| c.name == "reqs_total")
                .count(),
            4,
            "per-instance series stay distinct"
        );
        let rollup = merged.rollup_dropping(&["instance"]);
        assert_eq!(
            rollup
                .counters
                .iter()
                .filter(|c| c.name == "reqs_total")
                .count(),
            2
        );
        assert_eq!(rollup.counter_total("reqs_total"), 20);
        assert!(rollup.gauges.is_empty(), "gauges never roll up");
    }

    #[test]
    fn delta_since_shows_only_movement() {
        let r = sample_registry();
        let base = r.snapshot();
        r.counter("reqs_total", &[("op", "lookup")]).add(5);
        r.histogram("lat_ns", &[("op", "lookup")]).record(42);
        let delta = r.snapshot().delta_since(&base);
        assert_eq!(delta.counter_total("reqs_total"), 5);
        let h = delta
            .histograms
            .iter()
            .find(|h| h.name == "lat_ns")
            .unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 42);
    }

    #[test]
    fn render_matches_registry_format() {
        let r = sample_registry();
        let live = r.render();
        let snap = r.snapshot().render();
        assert_eq!(live, snap, "snapshot render is byte-identical");
        assert!(crate::expo::parse(&snap).is_ok());
    }

    #[test]
    fn health_summary_derived_signals() {
        let h = HealthSummary {
            active_conns: 25,
            max_conns: 100,
            requests_ok: 90,
            requests_err: 10,
            ..Default::default()
        };
        assert!((h.error_rate() - 0.1).abs() < 1e-9);
        assert!((h.headroom() - 0.75).abs() < 1e-9);
        assert_eq!(HealthSummary::default().error_rate(), 0.0);
        assert_eq!(HealthSummary::default().headroom(), 1.0);
        let text = serde_json::to_string(&h).unwrap();
        let back: HealthSummary = serde_json::from_str(&text).unwrap();
        assert_eq!(h, back);
    }
}
