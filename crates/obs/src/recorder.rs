//! The flight recorder: always-on anomaly capture.
//!
//! Post-hoc debugging of a latency collapse shouldn't require reproducing
//! it. The recorder watches per-`(provider, op)` durations with a pair of
//! rotating log2 histograms; when an observation exceeds a configurable
//! multiple of the *trailing* p99 (the previous full epoch, so the anomaly
//! itself can't raise its own threshold), or the error rate over a window
//! spikes past a threshold, it snapshots the trace ring plus the metrics
//! delta since the last dump into a JSONL file under `rndi.obs.flight-dir`.
//!
//! The unarmed fast path is one relaxed atomic load; armed, an observation
//! costs a short mutex-guarded bucket update. Dumps are serialized by a
//! cooldown so an anomaly storm can't turn the recorder into the anomaly.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde::Serialize as _;
use serde_json::json;

use crate::metrics::{self, quantile_over, Histogram, HISTOGRAM_BUCKETS};
use crate::snapshot::MetricsSnapshot;
use crate::trace;

/// Observations per epoch before the watch rotates its histograms; the
/// trailing window therefore spans between one and two epochs.
const EPOCH_SAMPLES: u64 = 1024;

/// Flight-recorder tuning (`rndi.obs.flight.*`).
#[derive(Clone, Debug)]
pub struct FlightConfig {
    /// Directory for dump files; arming creates it if missing.
    pub dir: String,
    /// Slow-op trigger: duration > `p99_multiple × trailing p99`.
    pub p99_multiple: u64,
    /// Observations required per op before the slow-op trigger arms.
    pub min_samples: u64,
    /// Error-rate window length, in observations.
    pub err_window: u64,
    /// Error-spike trigger: percent of the window that errored.
    pub err_rate_pct: u64,
    /// Minimum spacing between dumps.
    pub cooldown_ms: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            dir: String::new(),
            p99_multiple: 4,
            min_samples: 64,
            err_window: 256,
            err_rate_pct: 50,
            cooldown_ms: 1000,
        }
    }
}

/// Why a dump was taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Trigger {
    SlowOp,
    ErrorSpike,
}

impl Trigger {
    fn label(self) -> &'static str {
        match self {
            Trigger::SlowOp => "slow_op",
            Trigger::ErrorSpike => "error_spike",
        }
    }
}

/// Two-epoch rotating duration watch for one `(provider, op)` pair.
#[derive(Clone)]
struct OpWatch {
    cur: [u64; HISTOGRAM_BUCKETS],
    cur_sum: u64,
    cur_n: u64,
    prev: [u64; HISTOGRAM_BUCKETS],
    prev_sum: u64,
    prev_n: u64,
    /// p99 of `prev`, computed once at epoch rotation — the steady-state
    /// [`OpWatch::trailing_p99`] answer must not rescan the buckets on
    /// every observed op.
    prev_p99: Option<f64>,
    win_n: u64,
    win_err: u64,
}

impl Default for OpWatch {
    fn default() -> Self {
        OpWatch {
            cur: [0; HISTOGRAM_BUCKETS],
            cur_sum: 0,
            cur_n: 0,
            prev: [0; HISTOGRAM_BUCKETS],
            prev_sum: 0,
            prev_n: 0,
            prev_p99: None,
            win_n: 0,
            win_err: 0,
        }
    }
}

impl OpWatch {
    /// The p99 of the most recent *complete* view: the previous epoch once
    /// one exists, else the current epoch once it has enough samples.
    fn trailing_p99(&self, min_samples: u64) -> Option<f64> {
        if self.prev_n >= min_samples {
            self.prev_p99
        } else if self.cur_n >= min_samples {
            quantile_over(&self.cur, self.cur_sum, 0.99)
        } else {
            None
        }
    }

    fn absorb(&mut self, duration_ns: u64) {
        self.cur[Histogram::bucket_index(duration_ns)] += 1;
        self.cur_sum = self.cur_sum.saturating_add(duration_ns);
        self.cur_n += 1;
        if self.cur_n >= EPOCH_SAMPLES {
            self.prev = self.cur;
            self.prev_sum = self.cur_sum;
            self.prev_n = self.cur_n;
            self.prev_p99 = quantile_over(&self.prev, self.prev_sum, 0.99);
            self.cur = [0; HISTOGRAM_BUCKETS];
            self.cur_sum = 0;
            self.cur_n = 0;
        }
    }
}

/// How many independently-locked shards the watch table spreads over.
/// Stripes are assigned per *observing thread* (round-robin at first
/// observation), not by provider hash: a client pipeline and the server
/// pipeline serving it observe the same `(provider, op)` pair from
/// different cores, and any shared key would bounce one lock (and the
/// watch state behind it) between those cores on every armed op. Each
/// thread therefore trains its own trailing baselines — which is also the
/// sounder signal, since client-side durations include the wire and
/// server-side ones don't.
const WATCH_STRIPES: usize = 8;

fn watch_stripe() -> usize {
    use std::cell::Cell;
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HOME: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    HOME.with(|home| {
        let mut v = home.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % WATCH_STRIPES;
            home.set(v);
        }
        v
    })
}

/// One shard of the watch table, padded so neighbouring shards — locked
/// from different observing threads — never share a cache line.
#[repr(align(128))]
#[derive(Default)]
struct WatchShard(HashMap<String, HashMap<String, OpWatch>>);

/// The recorder itself; normally a process-wide singleton managed through
/// [`arm`]/[`observe`], but constructible directly for tests.
pub struct FlightRecorder {
    config: FlightConfig,
    /// Watches keyed provider → op, one shard per observing thread's home
    /// stripe. Two levels so the armed hot path looks up by `&str` without
    /// building a joined key string.
    watches: [Mutex<WatchShard>; WATCH_STRIPES],
    baseline: Mutex<MetricsSnapshot>,
    last_dump: Mutex<Option<Instant>>,
    started: Instant,
    dumps: AtomicU64,
}

impl FlightRecorder {
    pub fn new(config: FlightConfig) -> Self {
        let _ = std::fs::create_dir_all(&config.dir);
        FlightRecorder {
            config,
            watches: std::array::from_fn(|_| Mutex::new(WatchShard::default())),
            baseline: Mutex::new(metrics::snapshot()),
            last_dump: Mutex::new(None),
            started: Instant::now(),
            dumps: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &FlightConfig {
        &self.config
    }

    /// Dumps written so far.
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Feed one finished operation. Cheap unless it trips a trigger.
    pub fn observe(&self, provider: &str, op: &str, duration_ns: u64, err: bool) {
        let (trigger, p99) = {
            let mut shard = self.watches[watch_stripe()].lock();
            let watches = &mut shard.0;
            // Avoid allocating map keys on the hit path — this runs once
            // per finished pipeline op while armed.
            if !watches.get(provider).is_some_and(|m| m.contains_key(op)) {
                watches
                    .entry(provider.to_string())
                    .or_default()
                    .insert(op.to_string(), OpWatch::default());
            }
            let watch = watches
                .get_mut(provider)
                .and_then(|m| m.get_mut(op))
                .expect("watch just ensured");
            let mut fired = None;
            let p99 = watch.trailing_p99(self.config.min_samples);
            if let Some(p99) = p99 {
                if duration_ns as f64 > p99 * self.config.p99_multiple as f64 {
                    fired = Some(Trigger::SlowOp);
                }
            }
            watch.absorb(duration_ns);
            watch.win_n += 1;
            watch.win_err += u64::from(err);
            if watch.win_n >= self.config.err_window.max(1) {
                let pct = 100 * watch.win_err / watch.win_n;
                if fired.is_none() && pct >= self.config.err_rate_pct {
                    fired = Some(Trigger::ErrorSpike);
                }
                watch.win_n = 0;
                watch.win_err = 0;
            }
            (fired, p99)
        };
        if let Some(trigger) = trigger {
            self.dump(trigger, provider, op, duration_ns, p99);
        }
    }

    /// Snapshot ring + metrics delta to a fresh JSONL file. Never fails
    /// the observing op: IO errors are swallowed.
    fn dump(&self, trigger: Trigger, provider: &str, op: &str, duration_ns: u64, p99: Option<f64>) {
        {
            let mut last = self.last_dump.lock();
            if let Some(at) = *last {
                if at.elapsed() < Duration::from_millis(self.config.cooldown_ms) {
                    return;
                }
            }
            *last = Some(Instant::now());
        }
        let seq = self.dumps.fetch_add(1, Ordering::Relaxed);
        let spans = trace::ring().snapshot();
        let current = metrics::snapshot();
        let delta = {
            let mut baseline = self.baseline.lock();
            let delta = current.delta_since(&baseline);
            *baseline = current;
            delta
        };
        let path = std::path::Path::new(&self.config.dir).join(format!("flight-{seq:04}.jsonl"));
        let Ok(mut file) = std::fs::File::create(&path) else {
            return;
        };
        let p99 = p99.unwrap_or(0.0);
        let header = json!({
            "flight": {
                "seq": seq,
                "trigger": (trigger.label()),
                "provider": provider,
                "op": op,
                "duration_ns": duration_ns,
                "trailing_p99_ns": p99,
                "threshold_ns": (p99 * self.config.p99_multiple as f64),
                "uptime_ms": (self.started.elapsed().as_millis() as u64),
                "spans": (spans.len() as u64),
                "trace_dropped": (trace::ring().dropped())
            }
        });
        let _ = writeln!(file, "{header}");
        for span in &spans {
            let _ = writeln!(file, "{}", json!({ "span": (span.to_value()) }));
        }
        let _ = writeln!(file, "{}", json!({ "metrics_delta": (delta.to_value()) }));
    }
}

// ------------------------------------------------------ global wiring --

static ARMED: AtomicBool = AtomicBool::new(false);

/// Bumped on every arm/disarm so per-thread cached recorder handles know
/// when to refresh. Reads stay in the Shared cache state on every core;
/// taking the slot's read lock instead would CAS the lock word and bounce
/// it between observing cores on every armed op.
static GENERATION: AtomicU64 = AtomicU64::new(0);

fn slot() -> &'static RwLock<Option<Arc<FlightRecorder>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<FlightRecorder>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

thread_local! {
    /// (generation, recorder) cached per observing thread.
    static CACHED: std::cell::RefCell<(u64, Option<Arc<FlightRecorder>>)> =
        const { std::cell::RefCell::new((u64::MAX, None)) };
}

/// Arm the process-wide recorder. Re-arming with the same dump directory
/// keeps the running recorder (and its baselines); a new directory swaps
/// the recorder out.
pub fn arm(config: FlightConfig) -> Arc<FlightRecorder> {
    {
        let guard = slot().read();
        if let Some(existing) = guard.as_ref() {
            if existing.config.dir == config.dir {
                return existing.clone();
            }
        }
    }
    let recorder = Arc::new(FlightRecorder::new(config));
    *slot().write() = Some(recorder.clone());
    GENERATION.fetch_add(1, Ordering::Release);
    ARMED.store(true, Ordering::Release);
    recorder
}

/// Disarm and drop the process-wide recorder.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    *slot().write() = None;
    GENERATION.fetch_add(1, Ordering::Release);
}

pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// The armed recorder, if any.
pub fn current() -> Option<Arc<FlightRecorder>> {
    slot().read().clone()
}

/// Hot-path hook: no-op unless armed (one relaxed load). Armed, the
/// recorder handle comes from a generation-checked per-thread cache, so
/// the steady state touches no shared-writable line before the thread's
/// own watch stripe.
pub fn observe(provider: &str, op: &str, duration_ns: u64, err: bool) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    CACHED.with(|cached| {
        let mut cached = cached.borrow_mut();
        let gen = GENERATION.load(Ordering::Acquire);
        if cached.0 != gen {
            *cached = (gen, slot().read().clone());
        }
        if let Some(recorder) = cached.1.as_ref() {
            recorder.observe(provider, op, duration_ns, err);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!(
            "rndi-flight-{tag}-{}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        dir.to_str().unwrap().to_string()
    }

    fn dump_files(dir: &str) -> Vec<std::path::PathBuf> {
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .map(|rd| rd.filter_map(|e| e.ok().map(|e| e.path())).collect())
            .unwrap_or_default();
        files.sort();
        files
    }

    #[test]
    fn slow_op_past_trailing_p99_dumps_once() {
        let dir = test_dir("slow");
        let rec = FlightRecorder::new(FlightConfig {
            dir: dir.clone(),
            p99_multiple: 3,
            min_samples: 16,
            cooldown_ms: 0,
            ..Default::default()
        });
        // Steady state ~1µs; no dump while learning.
        for _ in 0..32 {
            rec.observe("hdns", "lookup", 1_000, false);
        }
        assert_eq!(rec.dumps(), 0);
        // 100× the trailing p99 → slow_op dump.
        rec.observe("hdns", "lookup", 100_000, false);
        assert_eq!(rec.dumps(), 1);
        let files = dump_files(&dir);
        assert_eq!(files.len(), 1);
        let text = std::fs::read_to_string(&files[0]).unwrap();
        let header: serde_json::Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        let flight = header.get("flight").unwrap();
        assert_eq!(
            flight.get("trigger").and_then(|t| t.as_str()),
            Some("slow_op")
        );
        assert_eq!(flight.get("op").and_then(|o| o.as_str()), Some("lookup"));
        assert!(text.lines().last().unwrap().contains("metrics_delta"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_spike_dumps_and_cooldown_limits_rate() {
        let dir = test_dir("err");
        let rec = FlightRecorder::new(FlightConfig {
            dir: dir.clone(),
            err_window: 16,
            err_rate_pct: 50,
            cooldown_ms: 60_000,
            ..Default::default()
        });
        for _ in 0..64 {
            rec.observe("ldap", "bind", 1_000, true);
        }
        // Four windows closed all-error, but the cooldown allows one dump.
        assert_eq!(rec.dumps(), 1);
        let text = std::fs::read_to_string(&dump_files(&dir)[0]).unwrap();
        assert!(text.contains("error_spike"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_op_watches_do_not_cross_contaminate() {
        let dir = test_dir("keyed");
        let rec = FlightRecorder::new(FlightConfig {
            dir: dir.clone(),
            p99_multiple: 3,
            min_samples: 16,
            cooldown_ms: 0,
            ..Default::default()
        });
        // A fast in-process op trains at ~1µs…
        for _ in 0..32 {
            rec.observe("mem", "lookup", 1_000, false);
        }
        // …and a 100× slower wire op for a *different* key must not trip
        // the fast op's threshold.
        for _ in 0..32 {
            rec.observe("net", "lookup", 100_000, false);
        }
        assert_eq!(rec.dumps(), 0, "separate keys, separate baselines");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
