//! # rndi-core — Rust Naming and Directory Interface
//!
//! A JNDI-analog client API and service-provider interface, reproducing the
//! integration middleware of *"Integrating heterogeneous information
//! services using JNDI"* (IPPS 2006).
//!
//! The crate provides:
//!
//! * **Names** — [`name::CompositeName`] (spanning naming systems, `/`
//!   separated with escapes/quotes) and [`name::CompoundName`] (per-system
//!   syntax: DNS dots, LDAP commas, …).
//! * **Contexts** — the [`context::Context`] / [`context::DirContext`]
//!   trait hierarchy with optional-operation conformance levels, plus the
//!   data model: [`value::BoundValue`] `<name, object, attributes>` tuples
//!   with [`attrs::Attributes`].
//! * **Queries** — LDAP-style (RFC 2254) search [`filter::Filter`]s, as the
//!   JNDI spec mandates.
//! * **SPI** — [`spi::ProviderRegistry`] mapping URL schemes to providers,
//!   and the [`spi::StateFactory`]/[`spi::ObjectFactory`] translation
//!   chains that let generic tuples be stored in backends never designed
//!   for them (the paper's Jini "fake service stub" trick).
//! * **Federation** — [`federation::drive`] follows
//!   [`error::NamingError::Continue`] continuations across naming-system
//!   boundaries, so `hdns://host2/jiniCtx/name` transparently hops from
//!   HDNS into Jini.
//! * **Events** — [`event::EventHub`] prefix-scoped change notification.
//! * **Leases** — [`lease::LeaseRenewalManager`], the client-side lease
//!   emulation that hides Jini leasing from the JNDI API surface.
//! * **[`initial::InitialContext`]** — the application entry point.
//! * **[`mem::MemContext`]** — a complete in-memory reference provider.
//!
//! ## Quick start
//!
//! ```
//! use rndi_core::prelude::*;
//! use std::sync::Arc;
//!
//! // A registry with (for this example) just the in-memory provider
//! // mounted as the default context.
//! let registry = Arc::new(ProviderRegistry::new());
//! let root = MemContext::new();
//! let ctx = InitialContext::with_default(registry, Environment::new(), Arc::new(root));
//!
//! ctx.bind("greeting", "hello world").unwrap();
//! assert_eq!(ctx.lookup("greeting").unwrap().as_str(), Some("hello world"));
//! ```

pub mod attrs;
pub mod context;
pub mod env;
pub mod error;
pub mod event;
pub mod federation;
pub mod filter;
pub mod initial;
pub mod lease;
pub mod mem;
pub mod name;
pub mod op;
pub mod spi;
pub mod url;
pub mod value;

/// The common imports for applications and providers.
pub mod prelude {
    pub use crate::attrs::{AttrMod, AttrValue, Attribute, Attributes};
    pub use crate::context::{
        Binding, Context, ContextExt, DirContext, NameClassPair, SearchControls, SearchItem,
        SearchScope,
    };
    pub use crate::env::{keys as env_keys, Environment};
    pub use crate::error::{NamingError, Result};
    pub use crate::event::{
        CollectingListener, EventHub, EventType, ListenerHandle, NamingEvent, NamingListener,
    };
    pub use crate::federation::FederatedContext;
    pub use crate::filter::Filter;
    pub use crate::initial::InitialContext;
    pub use crate::mem::{MemContext, MemFactory};
    pub use crate::name::{CompositeName, CompoundName, CompoundSyntax};
    pub use crate::op::{NamingOp, OpKind, OpOutcome, OpPayload};
    pub use crate::spi::{
        ContextBackend, FactoryChain, Interceptor, ObjectFactory, OpInvoker, ProviderBackend,
        ProviderPipeline, ProviderRegistry, StateFactory, UrlContextFactory, WireFormat,
    };
    pub use crate::url::{looks_like_url, RndiUrl};
    pub use crate::value::{BoundValue, RefAddr, Reference, StoredValue};
}
