//! The Service Provider Interface.
//!
//! * [`UrlContextFactory`] — one per URL scheme; turns `jini://host` into a
//!   live provider context. The [`ProviderRegistry`] maps schemes to
//!   factories (JNDI's `NamingManager` + `Context.URL_PKG_PREFIXES`
//!   machinery, without the classpath scanning).
//! * [`StateFactory`] / [`ObjectFactory`] — the translation layer the paper
//!   uses to store generic name→value mappings in backends that were never
//!   designed for them (§5.1 "State and Object Factories"): a state factory
//!   converts the application object into the provider's storable form on
//!   `bind`, and an object factory reverses the transformation on `lookup`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::context::DirContext;
use crate::env::Environment;
use crate::error::{NamingError, Result};
use crate::name::CompositeName;
use crate::url::RndiUrl;
use crate::value::BoundValue;

/// Creates provider contexts for one URL scheme.
pub trait UrlContextFactory: Send + Sync {
    /// The scheme this factory serves, lower-case (e.g. `"jini"`).
    fn scheme(&self) -> &str;

    /// Create a context rooted at the URL's authority. The URL's path is
    /// *not* resolved here — the federation driver does that — so factories
    /// only inspect `url.host` / `url.port`.
    fn create(&self, url: &RndiUrl, env: &Environment) -> Result<Arc<dyn DirContext>>;
}

/// Scheme → factory table.
#[derive(Default)]
pub struct ProviderRegistry {
    factories: RwLock<HashMap<String, Arc<dyn UrlContextFactory>>>,
}

impl ProviderRegistry {
    pub fn new() -> Self {
        ProviderRegistry::default()
    }

    /// Register a factory under its scheme, replacing any previous one.
    pub fn register(&self, factory: Arc<dyn UrlContextFactory>) {
        self.factories
            .write()
            .insert(factory.scheme().to_ascii_lowercase(), factory);
    }

    /// Remove the factory for `scheme`.
    pub fn unregister(&self, scheme: &str) {
        self.factories.write().remove(&scheme.to_ascii_lowercase());
    }

    /// Find the factory for `scheme`.
    pub fn get(&self, scheme: &str) -> Result<Arc<dyn UrlContextFactory>> {
        self.factories
            .read()
            .get(&scheme.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| NamingError::NoProvider {
                scheme: scheme.to_string(),
            })
    }

    /// Registered schemes, sorted.
    pub fn schemes(&self) -> Vec<String> {
        let mut v: Vec<String> = self.factories.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Create a context for a URL by dispatching on its scheme.
    pub fn create_context(&self, url: &RndiUrl, env: &Environment) -> Result<Arc<dyn DirContext>> {
        self.get(&url.scheme)?.create(url, env)
    }
}

/// Converts application objects into a provider-storable form on bind.
pub trait StateFactory: Send + Sync {
    /// Return `Ok(Some(_))` to take responsibility for the conversion,
    /// `Ok(None)` to pass to the next factory in the chain.
    fn get_state_to_bind(
        &self,
        value: &BoundValue,
        name: &CompositeName,
        env: &Environment,
    ) -> Result<Option<BoundValue>>;
}

/// Reconstructs application objects from the stored form on lookup.
pub trait ObjectFactory: Send + Sync {
    /// Return `Ok(Some(_))` to take responsibility for the conversion,
    /// `Ok(None)` to pass to the next factory in the chain.
    fn get_object_instance(
        &self,
        stored: &BoundValue,
        name: &CompositeName,
        env: &Environment,
    ) -> Result<Option<BoundValue>>;
}

/// An ordered chain of state/object factories; the first factory that
/// accepts wins, and with no taker the value passes through unchanged.
#[derive(Default, Clone)]
pub struct FactoryChain {
    state: Vec<Arc<dyn StateFactory>>,
    object: Vec<Arc<dyn ObjectFactory>>,
}

impl FactoryChain {
    pub fn new() -> Self {
        FactoryChain::default()
    }

    pub fn add_state_factory(&mut self, f: Arc<dyn StateFactory>) {
        self.state.push(f);
    }

    pub fn add_object_factory(&mut self, f: Arc<dyn ObjectFactory>) {
        self.object.push(f);
    }

    /// Apply the state-factory chain (bind direction).
    pub fn to_stored(
        &self,
        value: BoundValue,
        name: &CompositeName,
        env: &Environment,
    ) -> Result<BoundValue> {
        for f in &self.state {
            if let Some(converted) = f.get_state_to_bind(&value, name, env)? {
                return Ok(converted);
            }
        }
        Ok(value)
    }

    /// Apply the object-factory chain (lookup direction).
    pub fn to_object(
        &self,
        stored: BoundValue,
        name: &CompositeName,
        env: &Environment,
    ) -> Result<BoundValue> {
        for f in &self.object {
            if let Some(converted) = f.get_object_instance(&stored, name, env)? {
                return Ok(converted);
            }
        }
        Ok(stored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Binding, Context, NameClassPair};

    struct DummyCtx;
    impl Context for DummyCtx {
        fn lookup(&self, n: &CompositeName) -> Result<BoundValue> {
            Err(NamingError::not_found(n.to_string()))
        }
        fn bind(&self, _: &CompositeName, _: BoundValue) -> Result<()> {
            Ok(())
        }
        fn rebind(&self, _: &CompositeName, _: BoundValue) -> Result<()> {
            Ok(())
        }
        fn unbind(&self, _: &CompositeName) -> Result<()> {
            Ok(())
        }
        fn list(&self, _: &CompositeName) -> Result<Vec<NameClassPair>> {
            Ok(vec![])
        }
        fn list_bindings(&self, _: &CompositeName) -> Result<Vec<Binding>> {
            Ok(vec![])
        }
    }
    impl DirContext for DummyCtx {
        fn get_attributes(&self, _: &CompositeName) -> Result<crate::attrs::Attributes> {
            Ok(Default::default())
        }
        fn bind_with_attrs(
            &self,
            _: &CompositeName,
            _: BoundValue,
            _: crate::attrs::Attributes,
        ) -> Result<()> {
            Ok(())
        }
        fn rebind_with_attrs(
            &self,
            _: &CompositeName,
            _: BoundValue,
            _: crate::attrs::Attributes,
        ) -> Result<()> {
            Ok(())
        }
    }

    struct DummyFactory;
    impl UrlContextFactory for DummyFactory {
        fn scheme(&self) -> &str {
            "dummy"
        }
        fn create(&self, _: &RndiUrl, _: &Environment) -> Result<Arc<dyn DirContext>> {
            Ok(Arc::new(DummyCtx))
        }
    }

    #[test]
    fn registry_dispatch() {
        let reg = ProviderRegistry::new();
        reg.register(Arc::new(DummyFactory));
        assert_eq!(reg.schemes(), ["dummy"]);
        let url = RndiUrl::parse("DUMMY://host").unwrap();
        assert!(reg.create_context(&url, &Environment::new()).is_ok());
        assert!(matches!(
            reg.get("nope"),
            Err(NamingError::NoProvider { .. })
        ));
        reg.unregister("dummy");
        assert!(reg.get("dummy").is_err());
    }

    /// Wraps strings on the way in; unwraps on the way out — the same
    /// pattern the Jini provider uses for "fake service stubs".
    struct WrapFactory;
    impl StateFactory for WrapFactory {
        fn get_state_to_bind(
            &self,
            value: &BoundValue,
            _: &CompositeName,
            _: &Environment,
        ) -> Result<Option<BoundValue>> {
            Ok(value
                .as_str()
                .map(|s| BoundValue::Str(format!("wrapped:{s}"))))
        }
    }
    impl ObjectFactory for WrapFactory {
        fn get_object_instance(
            &self,
            stored: &BoundValue,
            _: &CompositeName,
            _: &Environment,
        ) -> Result<Option<BoundValue>> {
            Ok(stored
                .as_str()
                .and_then(|s| s.strip_prefix("wrapped:"))
                .map(BoundValue::str))
        }
    }

    #[test]
    fn factory_chain_roundtrip() {
        let mut chain = FactoryChain::new();
        chain.add_state_factory(Arc::new(WrapFactory));
        chain.add_object_factory(Arc::new(WrapFactory));
        let name = CompositeName::from("x");
        let env = Environment::new();

        let stored = chain
            .to_stored(BoundValue::str("v"), &name, &env)
            .unwrap();
        assert_eq!(stored.as_str(), Some("wrapped:v"));
        let back = chain.to_object(stored, &name, &env).unwrap();
        assert_eq!(back.as_str(), Some("v"));
    }

    #[test]
    fn factory_chain_passthrough_when_no_taker() {
        let chain = FactoryChain::new();
        let name = CompositeName::from("x");
        let env = Environment::new();
        let v = chain.to_stored(BoundValue::I64(3), &name, &env).unwrap();
        assert_eq!(v, BoundValue::I64(3));
        let v = chain.to_object(BoundValue::I64(3), &name, &env).unwrap();
        assert_eq!(v, BoundValue::I64(3));
    }
}
