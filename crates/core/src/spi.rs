//! The Service Provider Interface.
//!
//! * [`UrlContextFactory`] — one per URL scheme; turns `jini://host` into a
//!   live provider context. The [`ProviderRegistry`] maps schemes to
//!   factories (JNDI's `NamingManager` + `Context.URL_PKG_PREFIXES`
//!   machinery, without the classpath scanning).
//! * [`StateFactory`] / [`ObjectFactory`] — the translation layer the paper
//!   uses to store generic name→value mappings in backends that were never
//!   designed for them (§5.1 "State and Object Factories"): a state factory
//!   converts the application object into the provider's storable form on
//!   `bind`, and an object factory reverses the transformation on `lookup`.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use rndi_obs::metrics::names;
use rndi_obs::{SpanOutcome, SpanRecord, TraceCtx};

use crate::attrs::{AttrMod, Attributes};
use crate::context::{Binding, Context, DirContext, NameClassPair, SearchControls, SearchItem};
use crate::env::{keys, Environment};
use crate::error::{NamingError, Result};
use crate::event::{EventHub, ListenerHandle, NamingEvent, NamingListener};
use crate::filter::Filter;
use crate::lease::{LeaseClock, SystemLeaseClock};
use crate::name::{CompositeName, CompoundSyntax};
use crate::op::{codec, NamingOp, OpKind, OpOutcome, OpPayload, ALL_OP_KINDS};
use crate::url::RndiUrl;
use crate::value::BoundValue;

/// Creates provider contexts for one URL scheme.
pub trait UrlContextFactory: Send + Sync {
    /// The scheme this factory serves, lower-case (e.g. `"jini"`).
    fn scheme(&self) -> &str;

    /// Create a context rooted at the URL's authority. The URL's path is
    /// *not* resolved here — the federation driver does that — so factories
    /// only inspect `url.host` / `url.port`.
    fn create(&self, url: &RndiUrl, env: &Environment) -> Result<Arc<dyn DirContext>>;
}

/// Scheme → factory table.
#[derive(Default)]
pub struct ProviderRegistry {
    factories: RwLock<HashMap<String, Arc<dyn UrlContextFactory>>>,
}

impl ProviderRegistry {
    pub fn new() -> Self {
        ProviderRegistry::default()
    }

    /// Register a factory under its scheme, replacing any previous one.
    pub fn register(&self, factory: Arc<dyn UrlContextFactory>) {
        self.factories
            .write()
            .insert(factory.scheme().to_ascii_lowercase(), factory);
    }

    /// Remove the factory for `scheme`.
    pub fn unregister(&self, scheme: &str) {
        self.factories.write().remove(&scheme.to_ascii_lowercase());
    }

    /// Find the factory for `scheme`.
    pub fn get(&self, scheme: &str) -> Result<Arc<dyn UrlContextFactory>> {
        self.factories
            .read()
            .get(&scheme.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| NamingError::NoProvider {
                scheme: scheme.to_string(),
            })
    }

    /// Registered schemes, sorted.
    pub fn schemes(&self) -> Vec<String> {
        let mut v: Vec<String> = self.factories.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Create a context for a URL by dispatching on its scheme.
    pub fn create_context(&self, url: &RndiUrl, env: &Environment) -> Result<Arc<dyn DirContext>> {
        self.get(&url.scheme)?.create(url, env)
    }
}

/// Converts application objects into a provider-storable form on bind.
pub trait StateFactory: Send + Sync {
    /// Return `Ok(Some(_))` to take responsibility for the conversion,
    /// `Ok(None)` to pass to the next factory in the chain.
    fn get_state_to_bind(
        &self,
        value: &BoundValue,
        name: &CompositeName,
        env: &Environment,
    ) -> Result<Option<BoundValue>>;
}

/// Reconstructs application objects from the stored form on lookup.
pub trait ObjectFactory: Send + Sync {
    /// Return `Ok(Some(_))` to take responsibility for the conversion,
    /// `Ok(None)` to pass to the next factory in the chain.
    fn get_object_instance(
        &self,
        stored: &BoundValue,
        name: &CompositeName,
        env: &Environment,
    ) -> Result<Option<BoundValue>>;
}

/// An ordered chain of state/object factories; the first factory that
/// accepts wins, and with no taker the value passes through unchanged.
#[derive(Default, Clone)]
pub struct FactoryChain {
    state: Vec<Arc<dyn StateFactory>>,
    object: Vec<Arc<dyn ObjectFactory>>,
}

impl FactoryChain {
    pub fn new() -> Self {
        FactoryChain::default()
    }

    pub fn add_state_factory(&mut self, f: Arc<dyn StateFactory>) {
        self.state.push(f);
    }

    pub fn add_object_factory(&mut self, f: Arc<dyn ObjectFactory>) {
        self.object.push(f);
    }

    /// Apply the state-factory chain (bind direction).
    pub fn to_stored(
        &self,
        value: BoundValue,
        name: &CompositeName,
        env: &Environment,
    ) -> Result<BoundValue> {
        for f in &self.state {
            if let Some(converted) = f.get_state_to_bind(&value, name, env)? {
                return Ok(converted);
            }
        }
        Ok(value)
    }

    /// Apply the object-factory chain (lookup direction).
    pub fn to_object(
        &self,
        stored: BoundValue,
        name: &CompositeName,
        env: &Environment,
    ) -> Result<BoundValue> {
        for f in &self.object {
            if let Some(converted) = f.get_object_instance(&stored, name, env)? {
                return Ok(converted);
            }
        }
        Ok(stored)
    }
}

// ====================================================================
// The provider pipeline: reified ops through composable interceptors.
// ====================================================================

/// How a backend stores values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFormat {
    /// The backend keeps live [`BoundValue`]s (in-memory contexts); the
    /// marshalling layer stays out of the way.
    Native,
    /// The backend stores opaque bytes; the pipeline's marshalling layer
    /// encodes bind payloads before they reach [`ProviderBackend::execute`]
    /// and decodes [`OpOutcome::Wire`] results on the way back.
    Encoded,
}

/// The slim surface a provider implements: execute one reified operation.
///
/// Everything else — the full `Context`/`DirContext` trait surface, stats,
/// retries, caching, marshalling — is recovered generically by routing ops
/// through a [`ProviderPipeline`], so cross-cutting concerns are written
/// once instead of once per provider.
pub trait ProviderBackend: Send + Sync {
    /// Execute one operation against the backing naming service.
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome>;

    /// Identifies the provider instance (diagnostics, telemetry labels).
    fn provider_id(&self) -> String {
        "anonymous".to_string()
    }

    /// The syntax of this provider's compound name components.
    fn compound_syntax(&self) -> CompoundSyntax {
        CompoundSyntax::path()
    }

    /// The provider's event hub, if it has one. The pipeline's cache layer
    /// subscribes here so naming events invalidate stale entries.
    fn event_hub(&self) -> Option<Arc<EventHub>> {
        None
    }

    /// Whether this backend stores live values or marshalled bytes.
    fn wire_format(&self) -> WireFormat {
        WireFormat::Native
    }
}

/// The continuation an [`Interceptor`] calls to pass the op down the stack.
pub trait OpInvoker {
    fn invoke(&self, op: &NamingOp) -> Result<OpOutcome>;
}

/// Tower-style middleware around [`ProviderBackend::execute`].
pub trait Interceptor: Send + Sync {
    /// A short layer name for telemetry ("stats", "retry", "cache", …).
    fn layer(&self) -> &'static str;

    /// Handle `op`, typically delegating to `next.invoke(..)` zero (cache
    /// hit), one (pass-through), or several (retry) times.
    fn call(&self, op: &NamingOp, next: &dyn OpInvoker) -> Result<OpOutcome>;
}

/// One frame of the interceptor stack during a call.
struct Chain<'a, B: ProviderBackend + ?Sized> {
    stack: &'a [Arc<dyn Interceptor>],
    backend: &'a B,
}

impl<B: ProviderBackend + ?Sized> OpInvoker for Chain<'_, B> {
    fn invoke(&self, op: &NamingOp) -> Result<OpOutcome> {
        match self.stack.split_first() {
            Some((head, rest)) => head.call(
                op,
                &Chain {
                    stack: rest,
                    backend: self.backend,
                },
            ),
            None => self.backend.execute(op),
        }
    }
}

// ------------------------------------------------------------- stats --

/// Per-kind operation counters and latency totals.
#[derive(Default)]
struct OpStat {
    ops: AtomicU64,
    errors: AtomicU64,
    nanos: AtomicU64,
}

/// Pipeline-wide per-op-kind statistics (lock-free counters).
pub struct PipelineStats {
    per_kind: [OpStat; 16],
}

/// One row of a [`PipelineStats`] snapshot.
#[derive(Clone, Copy, Debug)]
pub struct OpKindStat {
    pub kind: OpKind,
    pub ops: u64,
    pub errors: u64,
    pub total: Duration,
}

impl PipelineStats {
    pub fn new() -> Self {
        PipelineStats {
            per_kind: std::array::from_fn(|_| OpStat::default()),
        }
    }

    fn record(&self, kind: OpKind, took: Duration, ok: bool) {
        let s = &self.per_kind[kind.index()];
        s.ops.fetch_add(1, Ordering::Relaxed);
        s.nanos.fetch_add(
            took.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        if !ok {
            s.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Per-kind rows with traffic, in stable order.
    pub fn snapshot(&self) -> Vec<OpKindStat> {
        ALL_OP_KINDS
            .iter()
            .filter_map(|&kind| {
                let s = &self.per_kind[kind.index()];
                let ops = s.ops.load(Ordering::Relaxed);
                (ops > 0).then(|| OpKindStat {
                    kind,
                    ops,
                    errors: s.errors.load(Ordering::Relaxed),
                    total: Duration::from_nanos(s.nanos.load(Ordering::Relaxed)),
                })
            })
            .collect()
    }

    /// Total operations across all kinds.
    pub fn total_ops(&self) -> u64 {
        self.per_kind
            .iter()
            .map(|s| s.ops.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for PipelineStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Records per-op latency and throughput counters. Federation `Continue`
/// results are control flow, not failures, and count as successes.
pub struct StatsInterceptor {
    stats: Arc<PipelineStats>,
}

impl StatsInterceptor {
    pub fn new(stats: Arc<PipelineStats>) -> Self {
        StatsInterceptor { stats }
    }

    pub fn stats(&self) -> Arc<PipelineStats> {
        self.stats.clone()
    }
}

impl Interceptor for StatsInterceptor {
    fn layer(&self) -> &'static str {
        "stats"
    }

    fn call(&self, op: &NamingOp, next: &dyn OpInvoker) -> Result<OpOutcome> {
        let start = Instant::now();
        let result = next.invoke(op);
        let ok = match &result {
            Ok(_) => true,
            Err(e) => e.is_continue(),
        };
        self.stats.record(op.kind, start.elapsed(), ok);
        result
    }
}

// ------------------------------------------------------------- retry --

/// Whether a retry of the same op could plausibly succeed: transport and
/// service hiccups, deadline misses, and load shedding all clear on their
/// own; everything else is a semantic answer retrying cannot change.
pub fn is_transient(e: &NamingError) -> bool {
    matches!(
        e,
        NamingError::ServiceFailure { .. }
            | NamingError::Timeout { .. }
            | NamingError::Overloaded { .. }
    )
}

/// Retries transient backend failures (`ServiceFailure`/`Timeout`/
/// `Overloaded`) with exponential backoff — except that an `Overloaded`
/// rejection's own `retry_after_ms` hint (plus jitter, so a shed client
/// swarm does not re-arrive in lockstep) replaces the exponential delay.
/// Permanent errors — including federation `Continue` — propagate
/// immediately. With a deadline budget set, retrying (and the backoff
/// sleep before it) is skipped once the budget would be exhausted:
/// retrying a doomed op only amplifies overload.
pub struct RetryInterceptor {
    max_attempts: u32,
    base_backoff: Duration,
    /// Total time box across all attempts and backoffs; `None` = unbounded.
    budget: Option<Duration>,
    retries: AtomicU64,
    /// Mirror of `retries` in the process-wide metrics registry.
    metric: Option<Arc<rndi_obs::Counter>>,
    sleeper: Box<dyn Fn(Duration) + Send + Sync>,
}

impl RetryInterceptor {
    pub fn new(max_attempts: u32, base_backoff: Duration) -> Self {
        Self::with_sleeper(max_attempts, base_backoff, Box::new(std::thread::sleep))
    }

    /// Inject the backoff sleeper (tests record instead of sleeping).
    pub fn with_sleeper(
        max_attempts: u32,
        base_backoff: Duration,
        sleeper: Box<dyn Fn(Duration) + Send + Sync>,
    ) -> Self {
        RetryInterceptor {
            max_attempts: max_attempts.max(1),
            base_backoff,
            budget: None,
            retries: AtomicU64::new(0),
            metric: None,
            sleeper,
        }
    }

    /// Time box the whole retry loop: once `budget` has elapsed since the
    /// op entered this layer, no further sleep or attempt happens and the
    /// last error propagates. `0` means unbounded.
    pub fn with_deadline_budget(mut self, budget_ms: u64) -> Self {
        self.budget = (budget_ms > 0).then(|| Duration::from_millis(budget_ms));
        self
    }

    /// Also count retries into the process-wide `rndi_retries_total`
    /// family, labelled by provider.
    pub fn with_metrics(mut self, provider: &str) -> Self {
        self.metric = Some(rndi_obs::metrics::counter(
            names::RETRIES,
            &[("provider", provider)],
        ));
        self
    }

    /// Total retries performed (attempts beyond the first).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
}

impl Interceptor for RetryInterceptor {
    fn layer(&self) -> &'static str {
        "retry"
    }

    fn call(&self, op: &NamingOp, next: &dyn OpInvoker) -> Result<OpOutcome> {
        let started = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            let result = if attempt == 0 {
                next.invoke(op)
            } else {
                let mut annotated = op.clone();
                annotated.meta.set("retry.attempt", attempt.to_string());
                next.invoke(&annotated)
            };
            match result {
                Err(ref e) if is_transient(e) && attempt + 1 < self.max_attempts => {
                    // A shed server says how long to stay away; otherwise
                    // back off exponentially. Jitter both so a swarm of
                    // shed clients does not re-arrive in lockstep.
                    let base = match e {
                        NamingError::Overloaded { retry_after_ms } => {
                            Duration::from_millis(*retry_after_ms)
                        }
                        _ => self.base_backoff * 2u32.saturating_pow(attempt),
                    };
                    let delay = base + jitter(base);
                    if let Some(budget) = self.budget {
                        // Retrying past the op's deadline can't help the
                        // caller and keeps load on a struggling backend;
                        // skip the sleep too and fail now.
                        if started.elapsed() + delay >= budget {
                            return result;
                        }
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = &self.metric {
                        m.inc();
                    }
                    (self.sleeper)(delay);
                    attempt += 1;
                }
                other => return other,
            }
        }
    }
}

/// Up to 25% of `base`, from the clock's subsecond nanos — decorrelation,
/// not cryptography.
fn jitter(base: Duration) -> Duration {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    base.mul_f64((nanos % 1024) as f64 / 4096.0)
}

// ------------------------------------------------------------- cache --

enum CachedResult {
    Outcome(OpOutcome),
    /// Federation continuations are stable mount resolutions — caching
    /// them spares the upstream system a hop on every federated lookup.
    Continue {
        resolved: BoundValue,
        remaining: CompositeName,
    },
}

struct CacheEntry {
    result: CachedResult,
    expires_ms: u64,
    /// Recency stamp: the key's position in [`CacheMap::recency`].
    tick: u64,
}

/// Default [`CacheInterceptor`] capacity (entries), overridable via
/// [`keys::CACHE_MAX_ENTRIES`].
pub const DEFAULT_CACHE_MAX_ENTRIES: usize = 4096;

/// The map plus an LRU order over its keys. `recency` maps a monotonically
/// increasing tick to the key touched at that tick; each key owns exactly
/// one tick (its entry's `tick`), so the `recency` minimum is always the
/// least-recently-used key.
#[derive(Default)]
struct CacheMap {
    map: HashMap<String, CacheEntry>,
    recency: BTreeMap<u64, String>,
    next_tick: u64,
}

impl CacheMap {
    fn touch(&mut self, key: &str) {
        let Some(entry) = self.map.get_mut(key) else {
            return;
        };
        self.recency.remove(&entry.tick);
        entry.tick = self.next_tick;
        self.recency.insert(self.next_tick, key.to_string());
        self.next_tick += 1;
    }

    fn remove(&mut self, key: &str) -> Option<CacheEntry> {
        let entry = self.map.remove(key)?;
        self.recency.remove(&entry.tick);
        Some(entry)
    }

    /// Insert, evicting least-recently-used entries past `max_entries`
    /// (`0` = unbounded). Returns how many entries were evicted.
    fn insert(&mut self, key: String, result: CachedResult, expires_ms: u64, max: usize) -> u64 {
        self.remove(&key);
        let mut evicted = 0;
        if max > 0 {
            while self.map.len() >= max {
                let (_, lru) = self.recency.pop_first().expect("map non-empty");
                self.map.remove(&lru);
                evicted += 1;
            }
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.recency.insert(tick, key.clone());
        self.map.insert(
            key,
            CacheEntry {
                result,
                expires_ms,
                tick,
            },
        );
        evicted
    }
}

/// Read-through lookup cache with TTL expiry and a max-entries LRU bound.
/// Entries are invalidated by mutations flowing through the pipeline and
/// by the provider's own naming events (subscribe via
/// [`CacheInterceptor::listener`] or let [`ProviderPipeline::standard`]
/// wire it to the backend's hub).
pub struct CacheInterceptor {
    ttl_ms: u64,
    max_entries: usize,
    /// Grace window past expiry during which an entry may still be served
    /// if the backend reports `Overloaded`; `0` disables serve-stale.
    serve_stale_ms: u64,
    clock: Arc<dyn LeaseClock>,
    entries: Mutex<CacheMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    stale_serves: AtomicU64,
    /// Mirrors of the counters above in the process-wide metrics registry
    /// (`rndi_cache_events_total{provider,event}`), in the same order:
    /// hit, miss, invalidation, eviction, stale.
    metrics: Option<[Arc<rndi_obs::Counter>; 5]>,
}

impl CacheInterceptor {
    pub fn new(ttl_ms: u64) -> Self {
        Self::with_clock(ttl_ms, Arc::new(SystemLeaseClock::new()))
    }

    pub fn with_clock(ttl_ms: u64, clock: Arc<dyn LeaseClock>) -> Self {
        CacheInterceptor {
            ttl_ms,
            max_entries: DEFAULT_CACHE_MAX_ENTRIES,
            serve_stale_ms: 0,
            clock,
            entries: Mutex::new(CacheMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_serves: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Builder-style capacity bound; `0` means unbounded.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries;
        self
    }

    /// Builder-style serve-stale grace window: when the backend sheds a
    /// lookup with `Overloaded`, an entry expired less than this many
    /// milliseconds ago is served instead of the error. `0` (the default)
    /// propagates the rejection. Mutations still invalidate, so a stale
    /// serve is never staler than TTL + grace.
    pub fn with_serve_stale_ms(mut self, serve_stale_ms: u64) -> Self {
        self.serve_stale_ms = serve_stale_ms;
        self
    }

    /// Also count cache events into the process-wide
    /// `rndi_cache_events_total` family, labelled by provider.
    pub fn with_metrics(mut self, provider: &str) -> Self {
        let mk = |event: &str| {
            rndi_obs::metrics::counter(
                names::CACHE_EVENTS,
                &[("provider", provider), ("event", event)],
            )
        };
        self.metrics = Some([
            mk("hit"),
            mk("miss"),
            mk("invalidation"),
            mk("eviction"),
            mk("stale"),
        ]);
        self
    }

    fn metric_add(&self, slot: usize, n: u64) {
        if let Some(m) = &self.metrics {
            m[slot].add(n);
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Entries dropped by the LRU capacity bound (distinct from
    /// invalidations, which are correctness-driven).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Expired entries served in place of an `Overloaded` rejection.
    pub fn stale_serves(&self) -> u64 {
        self.stale_serves.load(Ordering::Relaxed)
    }

    /// Live entry count (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop entries at, under, or above `name` (a changed mount affects
    /// everything resolved through it, in both directions).
    fn invalidate(&self, name: &str) {
        let mut entries = self.entries.lock();
        let doomed: Vec<String> = entries
            .map
            .keys()
            .filter(|key| {
                name.is_empty()
                    || *key == name
                    || key.starts_with(&format!("{name}/"))
                    || name.starts_with(&format!("{key}/"))
            })
            .cloned()
            .collect();
        for key in &doomed {
            entries.remove(key);
        }
        if !doomed.is_empty() {
            self.invalidations
                .fetch_add(doomed.len() as u64, Ordering::Relaxed);
            self.metric_add(2, doomed.len() as u64);
        }
    }
}

impl NamingListener for CacheInterceptor {
    fn on_event(&self, event: &NamingEvent) {
        self.invalidate(&event.name.to_string());
    }
}

impl Interceptor for CacheInterceptor {
    fn layer(&self) -> &'static str {
        "cache"
    }

    fn call(&self, op: &NamingOp, next: &dyn OpInvoker) -> Result<OpOutcome> {
        if op.kind.is_mutation() {
            let result = next.invoke(op);
            // Invalidate even on failure: a timed-out write may have
            // landed, so serving the old cached value would be wrong.
            self.invalidate(&op.name.to_string());
            if let OpPayload::NewName(new) = &op.payload {
                self.invalidate(&new.to_string());
            }
            return result;
        }
        if op.kind != OpKind::Lookup {
            return next.invoke(op);
        }

        let key = op.name.to_string();
        let now = self.clock.now_ms();
        {
            let mut entries = self.entries.lock();
            let fresh = entries
                .map
                .get(&key)
                .is_some_and(|entry| entry.expires_ms > now);
            if fresh {
                entries.touch(&key);
                let entry = entries.map.get(&key).expect("checked above");
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.metric_add(0, 1);
                return match &entry.result {
                    CachedResult::Outcome(out) => Ok(out.clone()),
                    CachedResult::Continue {
                        resolved,
                        remaining,
                    } => Err(NamingError::Continue {
                        resolved: resolved.clone(),
                        remaining: remaining.clone(),
                    }),
                };
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.metric_add(1, 1);
        let result = next.invoke(op);
        if self.serve_stale_ms > 0 {
            if let Err(e) = &result {
                if e.is_overloaded() {
                    // Degrade gracefully: an entry expired less than the
                    // grace window ago beats an error while the backend
                    // sheds load. Expired entries linger in the map until
                    // overwritten or invalidated, so it is still here.
                    let mut entries = self.entries.lock();
                    let within_grace = entries.map.get(&key).is_some_and(|entry| {
                        entry.expires_ms.saturating_add(self.serve_stale_ms) > now
                    });
                    if within_grace {
                        entries.touch(&key);
                        let entry = entries.map.get(&key).expect("checked above");
                        self.stale_serves.fetch_add(1, Ordering::Relaxed);
                        self.metric_add(4, 1);
                        return match &entry.result {
                            CachedResult::Outcome(out) => Ok(out.clone()),
                            CachedResult::Continue {
                                resolved,
                                remaining,
                            } => Err(NamingError::Continue {
                                resolved: resolved.clone(),
                                remaining: remaining.clone(),
                            }),
                        };
                    }
                }
            }
        }
        let cached = match &result {
            Ok(out) => Some(CachedResult::Outcome(out.clone())),
            Err(NamingError::Continue {
                resolved,
                remaining,
            }) => Some(CachedResult::Continue {
                resolved: resolved.clone(),
                remaining: remaining.clone(),
            }),
            Err(_) => None,
        };
        if let Some(result) = cached {
            let evicted = self.entries.lock().insert(
                key,
                result,
                now.saturating_add(self.ttl_ms),
                self.max_entries,
            );
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                self.metric_add(3, evicted);
            }
        }
        result
    }
}

// ---------------------------------------------------------- marshal --

/// The marshalling layer, lifted out of the providers: encodes bind
/// payloads into wire bytes before they reach an [`WireFormat::Encoded`]
/// backend (rejecting live contexts early, and encoding once per op rather
/// than once per retry), and decodes [`OpOutcome::Wire`] results.
pub struct MarshalInterceptor;

impl Interceptor for MarshalInterceptor {
    fn layer(&self) -> &'static str {
        "marshal"
    }

    fn call(&self, op: &NamingOp, next: &dyn OpInvoker) -> Result<OpOutcome> {
        let result = if op.kind.carries_value() {
            if let OpPayload::Value(v) = &op.payload {
                let bytes = codec::marshal(v)?;
                let mut encoded = op.clone();
                encoded.payload = OpPayload::Wire {
                    bytes,
                    class_name: v.class_name().to_string(),
                };
                next.invoke(&encoded)
            } else {
                next.invoke(op)
            }
        } else {
            next.invoke(op)
        };
        result.map(|out| match out {
            OpOutcome::Wire(bytes) => OpOutcome::Value(codec::unmarshal(&bytes)),
            other => other,
        })
    }
}

// --------------------------------------------------------------- obs --

/// The observability layer.
///
/// Each call derives a child [`TraceCtx`] from the op's annotation (or
/// mints a fresh root when the op enters untraced), re-annotates the op so
/// layers below — and, through [`NamingOp::with_name`] and the wire frame,
/// federation hops and remote servers — join the same trace, then records
/// one finished [`SpanRecord`] plus the `rndi_ops_total` /
/// `rndi_op_duration_ns` instruments for `(provider, op, layer)`.
///
/// [`ProviderPipeline::standard`] installs two instances: one outermost
/// (`layer="pipeline"`, the op as the caller sees it, cache hits included)
/// and one innermost (`layer="backend"`, the backend round-trip only), so
/// the gap between the two histograms is middleware + queueing time.
/// Instrument handles are resolved once per pipeline at construction; the
/// per-op cost is a trace-cell write, a few atomics, and a ring push.
pub struct ObsInterceptor {
    provider: Arc<str>,
    position: &'static str,
    durations: [Arc<rndi_obs::Histogram>; 16],
    outcomes: [[Arc<rndi_obs::Counter>; 3]; 16],
}

impl ObsInterceptor {
    pub fn new(provider: &str, position: &'static str) -> Self {
        let durations = std::array::from_fn(|i| {
            rndi_obs::metrics::histogram(
                names::OP_DURATION,
                &[
                    ("provider", provider),
                    ("op", ALL_OP_KINDS[i].label()),
                    ("layer", position),
                ],
            )
        });
        let outcomes = std::array::from_fn(|i| {
            let mk = |outcome: &str| {
                rndi_obs::metrics::counter(
                    names::OPS_TOTAL,
                    &[
                        ("provider", provider),
                        ("op", ALL_OP_KINDS[i].label()),
                        ("layer", position),
                        ("outcome", outcome),
                    ],
                )
            };
            [mk("ok"), mk("err"), mk("continue")]
        });
        // Calibrate the span clock at assembly time, not on the first op.
        rndi_obs::clock::init();
        ObsInterceptor {
            provider: Arc::from(provider),
            position,
            durations,
            outcomes,
        }
    }
}

impl Interceptor for ObsInterceptor {
    fn layer(&self) -> &'static str {
        self.position
    }

    fn call(&self, op: &NamingOp, next: &dyn OpInvoker) -> Result<OpOutcome> {
        let ctx = match op.trace_ctx() {
            Some(parent) => parent.child(),
            None => TraceCtx::root(),
        };
        // Annotate in place through the op's trace cell (restoring the
        // caller's view on exit) — re-annotation must not clone the op.
        let saved = op.trace.get();
        op.trace.set(&ctx);
        let start = rndi_obs::clock::now_ns();
        let result = next.invoke(op);
        let took = Duration::from_nanos(rndi_obs::clock::now_ns().saturating_sub(start));
        op.trace.restore(saved);
        let (slot, outcome) = match &result {
            Ok(_) => (0, SpanOutcome::Ok),
            Err(e) if e.is_continue() => (2, SpanOutcome::Continue),
            Err(_) => (1, SpanOutcome::Err),
        };
        let k = op.kind.index();
        self.durations[k].record_duration(took);
        self.outcomes[k][slot].inc();
        // Feed the flight recorder from the outermost layer only, so each
        // op counts once toward trailing-p99 and error-rate windows. The
        // unarmed path is a single relaxed atomic load.
        if self.position == "pipeline" {
            rndi_obs::recorder::observe(
                &self.provider,
                op.kind.label(),
                took.as_nanos() as u64,
                slot == 1,
            );
        }
        rndi_obs::trace::record(SpanRecord::new(
            &ctx,
            self.position,
            self.provider.clone(),
            op.kind.label(),
            outcome,
            took,
        ));
        result
    }
}

// ----------------------------------------------------------- pipeline --

/// An ordered interceptor stack in front of a [`ProviderBackend`].
///
/// The pipeline itself implements [`Context`] and [`DirContext`] — that is
/// how providers recover the full JNDI surface from their slim backend —
/// and `Deref`s to the backend so provider-specific methods (lease polling,
/// event draining…) stay reachable on the wrapped value.
pub struct ProviderPipeline<B: ProviderBackend + ?Sized = dyn ProviderBackend> {
    interceptors: Vec<Arc<dyn Interceptor>>,
    stats: Option<Arc<PipelineStats>>,
    cache: Option<Arc<CacheInterceptor>>,
    retry: Option<Arc<RetryInterceptor>>,
    backend: Arc<B>,
}

impl<B: ProviderBackend + ?Sized> ProviderPipeline<B> {
    /// An empty stack: pure dispatch, no middleware.
    pub fn bare(backend: Arc<B>) -> Arc<Self> {
        Arc::new(ProviderPipeline {
            interceptors: Vec::new(),
            stats: None,
            cache: None,
            retry: None,
            backend,
        })
    }

    /// A custom stack, outermost interceptor first.
    pub fn with_stack(backend: Arc<B>, interceptors: Vec<Arc<dyn Interceptor>>) -> Arc<Self> {
        Arc::new(ProviderPipeline {
            interceptors,
            stats: None,
            cache: None,
            retry: None,
            backend,
        })
    }

    /// The standard stack: obs → stats → retry → cache → marshalling →
    /// obs → backend.
    ///
    /// Stats always record. Retry engages when
    /// [`keys::RETRY_MAX_ATTEMPTS`] > 1 and the cache when
    /// [`keys::CACHE_TTL_MS`] > 0, so default environments preserve
    /// single-shot, uncached semantics. The marshalling layer joins for
    /// [`WireFormat::Encoded`] backends. The cache subscribes to the
    /// backend's event hub for invalidation.
    ///
    /// The two [`ObsInterceptor`] instances (outermost `"pipeline"`,
    /// innermost `"backend"`) engage unless [`keys::OBS_ENABLED`] is
    /// `false`; [`keys::OBS_TRACE_FILE`] additionally streams finished
    /// spans to a JSONL file and [`keys::OBS_RING_CAPACITY`] resizes the
    /// process-wide span ring.
    pub fn standard(backend: Arc<B>, env: &Environment) -> Arc<Self> {
        let provider_label = backend.provider_id();
        let obs = env.get_bool(keys::OBS_ENABLED, true);
        if obs {
            if let Some(path) = env.get(keys::OBS_TRACE_FILE) {
                rndi_obs::trace::install_jsonl(path);
            }
            let ring_capacity = env.get_u64(keys::OBS_RING_CAPACITY, 0);
            if ring_capacity > 0 {
                rndi_obs::trace::ring().set_capacity(ring_capacity as usize);
            }
            let max_series = env.get_u64(keys::OBS_MAX_SERIES, 0);
            if max_series > 0 {
                rndi_obs::metrics::set_max_series(max_series as usize);
            }
            if let Some(dir) = env.get(keys::OBS_FLIGHT_DIR) {
                let defaults = rndi_obs::FlightConfig::default();
                rndi_obs::recorder::arm(rndi_obs::FlightConfig {
                    dir: dir.to_string(),
                    p99_multiple: env.get_u64(keys::OBS_FLIGHT_P99_MULT, defaults.p99_multiple),
                    min_samples: env.get_u64(keys::OBS_FLIGHT_MIN_SAMPLES, defaults.min_samples),
                    err_rate_pct: env.get_u64(keys::OBS_FLIGHT_ERR_PCT, defaults.err_rate_pct),
                    ..defaults
                });
            }
        }

        let stats = Arc::new(PipelineStats::new());
        let mut stack: Vec<Arc<dyn Interceptor>> = Vec::new();
        if obs {
            stack.push(Arc::new(ObsInterceptor::new(&provider_label, "pipeline")));
        }
        stack.push(Arc::new(StatsInterceptor::new(stats.clone())));

        let max_attempts = env.get_u64(keys::RETRY_MAX_ATTEMPTS, 1);
        let retry = (max_attempts > 1).then(|| {
            // Time-box the loop by the op's network deadline, so retries
            // never outlive the budget the caller is still waiting on.
            let retry = RetryInterceptor::new(
                max_attempts as u32,
                Duration::from_millis(env.get_u64(keys::RETRY_BACKOFF_MS, 5)),
            )
            .with_deadline_budget(env.get_u64(keys::NET_DEADLINE_MS, 0));
            Arc::new(if obs {
                retry.with_metrics(&provider_label)
            } else {
                retry
            })
        });
        if let Some(r) = &retry {
            stack.push(r.clone());
        }

        let ttl_ms = env.get_u64(keys::CACHE_TTL_MS, 0);
        let max_entries =
            env.get_u64(keys::CACHE_MAX_ENTRIES, DEFAULT_CACHE_MAX_ENTRIES as u64) as usize;
        let cache = (ttl_ms > 0).then(|| {
            let cache = CacheInterceptor::new(ttl_ms)
                .with_max_entries(max_entries)
                .with_serve_stale_ms(env.get_u64(keys::CACHE_SERVE_STALE_MS, 0));
            Arc::new(if obs {
                cache.with_metrics(&provider_label)
            } else {
                cache
            })
        });
        if let Some(c) = &cache {
            if let Some(hub) = backend.event_hub() {
                hub.subscribe(CompositeName::empty(), c.clone());
            }
            stack.push(c.clone());
        }

        if backend.wire_format() == WireFormat::Encoded {
            stack.push(Arc::new(MarshalInterceptor));
        }
        // A backend-position span only earns its keep when a layer that
        // can swallow or repeat backend calls sits above it — then the
        // pipeline span and the backend span genuinely measure different
        // things (a cache hit has no backend span; a retried op has
        // several). In the plain stack the two would bracket the same
        // interval, so skip the duplicate and keep the hot path at one
        // obs layer per pipeline.
        if obs && (retry.is_some() || cache.is_some()) {
            stack.push(Arc::new(ObsInterceptor::new(&provider_label, "backend")));
        }

        let pipeline = Arc::new(ProviderPipeline {
            interceptors: stack,
            stats: Some(stats),
            cache,
            retry,
            backend,
        });
        telemetry::register(&*pipeline);
        pipeline
    }

    /// Run one reified op through the stack.
    pub fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        Chain {
            stack: &self.interceptors,
            backend: self.backend.as_ref(),
        }
        .invoke(op)
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &Arc<B> {
        &self.backend
    }

    /// The stats handle, when the stack records them.
    pub fn stats(&self) -> Option<Arc<PipelineStats>> {
        self.stats.clone()
    }

    /// The cache layer, when installed.
    pub fn cache(&self) -> Option<Arc<CacheInterceptor>> {
        self.cache.clone()
    }

    /// The retry layer, when installed.
    pub fn retry(&self) -> Option<Arc<RetryInterceptor>> {
        self.retry.clone()
    }
}

/// A pipeline is itself a backend, so transports (and other hosts that
/// speak reified ops) can serve a fully-assembled interceptor stack: the
/// host dispatches into the pipeline and every layer below — cache, retry,
/// obs spans — runs server-side.
impl<B: ProviderBackend + ?Sized> ProviderBackend for ProviderPipeline<B> {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        ProviderPipeline::execute(self, op)
    }

    fn provider_id(&self) -> String {
        self.backend.provider_id()
    }

    fn compound_syntax(&self) -> CompoundSyntax {
        self.backend.compound_syntax()
    }

    fn event_hub(&self) -> Option<Arc<EventHub>> {
        self.backend.event_hub()
    }

    fn wire_format(&self) -> WireFormat {
        // The stack already marshals for encoded backends; callers above
        // the pipeline always see live values.
        WireFormat::Native
    }
}

impl<B: ProviderBackend + ?Sized> std::ops::Deref for ProviderPipeline<B> {
    type Target = B;

    fn deref(&self) -> &B {
        &self.backend
    }
}

impl<B: ProviderBackend + ?Sized> Context for ProviderPipeline<B> {
    fn lookup(&self, name: &CompositeName) -> Result<BoundValue> {
        self.execute(&NamingOp::lookup(name.clone()))?
            .into_value(OpKind::Lookup)
    }

    fn bind(&self, name: &CompositeName, value: BoundValue) -> Result<()> {
        self.execute(&NamingOp::bind(name.clone(), value))?
            .into_done(OpKind::Bind)
    }

    fn rebind(&self, name: &CompositeName, value: BoundValue) -> Result<()> {
        self.execute(&NamingOp::rebind(name.clone(), value))?
            .into_done(OpKind::Rebind)
    }

    fn unbind(&self, name: &CompositeName) -> Result<()> {
        self.execute(&NamingOp::unbind(name.clone()))?
            .into_done(OpKind::Unbind)
    }

    fn rename(&self, old: &CompositeName, new: &CompositeName) -> Result<()> {
        self.execute(&NamingOp::rename(old.clone(), new.clone()))?
            .into_done(OpKind::Rename)
    }

    fn list(&self, name: &CompositeName) -> Result<Vec<NameClassPair>> {
        self.execute(&NamingOp::list(name.clone()))?
            .into_names(OpKind::List)
    }

    fn list_bindings(&self, name: &CompositeName) -> Result<Vec<Binding>> {
        self.execute(&NamingOp::list_bindings(name.clone()))?
            .into_bindings(OpKind::ListBindings)
    }

    fn create_subcontext(&self, name: &CompositeName) -> Result<()> {
        self.execute(&NamingOp::create_subcontext(name.clone()))?
            .into_done(OpKind::CreateSubcontext)
    }

    fn destroy_subcontext(&self, name: &CompositeName) -> Result<()> {
        self.execute(&NamingOp::destroy_subcontext(name.clone()))?
            .into_done(OpKind::DestroySubcontext)
    }

    fn add_listener(
        &self,
        name: &CompositeName,
        listener: Arc<dyn NamingListener>,
    ) -> Result<ListenerHandle> {
        self.execute(&NamingOp::add_listener(name.clone(), listener))?
            .into_handle(OpKind::AddListener)
    }

    fn remove_listener(&self, handle: ListenerHandle) -> Result<()> {
        self.execute(&NamingOp::remove_listener(handle))?
            .into_done(OpKind::RemoveListener)
    }

    fn provider_id(&self) -> String {
        self.backend.provider_id()
    }

    fn compound_syntax(&self) -> CompoundSyntax {
        self.backend.compound_syntax()
    }

    fn execute_reified(&self, op: &NamingOp) -> Option<Result<OpOutcome>> {
        // Take annotated ops (trace context above all) into the stack
        // as-is instead of having `op::dispatch` rebuild a bare op via the
        // trait methods above.
        Some(self.execute(op))
    }
}

impl<B: ProviderBackend + ?Sized> DirContext for ProviderPipeline<B> {
    fn get_attributes(&self, name: &CompositeName) -> Result<Attributes> {
        self.execute(&NamingOp::get_attributes(name.clone()))?
            .into_attrs(OpKind::GetAttributes)
    }

    fn modify_attributes(&self, name: &CompositeName, mods: &[AttrMod]) -> Result<()> {
        self.execute(&NamingOp::modify_attributes(name.clone(), mods.to_vec()))?
            .into_done(OpKind::ModifyAttributes)
    }

    fn bind_with_attrs(
        &self,
        name: &CompositeName,
        value: BoundValue,
        attrs: Attributes,
    ) -> Result<()> {
        self.execute(&NamingOp::bind_with_attrs(name.clone(), value, attrs))?
            .into_done(OpKind::BindWithAttrs)
    }

    fn rebind_with_attrs(
        &self,
        name: &CompositeName,
        value: BoundValue,
        attrs: Attributes,
    ) -> Result<()> {
        self.execute(&NamingOp::rebind_with_attrs(name.clone(), value, attrs))?
            .into_done(OpKind::RebindWithAttrs)
    }

    fn search(
        &self,
        name: &CompositeName,
        filter: &Filter,
        controls: &SearchControls,
    ) -> Result<Vec<SearchItem>> {
        self.execute(&NamingOp::search(
            name.clone(),
            filter.clone(),
            controls.clone(),
        ))?
        .into_found(OpKind::Search)
    }
}

/// Adapts any [`DirContext`] into a [`ProviderBackend`], so legacy contexts
/// (the in-memory reference provider, federated facades, test doubles) ride
/// the same reified op path as native backends.
pub struct ContextBackend<C: DirContext + 'static> {
    ctx: Arc<C>,
}

impl<C: DirContext + 'static> ContextBackend<C> {
    pub fn new(ctx: Arc<C>) -> Self {
        ContextBackend { ctx }
    }

    pub fn context(&self) -> &Arc<C> {
        &self.ctx
    }
}

impl<C: DirContext + 'static> ProviderBackend for ContextBackend<C> {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        crate::op::dispatch(self.ctx.as_ref(), op)
    }

    fn provider_id(&self) -> String {
        self.ctx.provider_id()
    }

    fn compound_syntax(&self) -> CompoundSyntax {
        self.ctx.compound_syntax()
    }
}

// ---------------------------------------------------------- telemetry --

/// Process-wide pipeline telemetry, aggregated by provider label — the
/// benches print per-layer op counts and cache hit rates from here without
/// having to thread handles through factories.
pub mod telemetry {
    use super::*;

    struct Registered {
        label: String,
        stats: Arc<PipelineStats>,
        cache: Option<Arc<CacheInterceptor>>,
        retry: Option<Arc<RetryInterceptor>>,
    }

    // parking_lot::Mutex: unlike a std mutex, it cannot be poisoned, so a
    // panicking bench thread no longer cascades into `register`/`snapshot`
    // panics on every later pipeline construction.
    fn registry() -> &'static Mutex<Vec<Registered>> {
        static REGISTRY: OnceLock<Mutex<Vec<Registered>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    pub(super) fn register<B: ProviderBackend + ?Sized>(pipeline: &ProviderPipeline<B>) {
        if let Some(stats) = pipeline.stats() {
            registry().lock().push(Registered {
                label: pipeline.backend().provider_id(),
                stats,
                cache: pipeline.cache(),
                retry: pipeline.retry(),
            });
        }
    }

    /// Cache layer counters.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct CacheCounters {
        pub hits: u64,
        pub misses: u64,
        pub invalidations: u64,
        pub evictions: u64,
    }

    impl CacheCounters {
        pub fn hit_rate(&self) -> f64 {
            let total = self.hits + self.misses;
            if total == 0 {
                0.0
            } else {
                self.hits as f64 / total as f64
            }
        }
    }

    /// Aggregated telemetry for all pipelines sharing one provider label.
    #[derive(Clone, Debug)]
    pub struct PipelineTelemetry {
        pub label: String,
        /// Number of pipeline instances aggregated under this label.
        pub pipelines: usize,
        pub ops: Vec<OpKindStat>,
        /// Present when at least one pipeline carries a cache layer.
        pub cache: Option<CacheCounters>,
        pub retries: u64,
    }

    /// Snapshot every registered pipeline, merged by label, sorted.
    pub fn snapshot() -> Vec<PipelineTelemetry> {
        let mut by_label: std::collections::BTreeMap<String, PipelineTelemetry> =
            Default::default();
        for reg in registry().lock().iter() {
            let entry = by_label
                .entry(reg.label.clone())
                .or_insert_with(|| PipelineTelemetry {
                    label: reg.label.clone(),
                    pipelines: 0,
                    ops: Vec::new(),
                    cache: None,
                    retries: 0,
                });
            entry.pipelines += 1;
            for row in reg.stats.snapshot() {
                match entry.ops.iter_mut().find(|r| r.kind == row.kind) {
                    Some(existing) => {
                        existing.ops += row.ops;
                        existing.errors += row.errors;
                        existing.total += row.total;
                    }
                    None => entry.ops.push(row),
                }
            }
            if let Some(cache) = &reg.cache {
                let c = entry.cache.get_or_insert_with(Default::default);
                c.hits += cache.hits();
                c.misses += cache.misses();
                c.invalidations += cache.invalidations();
                c.evictions += cache.evictions();
            }
            if let Some(retry) = &reg.retry {
                entry.retries += retry.retries();
            }
        }
        by_label.into_values().collect()
    }

    /// Drop all registered handles (test isolation).
    pub fn reset() {
        registry().lock().clear();
    }

    /// Render every registered pipeline's telemetry *and* the process-wide
    /// metrics registry (spans, histograms, provider/server counters) as
    /// one Prometheus-style text exposition. The pipeline families use
    /// names disjoint from the registry's (`rndi_pipeline_*`), so the two
    /// sources concatenate without duplicate samples.
    pub fn render() -> String {
        use rndi_obs::expo::write_sample;

        let mut out = String::new();
        let snap = snapshot();
        if snap.iter().any(|t| !t.ops.is_empty()) {
            out.push_str("# TYPE rndi_pipeline_ops_total counter\n");
            for t in &snap {
                for row in &t.ops {
                    write_sample(
                        &mut out,
                        "rndi_pipeline_ops_total",
                        &[("provider", &t.label), ("op", row.kind.label())],
                        row.ops as f64,
                    );
                }
            }
            out.push_str("# TYPE rndi_pipeline_op_errors_total counter\n");
            for t in &snap {
                for row in &t.ops {
                    write_sample(
                        &mut out,
                        "rndi_pipeline_op_errors_total",
                        &[("provider", &t.label), ("op", row.kind.label())],
                        row.errors as f64,
                    );
                }
            }
            out.push_str("# TYPE rndi_pipeline_op_seconds_total counter\n");
            for t in &snap {
                for row in &t.ops {
                    write_sample(
                        &mut out,
                        "rndi_pipeline_op_seconds_total",
                        &[("provider", &t.label), ("op", row.kind.label())],
                        row.total.as_secs_f64(),
                    );
                }
            }
        }
        if snap.iter().any(|t| t.cache.is_some()) {
            out.push_str("# TYPE rndi_pipeline_cache_events_total counter\n");
            for t in &snap {
                if let Some(c) = &t.cache {
                    for (event, n) in [
                        ("hit", c.hits),
                        ("miss", c.misses),
                        ("invalidation", c.invalidations),
                        ("eviction", c.evictions),
                    ] {
                        write_sample(
                            &mut out,
                            "rndi_pipeline_cache_events_total",
                            &[("provider", &t.label), ("event", event)],
                            n as f64,
                        );
                    }
                }
            }
        }
        if snap.iter().any(|t| t.retries > 0) {
            out.push_str("# TYPE rndi_pipeline_retries_total counter\n");
            for t in &snap {
                write_sample(
                    &mut out,
                    "rndi_pipeline_retries_total",
                    &[("provider", &t.label)],
                    t.retries as f64,
                );
            }
        }
        out.push_str(&rndi_obs::metrics::render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Binding, Context, NameClassPair};

    struct DummyCtx;
    impl Context for DummyCtx {
        fn lookup(&self, n: &CompositeName) -> Result<BoundValue> {
            Err(NamingError::not_found(n.to_string()))
        }
        fn bind(&self, _: &CompositeName, _: BoundValue) -> Result<()> {
            Ok(())
        }
        fn rebind(&self, _: &CompositeName, _: BoundValue) -> Result<()> {
            Ok(())
        }
        fn unbind(&self, _: &CompositeName) -> Result<()> {
            Ok(())
        }
        fn list(&self, _: &CompositeName) -> Result<Vec<NameClassPair>> {
            Ok(vec![])
        }
        fn list_bindings(&self, _: &CompositeName) -> Result<Vec<Binding>> {
            Ok(vec![])
        }
    }
    impl DirContext for DummyCtx {
        fn get_attributes(&self, _: &CompositeName) -> Result<crate::attrs::Attributes> {
            Ok(Default::default())
        }
        fn bind_with_attrs(
            &self,
            _: &CompositeName,
            _: BoundValue,
            _: crate::attrs::Attributes,
        ) -> Result<()> {
            Ok(())
        }
        fn rebind_with_attrs(
            &self,
            _: &CompositeName,
            _: BoundValue,
            _: crate::attrs::Attributes,
        ) -> Result<()> {
            Ok(())
        }
    }

    struct DummyFactory;
    impl UrlContextFactory for DummyFactory {
        fn scheme(&self) -> &str {
            "dummy"
        }
        fn create(&self, _: &RndiUrl, _: &Environment) -> Result<Arc<dyn DirContext>> {
            Ok(Arc::new(DummyCtx))
        }
    }

    #[test]
    fn registry_dispatch() {
        let reg = ProviderRegistry::new();
        reg.register(Arc::new(DummyFactory));
        assert_eq!(reg.schemes(), ["dummy"]);
        let url = RndiUrl::parse("DUMMY://host").unwrap();
        assert!(reg.create_context(&url, &Environment::new()).is_ok());
        assert!(matches!(
            reg.get("nope"),
            Err(NamingError::NoProvider { .. })
        ));
        reg.unregister("dummy");
        assert!(reg.get("dummy").is_err());
    }

    /// Wraps strings on the way in; unwraps on the way out — the same
    /// pattern the Jini provider uses for "fake service stubs".
    struct WrapFactory;
    impl StateFactory for WrapFactory {
        fn get_state_to_bind(
            &self,
            value: &BoundValue,
            _: &CompositeName,
            _: &Environment,
        ) -> Result<Option<BoundValue>> {
            Ok(value
                .as_str()
                .map(|s| BoundValue::Str(format!("wrapped:{s}"))))
        }
    }
    impl ObjectFactory for WrapFactory {
        fn get_object_instance(
            &self,
            stored: &BoundValue,
            _: &CompositeName,
            _: &Environment,
        ) -> Result<Option<BoundValue>> {
            Ok(stored
                .as_str()
                .and_then(|s| s.strip_prefix("wrapped:"))
                .map(BoundValue::str))
        }
    }

    #[test]
    fn factory_chain_roundtrip() {
        let mut chain = FactoryChain::new();
        chain.add_state_factory(Arc::new(WrapFactory));
        chain.add_object_factory(Arc::new(WrapFactory));
        let name = CompositeName::from("x");
        let env = Environment::new();

        let stored = chain.to_stored(BoundValue::str("v"), &name, &env).unwrap();
        assert_eq!(stored.as_str(), Some("wrapped:v"));
        let back = chain.to_object(stored, &name, &env).unwrap();
        assert_eq!(back.as_str(), Some("v"));
    }

    #[test]
    fn factory_chain_passthrough_when_no_taker() {
        let chain = FactoryChain::new();
        let name = CompositeName::from("x");
        let env = Environment::new();
        let v = chain.to_stored(BoundValue::I64(3), &name, &env).unwrap();
        assert_eq!(v, BoundValue::I64(3));
        let v = chain.to_object(BoundValue::I64(3), &name, &env).unwrap();
        assert_eq!(v, BoundValue::I64(3));
    }

    // ---------------------------------------------------- pipeline --

    use crate::lease::ManualClock;

    /// A backend with scriptable failures that counts `execute` calls.
    struct MockBackend {
        calls: AtomicU64,
        transient_failures: AtomicU64,
        permanent_error: bool,
        hub: Arc<EventHub>,
        wire: WireFormat,
        last_payload: Mutex<Option<OpPayload>>,
    }

    impl MockBackend {
        fn new() -> MockBackend {
            MockBackend {
                calls: AtomicU64::new(0),
                transient_failures: AtomicU64::new(0),
                permanent_error: false,
                hub: Arc::new(EventHub::new()),
                wire: WireFormat::Native,
                last_payload: Mutex::new(None),
            }
        }

        fn encoded() -> MockBackend {
            MockBackend {
                wire: WireFormat::Encoded,
                ..MockBackend::new()
            }
        }

        fn flaky(transient_failures: u64) -> MockBackend {
            MockBackend {
                transient_failures: AtomicU64::new(transient_failures),
                ..MockBackend::new()
            }
        }

        fn always_bound() -> MockBackend {
            MockBackend {
                permanent_error: true,
                ..MockBackend::new()
            }
        }

        fn calls(&self) -> u64 {
            self.calls.load(Ordering::Relaxed)
        }
    }

    impl ProviderBackend for MockBackend {
        fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if self.permanent_error {
                return Err(NamingError::already_bound(op.name.to_string()));
            }
            let flaked = self
                .transient_failures
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
            if flaked {
                return Err(NamingError::service("flaky backend"));
            }
            *self.last_payload.lock() = Some(op.payload.clone());
            match op.kind {
                OpKind::Lookup => match self.wire {
                    WireFormat::Native => Ok(OpOutcome::Value(BoundValue::str("v"))),
                    WireFormat::Encoded => {
                        Ok(OpOutcome::Wire(codec::marshal(&BoundValue::str("v"))?))
                    }
                },
                _ => Ok(OpOutcome::Done),
            }
        }

        fn event_hub(&self) -> Option<Arc<EventHub>> {
            Some(self.hub.clone())
        }

        fn wire_format(&self) -> WireFormat {
            self.wire
        }
    }

    fn name(s: &str) -> CompositeName {
        CompositeName::from(s)
    }

    fn no_sleep() -> Box<dyn Fn(Duration) + Send + Sync> {
        Box::new(|_| {})
    }

    #[test]
    fn bare_pipeline_is_pure_dispatch() {
        let backend = Arc::new(MockBackend::new());
        let p = ProviderPipeline::bare(backend.clone());
        assert!(p.stats().is_none() && p.cache().is_none() && p.retry().is_none());
        let v = p.lookup(&name("a")).unwrap();
        assert_eq!(v.as_str(), Some("v"));
        assert_eq!(backend.calls(), 1);
    }

    #[test]
    fn standard_stack_defaults_to_stats_only() {
        let backend = Arc::new(MockBackend::new());
        let p = ProviderPipeline::standard(backend.clone(), &Environment::new());
        assert!(p.stats().is_some());
        assert!(p.cache().is_none(), "cache off without a TTL");
        assert!(p.retry().is_none(), "retry off at 1 attempt");
        p.lookup(&name("a")).unwrap();
        p.lookup(&name("a")).unwrap();
        assert_eq!(
            backend.calls(),
            2,
            "no cache: every lookup hits the backend"
        );
        assert_eq!(p.stats().unwrap().total_ops(), 2);
    }

    #[test]
    fn retry_stops_on_permanent_errors() {
        let backend = Arc::new(MockBackend::always_bound());
        let retry = Arc::new(RetryInterceptor::with_sleeper(
            5,
            Duration::ZERO,
            no_sleep(),
        ));
        let p = ProviderPipeline::with_stack(backend.clone(), vec![retry.clone()]);
        let err = p.bind(&name("a"), BoundValue::str("x")).unwrap_err();
        assert!(matches!(err, NamingError::AlreadyBound { .. }));
        assert_eq!(backend.calls(), 1, "permanent errors are not retried");
        assert_eq!(retry.retries(), 0);
    }

    #[test]
    fn retry_recovers_from_transient_failures_with_backoff() {
        let backend = Arc::new(MockBackend::flaky(2));
        let sleeps: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let recorder = sleeps.clone();
        let retry = Arc::new(RetryInterceptor::with_sleeper(
            5,
            Duration::from_millis(5),
            Box::new(move |d| recorder.lock().push(d)),
        ));
        let p = ProviderPipeline::with_stack(backend.clone(), vec![retry.clone()]);
        assert_eq!(p.lookup(&name("a")).unwrap().as_str(), Some("v"));
        assert_eq!(backend.calls(), 3);
        assert_eq!(retry.retries(), 2);
        let backoffs = sleeps.lock().clone();
        assert_eq!(backoffs.len(), 2);
        for (took, base_ms) in backoffs.iter().zip([5u64, 10]) {
            let base = Duration::from_millis(base_ms);
            assert!(
                *took >= base && *took <= base.mul_f64(1.25),
                "backoff doubles per attempt, plus up to 25% jitter: {took:?} vs {base:?}"
            );
        }
    }

    #[test]
    fn retry_exhausts_after_max_attempts() {
        let backend = Arc::new(MockBackend::flaky(100));
        let retry = Arc::new(RetryInterceptor::with_sleeper(
            3,
            Duration::ZERO,
            no_sleep(),
        ));
        let p = ProviderPipeline::with_stack(backend.clone(), vec![retry]);
        let err = p.lookup(&name("a")).unwrap_err();
        assert!(matches!(err, NamingError::ServiceFailure { .. }));
        assert_eq!(backend.calls(), 3);
    }

    #[test]
    fn cache_serves_repeated_lookups_without_backend_traffic() {
        let backend = Arc::new(MockBackend::new());
        let cache = Arc::new(CacheInterceptor::new(60_000));
        let p = ProviderPipeline::with_stack(backend.clone(), vec![cache.clone()]);
        assert_eq!(p.lookup(&name("a")).unwrap().as_str(), Some("v"));
        assert_eq!(p.lookup(&name("a")).unwrap().as_str(), Some("v"));
        assert_eq!(backend.calls(), 1, "second lookup served from cache");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn cache_capacity_evicts_least_recently_used() {
        let backend = Arc::new(MockBackend::new());
        let cache = Arc::new(CacheInterceptor::new(60_000).with_max_entries(2));
        let p = ProviderPipeline::with_stack(backend.clone(), vec![cache.clone()]);
        p.lookup(&name("a")).unwrap();
        p.lookup(&name("b")).unwrap();
        // Touch "a" so "b" becomes the LRU entry, then overflow.
        p.lookup(&name("a")).unwrap();
        p.lookup(&name("c")).unwrap();
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);

        let calls = backend.calls();
        p.lookup(&name("a")).unwrap();
        p.lookup(&name("c")).unwrap();
        assert_eq!(backend.calls(), calls, "survivors still cached");
        p.lookup(&name("b")).unwrap();
        assert_eq!(backend.calls(), calls + 1, "LRU entry was evicted");
        assert_eq!(
            cache.evictions(),
            2,
            "re-caching b evicted the next LRU entry"
        );
        assert_eq!(cache.invalidations(), 0, "evictions counted separately");
    }

    #[test]
    fn pipeline_mutations_invalidate_cached_entries() {
        let backend = Arc::new(MockBackend::new());
        let cache = Arc::new(CacheInterceptor::new(60_000));
        let p = ProviderPipeline::with_stack(backend.clone(), vec![cache.clone()]);
        p.lookup(&name("a")).unwrap();
        p.rebind(&name("a"), BoundValue::str("new")).unwrap();
        p.lookup(&name("a")).unwrap();
        assert_eq!(backend.calls(), 3, "rebind forced a fresh backend lookup");
        assert_eq!(cache.invalidations(), 1);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn backend_events_invalidate_cached_entries() {
        // The standard stack subscribes the cache to the backend's hub, so
        // out-of-band changes (another client's rebind/unbind observed via
        // naming events) evict stale entries.
        let backend = Arc::new(MockBackend::new());
        let env = Environment::new().with(keys::CACHE_TTL_MS, "60000");
        let p = ProviderPipeline::standard(backend.clone(), &env);
        let cache = p.cache().expect("cache enabled by TTL");

        p.lookup(&name("a")).unwrap();
        backend
            .hub
            .fire_changed(name("a"), None, BoundValue::str("rebound elsewhere"));
        p.lookup(&name("a")).unwrap();
        assert_eq!(backend.calls(), 2, "rebind event evicted the entry");

        p.lookup(&name("a")).unwrap();
        assert_eq!(backend.calls(), 2, "entry re-cached after the miss");
        backend.hub.fire_removed(name("a"), None);
        p.lookup(&name("a")).unwrap();
        assert_eq!(backend.calls(), 3, "unbind event evicted the entry");
        assert_eq!(cache.invalidations(), 2);
    }

    #[test]
    fn cache_entries_expire_after_ttl() {
        let clock = ManualClock::new();
        let backend = Arc::new(MockBackend::new());
        let cache = Arc::new(CacheInterceptor::with_clock(1_000, clock.clone()));
        let p = ProviderPipeline::with_stack(backend.clone(), vec![cache]);
        p.lookup(&name("a")).unwrap();
        clock.advance(999);
        p.lookup(&name("a")).unwrap();
        assert_eq!(backend.calls(), 1, "entry still fresh at TTL-1");
        clock.advance(2);
        p.lookup(&name("a")).unwrap();
        assert_eq!(backend.calls(), 2, "entry expired past the TTL");
    }

    #[test]
    fn marshal_encodes_payloads_for_wire_backends() {
        let backend = Arc::new(MockBackend::encoded());
        let p = ProviderPipeline::standard(backend.clone(), &Environment::new());
        p.bind(&name("a"), BoundValue::str("payload")).unwrap();
        match backend.last_payload.lock().clone() {
            Some(OpPayload::Wire { bytes, class_name }) => {
                assert_eq!(class_name, "string");
                assert_eq!(codec::unmarshal(&bytes).as_str(), Some("payload"));
            }
            _ => panic!("backend should have seen a wire payload"),
        }
        // Wire results decode back into live values on the way out.
        assert_eq!(p.lookup(&name("a")).unwrap().as_str(), Some("v"));
    }

    #[test]
    fn marshal_rejects_live_contexts_before_the_backend() {
        let backend = Arc::new(MockBackend::encoded());
        let p = ProviderPipeline::standard(backend.clone(), &Environment::new());
        let err = p
            .bind(&name("a"), BoundValue::Context(Arc::new(DummyCtx)))
            .unwrap_err();
        assert!(matches!(err, NamingError::NotSupported { .. }));
        assert_eq!(backend.calls(), 0, "rejected before reaching the backend");
    }
}
