//! The client entry point: [`InitialContext`].
//!
//! Mirrors JNDI's `new InitialDirContext()`: the application hands it an
//! [`Environment`] (and a [`ProviderRegistry`]) and then names everything
//! with strings. URL-form names (`jini://host1/printer`) route to the
//! provider registered for the scheme; plain composite names resolve in the
//! default context configured via [`keys::PROVIDER_URL`]. All operations
//! transparently follow federation continuations, and bound/looked-up
//! values pass through the configured state/object factory chains.

use std::sync::Arc;

use crate::attrs::{AttrMod, Attributes};
use crate::context::{Binding, DirContext, NameClassPair, SearchControls, SearchItem};
use crate::env::{keys, Environment};
use crate::error::{NamingError, Result};
use crate::federation::{drive, drive_op};
use crate::filter::Filter;
use crate::name::CompositeName;
use crate::op::{NamingOp, OpKind, OpOutcome};
use crate::spi::{FactoryChain, ProviderRegistry};
use crate::url::{looks_like_url, RndiUrl};
use crate::value::BoundValue;

/// The application-facing entry point for a (possibly federated) namespace.
pub struct InitialContext {
    env: Environment,
    registry: Arc<ProviderRegistry>,
    factories: FactoryChain,
    default_ctx: Option<Arc<dyn DirContext>>,
}

impl InitialContext {
    /// Create an initial context. If the environment carries
    /// [`keys::PROVIDER_URL`], that service becomes the default context for
    /// non-URL names.
    pub fn new(registry: Arc<ProviderRegistry>, env: Environment) -> Result<Self> {
        let default_ctx = match env.get(keys::PROVIDER_URL) {
            Some(url_str) => {
                let url = RndiUrl::parse(url_str)?;
                if !url.path.is_empty() {
                    return Err(NamingError::ConfigurationError {
                        detail: format!("{}: provider URL must not carry a path", url_str),
                    });
                }
                Some(registry.create_context(&url, &env)?)
            }
            None => None,
        };
        Ok(InitialContext {
            env,
            registry,
            factories: FactoryChain::new(),
            default_ctx,
        })
    }

    /// Create with an explicit default context (e.g. an in-memory root).
    pub fn with_default(
        registry: Arc<ProviderRegistry>,
        env: Environment,
        default_ctx: Arc<dyn DirContext>,
    ) -> Self {
        InitialContext {
            env,
            registry,
            factories: FactoryChain::new(),
            default_ctx: Some(default_ctx),
        }
    }

    /// Install the state/object factory chain applied to every operation.
    pub fn set_factories(&mut self, factories: FactoryChain) {
        self.factories = factories;
    }

    /// The environment this context was created with.
    pub fn environment(&self) -> &Environment {
        &self.env
    }

    /// The provider registry in use.
    pub fn registry(&self) -> &Arc<ProviderRegistry> {
        &self.registry
    }

    /// Route a string name: URL names create a provider context for the
    /// authority, plain names resolve in the default context.
    fn route(&self, name: &str) -> Result<(Arc<dyn DirContext>, CompositeName)> {
        if looks_like_url(name) {
            let url = RndiUrl::parse(name)?;
            let root = url.with_path(CompositeName::empty());
            let ctx = self.registry.create_context(&root, &self.env)?;
            Ok((ctx, url.path))
        } else {
            let ctx = self
                .default_ctx
                .clone()
                .ok_or_else(|| NamingError::ConfigurationError {
                    detail: format!(
                        "no default context configured (set {}) for name {name:?}",
                        keys::PROVIDER_URL
                    ),
                })?;
            Ok((ctx, CompositeName::parse(name)?))
        }
    }

    /// Route a string name and run the reified op built from its composite
    /// part through the federation loop.
    fn run_op(
        &self,
        name: &str,
        make: impl FnOnce(CompositeName) -> NamingOp,
    ) -> Result<OpOutcome> {
        let (ctx, composite) = self.route(name)?;
        drive_op(ctx, &make(composite), &self.registry, &self.env)
    }

    /// Look up the value bound to `name` (composite or URL form).
    pub fn lookup(&self, name: &str) -> Result<BoundValue> {
        let stored = self
            .run_op(name, NamingOp::lookup)?
            .into_value(OpKind::Lookup)?;
        self.factories.to_object(
            stored,
            &CompositeName::parse(name).unwrap_or_default(),
            &self.env,
        )
    }

    /// Atomically bind `value` under `name`.
    pub fn bind(&self, name: &str, value: impl Into<BoundValue>) -> Result<()> {
        let parsed_name = CompositeName::parse(name).unwrap_or_default();
        let stored = self
            .factories
            .to_stored(value.into(), &parsed_name, &self.env)?;
        self.run_op(name, |n| NamingOp::bind(n, stored))?
            .into_done(OpKind::Bind)
    }

    /// Bind `value` under `name`, replacing any previous binding.
    pub fn rebind(&self, name: &str, value: impl Into<BoundValue>) -> Result<()> {
        let parsed_name = CompositeName::parse(name).unwrap_or_default();
        let stored = self
            .factories
            .to_stored(value.into(), &parsed_name, &self.env)?;
        self.run_op(name, |n| NamingOp::rebind(n, stored))?
            .into_done(OpKind::Rebind)
    }

    /// Remove the binding for `name`.
    pub fn unbind(&self, name: &str) -> Result<()> {
        self.run_op(name, NamingOp::unbind)?
            .into_done(OpKind::Unbind)
    }

    /// Rename a binding (within one naming system).
    pub fn rename(&self, old: &str, new: &str) -> Result<()> {
        let new_name = CompositeName::parse(new)?;
        self.run_op(old, |n| NamingOp::rename(n, new_name))?
            .into_done(OpKind::Rename)
    }

    /// Enumerate names bound under `name`.
    pub fn list(&self, name: &str) -> Result<Vec<NameClassPair>> {
        self.run_op(name, NamingOp::list)?.into_names(OpKind::List)
    }

    /// Enumerate bindings under `name`.
    pub fn list_bindings(&self, name: &str) -> Result<Vec<Binding>> {
        self.run_op(name, NamingOp::list_bindings)?
            .into_bindings(OpKind::ListBindings)
    }

    /// Create a subcontext.
    pub fn create_subcontext(&self, name: &str) -> Result<()> {
        self.run_op(name, NamingOp::create_subcontext)?
            .into_done(OpKind::CreateSubcontext)
    }

    /// Destroy an empty subcontext.
    pub fn destroy_subcontext(&self, name: &str) -> Result<()> {
        self.run_op(name, NamingOp::destroy_subcontext)?
            .into_done(OpKind::DestroySubcontext)
    }

    /// Fetch the attributes of `name`.
    pub fn get_attributes(&self, name: &str) -> Result<Attributes> {
        self.run_op(name, NamingOp::get_attributes)?
            .into_attrs(OpKind::GetAttributes)
    }

    /// Apply attribute modifications to `name`.
    pub fn modify_attributes(&self, name: &str, mods: &[AttrMod]) -> Result<()> {
        self.run_op(name, |n| NamingOp::modify_attributes(n, mods.to_vec()))?
            .into_done(OpKind::ModifyAttributes)
    }

    /// Atomically bind with attributes.
    pub fn bind_with_attrs(
        &self,
        name: &str,
        value: impl Into<BoundValue>,
        attrs: Attributes,
    ) -> Result<()> {
        let parsed_name = CompositeName::parse(name).unwrap_or_default();
        let stored = self
            .factories
            .to_stored(value.into(), &parsed_name, &self.env)?;
        self.run_op(name, |n| NamingOp::bind_with_attrs(n, stored, attrs))?
            .into_done(OpKind::BindWithAttrs)
    }

    /// Rebind with attributes.
    pub fn rebind_with_attrs(
        &self,
        name: &str,
        value: impl Into<BoundValue>,
        attrs: Attributes,
    ) -> Result<()> {
        let parsed_name = CompositeName::parse(name).unwrap_or_default();
        let stored = self
            .factories
            .to_stored(value.into(), &parsed_name, &self.env)?;
        self.run_op(name, |n| NamingOp::rebind_with_attrs(n, stored, attrs))?
            .into_done(OpKind::RebindWithAttrs)
    }

    /// Search under `name` with an LDAP-style filter string.
    pub fn search(
        &self,
        name: &str,
        filter: &str,
        controls: &SearchControls,
    ) -> Result<Vec<SearchItem>> {
        let parsed = Filter::parse(filter)?;
        self.run_op(name, |n| NamingOp::search(n, parsed, controls.clone()))?
            .into_found(OpKind::Search)
    }

    /// Subscribe to naming events at or under `name`. The subscription is
    /// registered with the provider owning the name's *first* naming
    /// system (event propagation across federation boundaries is a
    /// server-side capability no backend here offers; the paper's HDNS
    /// events are likewise per-service). Dropping the returned
    /// [`Subscription`] unsubscribes.
    pub fn add_listener(
        &self,
        name: &str,
        listener: Arc<dyn crate::event::NamingListener>,
    ) -> Result<Subscription> {
        let (ctx, composite) = self.route(name)?;
        let handle = ctx.add_listener(&composite, listener)?;
        Ok(Subscription {
            ctx,
            handle: Some(handle),
        })
    }

    /// Resolve `name` to a live context handle (for repeated operations
    /// against one service without re-routing).
    pub fn lookup_context(&self, name: &str) -> Result<Arc<dyn DirContext>> {
        // A bare service URL denotes the provider context itself — flat
        // services (Jini) have no empty-name binding to look up.
        if looks_like_url(name) {
            let url = RndiUrl::parse(name)?;
            if url.path.is_empty() {
                return self.registry.create_context(&url, &self.env);
            }
        }
        match self.lookup(name)? {
            BoundValue::Context(c) => Ok(c),
            BoundValue::Reference(r) => {
                let url_str = r.url_addr().ok_or(NamingError::NotAContext {
                    name: name.to_string(),
                })?;
                let url = RndiUrl::parse(url_str)?;
                if url.path.is_empty() {
                    self.registry.create_context(&url, &self.env)
                } else {
                    // Resolve through the path to reach the denoted context.
                    let root = self
                        .registry
                        .create_context(&url.with_path(CompositeName::empty()), &self.env)?;
                    let v = drive(root, url.path, &self.registry, &self.env, &mut |c, n| {
                        c.lookup(n)
                    })?;
                    v.as_context().ok_or(NamingError::NotAContext {
                        name: name.to_string(),
                    })
                }
            }
            _ => Err(NamingError::NotAContext {
                name: name.to_string(),
            }),
        }
    }
}

/// A live event subscription; unsubscribes on drop.
pub struct Subscription {
    ctx: Arc<dyn DirContext>,
    handle: Option<crate::event::ListenerHandle>,
}

impl Subscription {
    /// Cancel explicitly (equivalent to dropping).
    pub fn cancel(mut self) {
        self.release();
    }

    fn release(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = self.ctx.remove_listener(h);
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::mem::MemContext;
    use crate::spi::UrlContextFactory;
    use crate::value::Reference;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    struct MemFactory {
        scheme: String,
        hosts: Mutex<HashMap<String, MemContext>>,
    }

    impl MemFactory {
        fn new(scheme: &str) -> Arc<Self> {
            Arc::new(MemFactory {
                scheme: scheme.to_string(),
                hosts: Mutex::new(HashMap::new()),
            })
        }
        fn add_host(&self, host: &str, ctx: MemContext) {
            self.hosts.lock().insert(host.to_string(), ctx);
        }
    }

    impl UrlContextFactory for MemFactory {
        fn scheme(&self) -> &str {
            &self.scheme
        }
        fn create(&self, url: &RndiUrl, _: &Environment) -> Result<Arc<dyn DirContext>> {
            self.hosts
                .lock()
                .get(&url.host)
                .cloned()
                .map(|c| Arc::new(c) as Arc<dyn DirContext>)
                .ok_or_else(|| NamingError::service(format!("no host {}", url.host)))
        }
    }

    fn setup() -> (Arc<ProviderRegistry>, MemContext, MemContext) {
        let registry = Arc::new(ProviderRegistry::new());
        let jini = MemFactory::new("jini");
        let hdns = MemFactory::new("hdns");
        let jini_ctx = MemContext::new();
        let hdns_ctx = MemContext::new();
        jini.add_host("host1", jini_ctx.clone());
        hdns.add_host("host2", hdns_ctx.clone());
        registry.register(jini);
        registry.register(hdns);
        (registry, jini_ctx, hdns_ctx)
    }

    #[test]
    fn url_names_route_to_providers() {
        let (registry, jini_ctx, _) = setup();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        ic.bind("jini://host1/printer", "laser-3").unwrap();
        assert_eq!(
            ic.lookup("jini://host1/printer").unwrap().as_str(),
            Some("laser-3")
        );
        // Visible straight through the backend too.
        use crate::context::ContextExt;
        assert_eq!(
            jini_ctx.lookup_str("printer").unwrap().as_str(),
            Some("laser-3")
        );
    }

    #[test]
    fn paper_federation_example() {
        // The paper's §6 snippet: bind the Jini context into HDNS, then
        // access it through the composite URL hdns://host2/jiniCtx/...
        let (registry, _jini_ctx, _) = setup();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();

        ic.bind("jini://host1/service", "the-service").unwrap();
        // Bind a URL reference (the durable form of "bind the context").
        ic.bind(
            "hdns://host2/jiniCtx",
            BoundValue::Reference(Reference::url("jini://host1")),
        )
        .unwrap();

        let got = ic.lookup("hdns://host2/jiniCtx/service").unwrap();
        assert_eq!(got.as_str(), Some("the-service"));
    }

    #[test]
    fn default_context_for_plain_names() {
        let (registry, _, _) = setup();
        let root = MemContext::new();
        let ic = InitialContext::with_default(registry, Environment::new(), Arc::new(root.clone()));
        ic.bind("plain", "p").unwrap();
        assert_eq!(ic.lookup("plain").unwrap().as_str(), Some("p"));
    }

    #[test]
    fn plain_name_without_default_errors() {
        let (registry, _, _) = setup();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        assert!(matches!(
            ic.lookup("nope"),
            Err(NamingError::ConfigurationError { .. })
        ));
    }

    #[test]
    fn unknown_scheme_errors() {
        let (registry, _, _) = setup();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        assert!(matches!(
            ic.lookup("xyz://h/a"),
            Err(NamingError::NoProvider { .. })
        ));
    }

    #[test]
    fn provider_url_sets_default() {
        let (registry, jini_ctx, _) = setup();
        use crate::context::ContextExt;
        jini_ctx.bind_str("svc", "yes").unwrap();
        let env = Environment::new().with(keys::PROVIDER_URL, "jini://host1");
        let ic = InitialContext::new(registry, env).unwrap();
        assert_eq!(ic.lookup("svc").unwrap().as_str(), Some("yes"));
    }

    #[test]
    fn provider_url_with_path_is_rejected() {
        let (registry, _, _) = setup();
        let env = Environment::new().with(keys::PROVIDER_URL, "jini://host1/sub");
        assert!(matches!(
            InitialContext::new(registry, env),
            Err(NamingError::ConfigurationError { .. })
        ));
    }

    #[test]
    fn three_hop_federation() {
        // dns-style chain: hdns://host2/x -> jini://host1 ; lookup through.
        let (registry, jini_ctx, hdns_ctx) = setup();
        use crate::context::ContextExt;
        jini_ctx.create_subcontext(&"grp".into()).unwrap();
        jini_ctx.bind_str("grp/mokey", "the-monkey").unwrap();
        hdns_ctx
            .bind(
                &"dcl".into(),
                BoundValue::Reference(Reference::url("jini://host1/grp")),
            )
            .unwrap();

        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        let got = ic.lookup("hdns://host2/dcl/mokey").unwrap();
        assert_eq!(got.as_str(), Some("the-monkey"));
    }

    #[test]
    fn lookup_context_returns_live_handle() {
        let (registry, jini_ctx, hdns_ctx) = setup();
        use crate::context::ContextExt;
        jini_ctx.bind_str("a", "1").unwrap();
        hdns_ctx
            .bind(
                &"jiniCtx".into(),
                BoundValue::Reference(Reference::url("jini://host1")),
            )
            .unwrap();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        let handle = ic.lookup_context("hdns://host2/jiniCtx").unwrap();
        assert_eq!(handle.lookup_str("a").unwrap().as_str(), Some("1"));
    }

    #[test]
    fn directory_ops_through_urls() {
        let (registry, _, _) = setup();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        ic.bind_with_attrs(
            "jini://host1/node",
            BoundValue::str("stub"),
            Attributes::new().with("os", "linux"),
        )
        .unwrap();
        let attrs = ic.get_attributes("jini://host1/node").unwrap();
        assert_eq!(attrs.get("os").unwrap().first_str(), Some("linux"));
        let hits = ic
            .search("jini://host1", "(os=linux)", &SearchControls::default())
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn event_subscription_through_url() {
        use crate::event::CollectingListener;
        let (registry, _, _) = setup();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        let listener = CollectingListener::new();
        let sub = ic.add_listener("jini://host1", listener.clone()).unwrap();
        ic.bind("jini://host1/watched", "v").unwrap();
        assert_eq!(listener.count(), 1);
        // Unsubscribing (via drop) stops delivery.
        drop(sub);
        ic.bind("jini://host1/unwatched", "v").unwrap();
        assert_eq!(listener.count(), 1);
    }

    #[test]
    fn rename_through_url() {
        let (registry, _, _) = setup();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        ic.bind("jini://host1/old", "v").unwrap();
        ic.rename("jini://host1/old", "new").unwrap();
        assert!(ic.lookup("jini://host1/old").is_err());
        assert_eq!(ic.lookup("jini://host1/new").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn modify_attributes_through_urls() {
        let (registry, _, _) = setup();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        ic.bind_with_attrs(
            "jini://host1/e",
            BoundValue::Null,
            Attributes::new().with("state", "up"),
        )
        .unwrap();
        ic.modify_attributes(
            "jini://host1/e",
            &[AttrMod::Replace(crate::attrs::Attribute::single(
                "state", "down",
            ))],
        )
        .unwrap();
        assert_eq!(
            ic.get_attributes("jini://host1/e")
                .unwrap()
                .get("state")
                .unwrap()
                .first_str(),
            Some("down")
        );
    }

    #[test]
    fn subcontexts_through_urls() {
        let (registry, _, _) = setup();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        ic.create_subcontext("hdns://host2/dept").unwrap();
        ic.bind("hdns://host2/dept/x", "1").unwrap();
        assert!(matches!(
            ic.destroy_subcontext("hdns://host2/dept"),
            Err(NamingError::ContextNotEmpty { .. })
        ));
        ic.unbind("hdns://host2/dept/x").unwrap();
        ic.destroy_subcontext("hdns://host2/dept").unwrap();
    }

    #[test]
    fn malformed_url_reports_invalid_name() {
        let (registry, _, _) = setup();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        assert!(matches!(
            ic.lookup("jini://"),
            Err(NamingError::ConfigurationError { .. }) | Err(NamingError::InvalidName { .. })
        ));
        assert!(matches!(
            ic.lookup("jini://h:badport/x"),
            Err(NamingError::InvalidName { .. })
        ));
    }

    #[test]
    fn search_count_limit_through_federation() {
        let (registry, _, hdns_ctx) = setup();
        use crate::context::Context;
        let foreign = MemContext::new();
        for i in 0..10 {
            foreign
                .bind_with_attrs(
                    &CompositeName::from_components([format!("e{i}")]),
                    BoundValue::Null,
                    Attributes::new().with("kind", "x"),
                )
                .unwrap();
        }
        hdns_ctx
            .bind(&"mnt".into(), BoundValue::Context(Arc::new(foreign)))
            .unwrap();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        let hits = ic
            .search(
                "hdns://host2/mnt",
                "(kind=x)",
                &SearchControls {
                    count_limit: 4,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(hits.len(), 4, "count limit applies across the mount");
    }

    #[test]
    fn unbind_and_list_through_urls() {
        let (registry, _, _) = setup();
        let ic = InitialContext::new(registry, Environment::new()).unwrap();
        ic.bind("jini://host1/a", "1").unwrap();
        ic.bind("jini://host1/b", "2").unwrap();
        assert_eq!(ic.list("jini://host1").unwrap().len(), 2);
        ic.unbind("jini://host1/a").unwrap();
        assert_eq!(ic.list("jini://host1").unwrap().len(), 1);
    }
}
