//! An in-memory hierarchical directory context.
//!
//! `MemContext` is the reference implementation of the full
//! [`DirContext`] conformance level: hierarchical namespace, atomic bind,
//! attributes, search, events, rename — everything. Providers use it as a
//! behavioural oracle in tests, and it doubles as a lightweight local
//! naming service (the "local filesystem storage" slot in the paper's
//! federation examples is backed by a persistent variant in
//! `rndi-providers`).
//!
//! Federation: a bound value that is a live context or a URL reference acts
//! as a mount point — resolution that must pass *through* it returns
//! [`NamingError::Continue`] for the federation driver to handle.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::attrs::{AttrMod, Attributes};
use crate::context::{
    Binding, Context, DirContext, NameClassPair, SearchControls, SearchItem, SearchScope,
};
use crate::error::{NamingError, Result};
use crate::event::{EventHub, ListenerHandle, NamingListener};
use crate::filter::Filter;
use crate::name::CompositeName;
use crate::value::BoundValue;

#[derive(Clone)]
struct Entry {
    attrs: Attributes,
    node: Node,
}

#[derive(Clone)]
enum Node {
    Leaf(BoundValue),
    Sub(MemContext),
}

struct Inner {
    /// Absolute name of this context within its tree (for event names).
    base: CompositeName,
    entries: RwLock<BTreeMap<String, Entry>>,
    hub: Arc<EventHub>,
}

/// A cheaply cloneable in-memory directory context.
#[derive(Clone)]
pub struct MemContext {
    inner: Arc<Inner>,
}

impl Default for MemContext {
    fn default() -> Self {
        Self::new()
    }
}

impl MemContext {
    /// Create an empty root context.
    pub fn new() -> Self {
        MemContext {
            inner: Arc::new(Inner {
                base: CompositeName::empty(),
                entries: RwLock::new(BTreeMap::new()),
                hub: Arc::new(EventHub::new()),
            }),
        }
    }

    fn new_child(&self, component: &str) -> MemContext {
        MemContext {
            inner: Arc::new(Inner {
                base: self.inner.base.child(component),
                entries: RwLock::new(BTreeMap::new()),
                hub: self.inner.hub.clone(),
            }),
        }
    }

    fn abs(&self, component: &str) -> CompositeName {
        self.inner.base.child(component)
    }

    /// Resolve all but the last component, then run `f` on the owning
    /// context and final component. Crossing a federation mount returns
    /// `Continue`.
    fn with_parent<R>(
        &self,
        name: &CompositeName,
        f: &mut dyn FnMut(&MemContext, &str) -> Result<R>,
    ) -> Result<R> {
        match name.len() {
            0 => Err(NamingError::invalid_name("", "empty name")),
            1 => f(self, name.head().expect("len checked")),
            _ => {
                let head = name.head().expect("len checked");
                let entry = self
                    .inner
                    .entries
                    .read()
                    .get(head)
                    .cloned()
                    .ok_or_else(|| NamingError::not_found(self.abs(head).to_string()))?;
                match entry.node {
                    Node::Sub(sub) => sub.with_parent(&name.tail(), f),
                    Node::Leaf(value) if value.is_federation_link() => Err(NamingError::Continue {
                        resolved: value,
                        remaining: name.tail(),
                    }),
                    Node::Leaf(_) => Err(NamingError::NotAContext {
                        name: self.abs(head).to_string(),
                    }),
                }
            }
        }
    }

    /// Resolve a name to the context it denotes (empty name = self).
    fn resolve_context(&self, name: &CompositeName) -> Result<MemContext> {
        if name.is_empty() {
            return Ok(self.clone());
        }
        let head = name.head().expect("non-empty");
        let entry = self
            .inner
            .entries
            .read()
            .get(head)
            .cloned()
            .ok_or_else(|| NamingError::not_found(self.abs(head).to_string()))?;
        match entry.node {
            Node::Sub(sub) => sub.resolve_context(&name.tail()),
            Node::Leaf(value) if value.is_federation_link() => Err(NamingError::Continue {
                resolved: value,
                remaining: name.tail(),
            }),
            Node::Leaf(_) => Err(NamingError::ContextExpected {
                name: self.abs(head).to_string(),
            }),
        }
    }

    fn entry_value(entry: &Entry) -> BoundValue {
        match &entry.node {
            Node::Leaf(v) => v.clone(),
            Node::Sub(sub) => BoundValue::Context(Arc::new(sub.clone())),
        }
    }

    fn do_bind(
        &self,
        name: &CompositeName,
        value: BoundValue,
        attrs: Attributes,
        overwrite: bool,
    ) -> Result<()> {
        self.with_parent(name, &mut |ctx, last| {
            let mut entries = ctx.inner.entries.write();
            let existed = entries.get(last).map(Self::entry_value);
            if existed.is_some() && !overwrite {
                return Err(NamingError::already_bound(ctx.abs(last).to_string()));
            }
            entries.insert(
                last.to_string(),
                Entry {
                    attrs: attrs.clone(),
                    node: Node::Leaf(value.clone()),
                },
            );
            drop(entries);
            match existed {
                Some(old) => ctx
                    .inner
                    .hub
                    .fire_changed(ctx.abs(last), Some(old), value.clone()),
                None => ctx.inner.hub.fire_added(ctx.abs(last), value.clone()),
            }
            Ok(())
        })
    }

    fn search_into(
        &self,
        rel: &CompositeName,
        filter: &Filter,
        controls: &SearchControls,
        out: &mut Vec<SearchItem>,
    ) {
        let entries = self.inner.entries.read().clone();
        for (name, entry) in entries {
            if controls.count_limit > 0 && out.len() >= controls.count_limit {
                return;
            }
            let rel_name = rel.child(&name);
            if filter.matches(&entry.attrs) {
                let attrs = match &controls.return_attrs {
                    Some(ids) => {
                        let ids: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
                        entry.attrs.project(&ids)
                    }
                    None => entry.attrs.clone(),
                };
                out.push(SearchItem {
                    name: rel_name.to_string(),
                    value: controls.return_values.then(|| Self::entry_value(&entry)),
                    attrs,
                });
            }
            if controls.scope == SearchScope::Subtree {
                if let Node::Sub(sub) = &entry.node {
                    sub.search_into(&rel_name, filter, controls, out);
                }
            }
        }
    }
}

impl Context for MemContext {
    fn lookup(&self, name: &CompositeName) -> Result<BoundValue> {
        if name.is_empty() {
            return Ok(BoundValue::Context(Arc::new(self.clone())));
        }
        self.with_parent(name, &mut |ctx, last| {
            let entries = ctx.inner.entries.read();
            let entry = entries
                .get(last)
                .ok_or_else(|| NamingError::not_found(ctx.abs(last).to_string()))?;
            Ok(Self::entry_value(entry))
        })
    }

    fn bind(&self, name: &CompositeName, value: BoundValue) -> Result<()> {
        self.do_bind(name, value, Attributes::new(), false)
    }

    fn rebind(&self, name: &CompositeName, value: BoundValue) -> Result<()> {
        self.do_bind(name, value, Attributes::new(), true)
    }

    fn unbind(&self, name: &CompositeName) -> Result<()> {
        self.with_parent(name, &mut |ctx, last| {
            let removed = {
                let mut entries = ctx.inner.entries.write();
                if let Some(entry) = entries.get(last) {
                    if let Node::Sub(sub) = &entry.node {
                        if !sub.inner.entries.read().is_empty() {
                            return Err(NamingError::ContextNotEmpty {
                                name: ctx.abs(last).to_string(),
                            });
                        }
                    }
                }
                entries.remove(last)
            };
            if let Some(entry) = removed {
                ctx.inner
                    .hub
                    .fire_removed(ctx.abs(last), Some(Self::entry_value(&entry)));
            }
            // Unbinding an unbound name succeeds (JNDI semantics).
            Ok(())
        })
    }

    fn rename(&self, old: &CompositeName, new: &CompositeName) -> Result<()> {
        // Take the old entry out, bind it under the new name, restoring on
        // failure so the operation stays atomic from the caller's view.
        let entry = self.with_parent(old, &mut |ctx, last| {
            let mut entries = ctx.inner.entries.write();
            entries
                .remove(last)
                .ok_or_else(|| NamingError::not_found(ctx.abs(last).to_string()))
        })?;
        let reinsert = entry.clone();
        let result = self.with_parent(new, &mut |ctx, last| {
            let mut entries = ctx.inner.entries.write();
            if entries.contains_key(last) {
                return Err(NamingError::already_bound(ctx.abs(last).to_string()));
            }
            entries.insert(last.to_string(), entry.clone());
            Ok(())
        });
        if result.is_err() {
            // Put it back where it was.
            let _ = self.with_parent(old, &mut |ctx, last| {
                ctx.inner
                    .entries
                    .write()
                    .insert(last.to_string(), reinsert.clone());
                Ok(())
            });
        }
        result
    }

    fn list(&self, name: &CompositeName) -> Result<Vec<NameClassPair>> {
        let ctx = self.resolve_context(name)?;
        let entries = ctx.inner.entries.read();
        Ok(entries
            .iter()
            .map(|(n, e)| NameClassPair {
                name: n.clone(),
                class_name: Self::entry_value(e).class_name().to_string(),
            })
            .collect())
    }

    fn list_bindings(&self, name: &CompositeName) -> Result<Vec<Binding>> {
        let ctx = self.resolve_context(name)?;
        let entries = ctx.inner.entries.read();
        Ok(entries
            .iter()
            .map(|(n, e)| Binding {
                name: n.clone(),
                value: Self::entry_value(e),
            })
            .collect())
    }

    fn create_subcontext(&self, name: &CompositeName) -> Result<()> {
        self.with_parent(name, &mut |ctx, last| {
            let mut entries = ctx.inner.entries.write();
            if entries.contains_key(last) {
                return Err(NamingError::already_bound(ctx.abs(last).to_string()));
            }
            let sub = ctx.new_child(last);
            entries.insert(
                last.to_string(),
                Entry {
                    attrs: Attributes::new(),
                    node: Node::Sub(sub.clone()),
                },
            );
            drop(entries);
            ctx.inner
                .hub
                .fire_added(ctx.abs(last), BoundValue::Context(Arc::new(sub)));
            Ok(())
        })
    }

    fn destroy_subcontext(&self, name: &CompositeName) -> Result<()> {
        self.with_parent(name, &mut |ctx, last| {
            let mut entries = ctx.inner.entries.write();
            match entries.get(last) {
                None => Ok(()), // destroying a non-existent context succeeds
                Some(Entry {
                    node: Node::Sub(sub),
                    ..
                }) => {
                    if !sub.inner.entries.read().is_empty() {
                        return Err(NamingError::ContextNotEmpty {
                            name: ctx.abs(last).to_string(),
                        });
                    }
                    entries.remove(last);
                    drop(entries);
                    ctx.inner.hub.fire_removed(ctx.abs(last), None);
                    Ok(())
                }
                Some(_) => Err(NamingError::ContextExpected {
                    name: ctx.abs(last).to_string(),
                }),
            }
        })
    }

    fn add_listener(
        &self,
        name: &CompositeName,
        listener: Arc<dyn NamingListener>,
    ) -> Result<ListenerHandle> {
        Ok(self
            .inner
            .hub
            .subscribe(self.inner.base.join(name), listener))
    }

    fn remove_listener(&self, handle: ListenerHandle) -> Result<()> {
        self.inner.hub.unsubscribe(handle);
        Ok(())
    }

    fn provider_id(&self) -> String {
        format!("mem:{}", self.inner.base)
    }
}

impl DirContext for MemContext {
    fn get_attributes(&self, name: &CompositeName) -> Result<Attributes> {
        if name.is_empty() {
            return Ok(Attributes::new());
        }
        self.with_parent(name, &mut |ctx, last| {
            let entries = ctx.inner.entries.read();
            entries
                .get(last)
                .map(|e| e.attrs.clone())
                .ok_or_else(|| NamingError::not_found(ctx.abs(last).to_string()))
        })
    }

    fn modify_attributes(&self, name: &CompositeName, mods: &[AttrMod]) -> Result<()> {
        self.with_parent(name, &mut |ctx, last| {
            let mut entries = ctx.inner.entries.write();
            let entry = entries
                .get_mut(last)
                .ok_or_else(|| NamingError::not_found(ctx.abs(last).to_string()))?;
            for m in mods {
                m.apply(&mut entry.attrs);
            }
            Ok(())
        })
    }

    fn bind_with_attrs(
        &self,
        name: &CompositeName,
        value: BoundValue,
        attrs: Attributes,
    ) -> Result<()> {
        self.do_bind(name, value, attrs, false)
    }

    fn rebind_with_attrs(
        &self,
        name: &CompositeName,
        value: BoundValue,
        attrs: Attributes,
    ) -> Result<()> {
        self.do_bind(name, value, attrs, true)
    }

    fn search(
        &self,
        name: &CompositeName,
        filter: &Filter,
        controls: &SearchControls,
    ) -> Result<Vec<SearchItem>> {
        let base = self.resolve_context(name)?;
        let mut out = Vec::new();
        match controls.scope {
            SearchScope::Object => {
                if name.is_empty() {
                    return Ok(out);
                }
                let attrs = self.get_attributes(name)?;
                if filter.matches(&attrs) {
                    out.push(SearchItem {
                        name: String::new(),
                        value: controls
                            .return_values
                            .then(|| self.lookup(name))
                            .transpose()?,
                        attrs,
                    });
                }
            }
            SearchScope::OneLevel | SearchScope::Subtree => {
                base.search_into(&CompositeName::empty(), filter, controls, &mut out);
            }
        }
        Ok(out)
    }
}

/// A URL factory serving `mem://<host>` from a registry of named in-memory
/// roots. Handy as a lightweight provider in tests, examples, and as the
/// "scratch" member of a federation.
pub struct MemFactory {
    scheme: String,
    hosts: parking_lot::Mutex<std::collections::HashMap<String, MemContext>>,
}

impl MemFactory {
    /// Create with the default `mem` scheme.
    pub fn new() -> Arc<Self> {
        Self::with_scheme("mem")
    }

    /// Create under a custom scheme (tests sometimes masquerade an
    /// in-memory context as another service).
    pub fn with_scheme(scheme: &str) -> Arc<Self> {
        Arc::new(MemFactory {
            scheme: scheme.to_ascii_lowercase(),
            hosts: parking_lot::Mutex::new(std::collections::HashMap::new()),
        })
    }

    /// Register (or replace) the root context served as `host`.
    pub fn register_host(&self, host: &str, ctx: MemContext) {
        self.hosts.lock().insert(host.to_string(), ctx);
    }

    /// Fetch a registered root (e.g. for direct backend assertions).
    pub fn host(&self, host: &str) -> Option<MemContext> {
        self.hosts.lock().get(host).cloned()
    }
}

impl crate::spi::UrlContextFactory for MemFactory {
    fn scheme(&self) -> &str {
        &self.scheme
    }

    fn create(
        &self,
        url: &crate::url::RndiUrl,
        _env: &crate::env::Environment,
    ) -> Result<Arc<dyn DirContext>> {
        // Unknown hosts are auto-created: an in-memory service "exists"
        // the moment someone names it, which is the behaviour tests want.
        let ctx = self
            .hosts
            .lock()
            .entry(url.host.clone())
            .or_default()
            .clone();
        Ok(Arc::new(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextExt;
    use crate::event::CollectingListener;
    use crate::value::Reference;

    fn ctx() -> MemContext {
        MemContext::new()
    }

    #[test]
    fn bind_lookup_roundtrip() {
        let c = ctx();
        c.bind_str("key", "value").unwrap();
        assert_eq!(c.lookup_str("key").unwrap().as_str(), Some("value"));
    }

    #[test]
    fn atomic_bind_rejects_duplicate() {
        let c = ctx();
        c.bind_str("k", "v1").unwrap();
        assert!(matches!(
            c.bind_str("k", "v2"),
            Err(NamingError::AlreadyBound { .. })
        ));
        // Value unchanged.
        assert_eq!(c.lookup_str("k").unwrap().as_str(), Some("v1"));
        // rebind overwrites.
        c.rebind_str("k", "v2").unwrap();
        assert_eq!(c.lookup_str("k").unwrap().as_str(), Some("v2"));
    }

    #[test]
    fn hierarchical_binding() {
        let c = ctx();
        c.create_subcontext(&"a".into()).unwrap();
        c.create_subcontext(&"a/b".into()).unwrap();
        c.bind_str("a/b/leaf", "deep").unwrap();
        assert_eq!(c.lookup_str("a/b/leaf").unwrap().as_str(), Some("deep"));
        // Intermediate lookup returns a context value.
        assert!(c.lookup_str("a/b").unwrap().as_context().is_some());
    }

    #[test]
    fn missing_intermediate_is_not_found() {
        let c = ctx();
        assert!(matches!(
            c.bind_str("no/such/path", "v"),
            Err(NamingError::NameNotFound { .. })
        ));
    }

    #[test]
    fn leaf_in_the_middle_is_not_a_context() {
        let c = ctx();
        c.bind_str("x", "leaf").unwrap();
        assert!(matches!(
            c.lookup_str("x/y"),
            Err(NamingError::NotAContext { .. })
        ));
    }

    #[test]
    fn unbind_is_idempotent_but_guards_nonempty_contexts() {
        let c = ctx();
        c.bind_str("k", "v").unwrap();
        c.unbind_str("k").unwrap();
        c.unbind_str("k").unwrap(); // second unbind is fine
        assert!(c.lookup_str("k").is_err());

        c.create_subcontext(&"sub".into()).unwrap();
        c.bind_str("sub/x", "v").unwrap();
        assert!(matches!(
            c.unbind_str("sub"),
            Err(NamingError::ContextNotEmpty { .. })
        ));
        c.unbind_str("sub/x").unwrap();
        c.unbind_str("sub").unwrap();
    }

    #[test]
    fn list_and_list_bindings() {
        let c = ctx();
        c.bind_str("b", "2").unwrap();
        c.bind_str("a", "1").unwrap();
        c.create_subcontext(&"z".into()).unwrap();
        let names: Vec<String> = c
            .list_str("")
            .unwrap()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(names, vec!["a", "b", "z"], "sorted enumeration");
        let pairs = c.list_str("").unwrap();
        assert_eq!(pairs[2].class_name, "context");
        let bindings = c.list_bindings(&CompositeName::empty()).unwrap();
        assert_eq!(bindings[0].value.as_str(), Some("1"));
    }

    #[test]
    fn rename_moves_and_is_atomic_on_failure() {
        let c = ctx();
        c.bind_str("old", "v").unwrap();
        c.rename(&"old".into(), &"new".into()).unwrap();
        assert!(c.lookup_str("old").is_err());
        assert_eq!(c.lookup_str("new").unwrap().as_str(), Some("v"));

        c.bind_str("taken", "t").unwrap();
        let err = c.rename(&"new".into(), &"taken".into());
        assert!(matches!(err, Err(NamingError::AlreadyBound { .. })));
        // Source restored.
        assert_eq!(c.lookup_str("new").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn attributes_and_search() {
        let c = ctx();
        c.bind_with_attrs(
            &"node1".into(),
            BoundValue::str("stub1"),
            Attributes::new().with("os", "linux").with("cpu", "8"),
        )
        .unwrap();
        c.bind_with_attrs(
            &"node2".into(),
            BoundValue::str("stub2"),
            Attributes::new().with("os", "windows").with("cpu", "16"),
        )
        .unwrap();

        let f = Filter::parse("(os=linux)").unwrap();
        let hits = c
            .search(&CompositeName::empty(), &f, &SearchControls::default())
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "node1");

        let f = Filter::parse("(cpu>=8)").unwrap();
        let hits = c
            .search(&CompositeName::empty(), &f, &SearchControls::default())
            .unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn subtree_search_descends() {
        let c = ctx();
        c.create_subcontext(&"dept".into()).unwrap();
        c.bind_with_attrs(
            &"dept/host1".into(),
            BoundValue::str("x"),
            Attributes::new().with("type", "compute"),
        )
        .unwrap();
        c.bind_with_attrs(
            &"top".into(),
            BoundValue::str("y"),
            Attributes::new().with("type", "compute"),
        )
        .unwrap();

        let f = Filter::parse("(type=compute)").unwrap();
        let one = c
            .search(
                &CompositeName::empty(),
                &f,
                &SearchControls {
                    scope: SearchScope::OneLevel,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(one.len(), 1, "one-level skips nested entries");

        let sub = c
            .search(
                &CompositeName::empty(),
                &f,
                &SearchControls {
                    scope: SearchScope::Subtree,
                    ..Default::default()
                },
            )
            .unwrap();
        let mut names: Vec<String> = sub.into_iter().map(|s| s.name).collect();
        names.sort();
        assert_eq!(names, vec!["dept/host1", "top"]);
    }

    #[test]
    fn search_respects_count_limit_and_projection() {
        let c = ctx();
        for i in 0..10 {
            c.bind_with_attrs(
                &CompositeName::from_components([format!("e{i}")]),
                BoundValue::Null,
                Attributes::new().with("kind", "x").with("extra", "y"),
            )
            .unwrap();
        }
        let f = Filter::parse("(kind=x)").unwrap();
        let hits = c
            .search(
                &CompositeName::empty(),
                &f,
                &SearchControls {
                    count_limit: 3,
                    return_attrs: Some(vec!["kind".into()]),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(hits.len(), 3);
        assert!(hits
            .iter()
            .all(|h| h.attrs.contains("kind") && !h.attrs.contains("extra")));
    }

    #[test]
    fn modify_attributes_applies_mods() {
        let c = ctx();
        c.bind_with_attrs(
            &"e".into(),
            BoundValue::Null,
            Attributes::new().with("state", "up"),
        )
        .unwrap();
        c.modify_attributes(
            &"e".into(),
            &[
                AttrMod::Replace(crate::attrs::Attribute::single("state", "down")),
                AttrMod::Add(crate::attrs::Attribute::single("note", "maintenance")),
            ],
        )
        .unwrap();
        let attrs = c.get_attributes(&"e".into()).unwrap();
        assert_eq!(attrs.get("state").unwrap().first_str(), Some("down"));
        assert_eq!(attrs.get("note").unwrap().first_str(), Some("maintenance"));
    }

    #[test]
    fn federation_mount_returns_continue() {
        let c = ctx();
        c.bind_str("remote", "").unwrap();
        c.rebind(
            &"remote".into(),
            BoundValue::Reference(Reference::url("jini://host1")),
        )
        .unwrap();
        let err = c.lookup_str("remote/service/x").unwrap_err();
        match err {
            NamingError::Continue {
                resolved,
                remaining,
            } => {
                assert_eq!(
                    resolved.as_reference().unwrap().url_addr(),
                    Some("jini://host1")
                );
                assert_eq!(remaining.to_string(), "service/x");
            }
            other => panic!("expected Continue, got {other:?}"),
        }
        // Looking up the mount itself returns the reference, not Continue.
        assert!(c.lookup_str("remote").unwrap().as_reference().is_some());
    }

    #[test]
    fn bound_live_context_is_traversed_via_continue() {
        let parent = ctx();
        let foreign = ctx();
        foreign.bind_str("inside", "gold").unwrap();
        parent
            .bind(
                &"mount".into(),
                BoundValue::Context(Arc::new(foreign.clone())),
            )
            .unwrap();
        let err = parent.lookup_str("mount/inside").unwrap_err();
        assert!(err.is_continue());
    }

    #[test]
    fn events_fire_for_mutations() {
        let c = ctx();
        let l = CollectingListener::new();
        c.add_listener(&CompositeName::empty(), l.clone()).unwrap();
        c.bind_str("a", "1").unwrap();
        c.rebind_str("a", "2").unwrap();
        c.unbind_str("a").unwrap();
        let evs = l.drain();
        use crate::event::EventType::*;
        let kinds: Vec<_> = evs.iter().map(|e| e.event_type).collect();
        assert_eq!(kinds, vec![ObjectAdded, ObjectChanged, ObjectRemoved]);
    }

    #[test]
    fn scoped_listener_sees_only_its_subtree() {
        let c = ctx();
        c.create_subcontext(&"a".into()).unwrap();
        c.create_subcontext(&"b".into()).unwrap();
        let l = CollectingListener::new();
        c.add_listener(&"a".into(), l.clone()).unwrap();
        c.bind_str("a/x", "1").unwrap();
        c.bind_str("b/y", "2").unwrap();
        assert_eq!(l.count(), 1);
    }

    #[test]
    fn empty_name_lookup_returns_self_context() {
        let c = ctx();
        c.bind_str("x", "1").unwrap();
        let v = c.lookup(&CompositeName::empty()).unwrap();
        let as_ctx = v.as_context().unwrap();
        assert_eq!(as_ctx.lookup_str("x").unwrap().as_str(), Some("1"));
    }

    #[test]
    fn mem_factory_serves_and_autocreates_hosts() {
        use crate::env::Environment;
        use crate::spi::UrlContextFactory;
        use crate::url::RndiUrl;
        let f = MemFactory::new();
        assert_eq!(f.scheme(), "mem");
        let url = RndiUrl::parse("mem://scratch").unwrap();
        let c1 = f.create(&url, &Environment::new()).unwrap();
        c1.bind(&"k".into(), BoundValue::str("v")).unwrap();
        // Same host resolves to the same root.
        let c2 = f.create(&url, &Environment::new()).unwrap();
        assert_eq!(c2.lookup(&"k".into()).unwrap().as_str(), Some("v"));
        // Registered hosts are reachable directly.
        assert!(f.host("scratch").is_some());
        assert!(f.host("other").is_none());
        let custom = MemFactory::with_scheme("JINI");
        assert_eq!(custom.scheme(), "jini");
    }

    #[test]
    fn destroy_subcontext_semantics() {
        let c = ctx();
        c.create_subcontext(&"s".into()).unwrap();
        c.bind_str("s/k", "v").unwrap();
        assert!(matches!(
            c.destroy_subcontext(&"s".into()),
            Err(NamingError::ContextNotEmpty { .. })
        ));
        c.unbind_str("s/k").unwrap();
        c.destroy_subcontext(&"s".into()).unwrap();
        c.destroy_subcontext(&"s".into()).unwrap(); // idempotent
        c.bind_str("leaf", "v").unwrap();
        assert!(matches!(
            c.destroy_subcontext(&"leaf".into()),
            Err(NamingError::ContextExpected { .. })
        ));
    }
}
