//! Federation: resolving composite names across naming-system boundaries.
//!
//! A provider resolves the part of a name that belongs to its own naming
//! system; when it reaches a binding that is a live foreign context or a
//! URL reference, it returns [`NamingError::Continue`]. The
//! [`drive`] loop — JNDI's `NamingManager.getContinuationContext` — turns
//! the resolved object into the next context (instantiating providers by
//! URL scheme where needed) and re-issues the operation with the remaining
//! name, until the operation completes or the hop limit trips.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rndi_obs::metrics::names;
use rndi_obs::{SpanOutcome, SpanRecord, TraceCtx};

use crate::context::{DirContext, SearchControls, SearchItem, SearchScope};
use crate::env::{keys, Environment};
use crate::error::{NamingError, Result};
use crate::filter::Filter;
use crate::name::CompositeName;
use crate::op::{self, NamingOp, OpKind, OpOutcome, OpPayload};
use crate::spi::ProviderRegistry;
use crate::url::RndiUrl;
use crate::value::BoundValue;

/// Default maximum federation hops (overridable via
/// [`keys::MAX_FEDERATION_DEPTH`]).
pub const DEFAULT_MAX_DEPTH: u64 = 16;

/// Default worker-pool width for federated subtree search fan-out
/// (overridable via [`keys::FEDERATION_FANOUT`]).
pub const DEFAULT_FANOUT: u64 = 8;

/// Run `run(i)` for each `i in 0..n` across a bounded pool of `workers`
/// scoped threads, returning the results in index order regardless of
/// which worker ran which item.
///
/// This is the fan-out machinery federated subtree search uses to visit
/// mounts concurrently, factored out so other scatter layers (the shard
/// router, most notably) share one implementation and one determinism
/// guarantee: results come back positionally, so any merge that iterates
/// the returned `Vec` is independent of worker count and scheduling.
/// `workers` is clamped to `1..=n`; `workers == 1` degenerates to a
/// sequential loop on the caller's thread (no spawns).
pub fn fan_out<T, F>(n: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return (0..n).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock() = Some(run(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every slot"))
        .collect()
}

/// Turn a resolved boundary object into the continuation context plus the
/// name prefix it contributes (URL references contribute their path).
pub fn continuation_context(
    resolved: BoundValue,
    registry: &ProviderRegistry,
    env: &Environment,
) -> Result<(Arc<dyn DirContext>, CompositeName)> {
    match resolved {
        BoundValue::Context(ctx) => Ok((ctx, CompositeName::empty())),
        BoundValue::Reference(r) => {
            let url_str = r.url_addr().ok_or_else(|| NamingError::NotAContext {
                name: format!("reference {:?} has no URL address", r.class_name),
            })?;
            let url = RndiUrl::parse(url_str)?;
            let ctx = registry.create_context(&url, env)?;
            Ok((ctx, url.path))
        }
        other => Err(NamingError::NotAContext {
            name: format!("cannot continue through a {} value", other.class_name()),
        }),
    }
}

/// Run `op` against `(ctx, name)`, following federation continuations until
/// the operation completes.
pub fn drive<R>(
    ctx: Arc<dyn DirContext>,
    name: CompositeName,
    registry: &ProviderRegistry,
    env: &Environment,
    op: &mut dyn FnMut(&dyn DirContext, &CompositeName) -> Result<R>,
) -> Result<R> {
    let max_depth = env.get_u64(keys::MAX_FEDERATION_DEPTH, DEFAULT_MAX_DEPTH) as usize;
    let mut ctx = ctx;
    let mut name = name;
    for _ in 0..=max_depth {
        match op(ctx.as_ref(), &name) {
            Err(NamingError::Continue {
                resolved,
                remaining,
            }) => {
                let (next, prefix) = continuation_context(resolved, registry, env)?;
                ctx = next;
                name = prefix.join(&remaining);
            }
            other => return other,
        }
    }
    Err(NamingError::FederationDepthExceeded { depth: max_depth })
}

/// Run a reified [`NamingOp`] against `ctx`, following federation
/// continuations until the operation completes — the op-valued counterpart
/// of [`drive`]. Each hop re-targets the same op at the remaining name via
/// [`NamingOp::with_name`], so interceptor annotations (retry attempt,
/// trace tags) survive across naming-system boundaries.
pub fn drive_op(
    ctx: Arc<dyn DirContext>,
    op: &NamingOp,
    registry: &ProviderRegistry,
    env: &Environment,
) -> Result<OpOutcome> {
    let max_depth = env.get_u64(keys::MAX_FEDERATION_DEPTH, DEFAULT_MAX_DEPTH) as usize;
    let mut op = op.clone();
    // The driver is the outermost instrumented layer for reified ops: when
    // the caller didn't trace the op, mint the trace root here so every
    // hop, pipeline layer, and remote server below joins one trace. An op
    // arriving already traced belongs to the annotating layer's span —
    // don't record a second root for it.
    let root = match op.trace_ctx() {
        Some(_) => None,
        None => {
            let root = TraceCtx::root();
            op.set_trace_ctx(&root);
            Some((root, ctx.provider_id(), Instant::now()))
        }
    };
    let kind = op.kind;
    let result = drive_op_loop(ctx, op, registry, env, max_depth);
    if let Some((span_ctx, provider, start)) = root {
        let outcome = match &result {
            Ok(_) => SpanOutcome::Ok,
            Err(e) if e.is_continue() => SpanOutcome::Continue,
            Err(_) => SpanOutcome::Err,
        };
        rndi_obs::trace::record(SpanRecord::new(
            &span_ctx,
            "federation",
            provider.as_str(),
            kind.label(),
            outcome,
            start.elapsed(),
        ));
    }
    result
}

fn drive_op_loop(
    mut ctx: Arc<dyn DirContext>,
    mut op: NamingOp,
    registry: &ProviderRegistry,
    env: &Environment,
    max_depth: usize,
) -> Result<OpOutcome> {
    for _ in 0..=max_depth {
        match op::dispatch(ctx.as_ref(), &op) {
            Err(NamingError::Continue {
                resolved,
                remaining,
            }) => {
                let (next, prefix) = continuation_context(resolved, registry, env)?;
                ctx = next;
                op = op.with_name(prefix.join(&remaining));
            }
            other => return other,
        }
    }
    Err(NamingError::FederationDepthExceeded { depth: max_depth })
}

/// A `DirContext` facade over a federated namespace: every operation is
/// reified as a [`NamingOp`] and run through the continuation [`drive_op`]
/// loop, so the aggregate "behaves as a single, possibly hierarchical,
/// aggregate naming service" (§6) — and can itself be passed around, bound,
/// or nested wherever a context is expected.
pub struct FederatedContext {
    base: Arc<dyn DirContext>,
    registry: Arc<ProviderRegistry>,
    env: Environment,
}

impl FederatedContext {
    pub fn new(
        base: Arc<dyn DirContext>,
        registry: Arc<ProviderRegistry>,
        env: Environment,
    ) -> Arc<Self> {
        Arc::new(FederatedContext {
            base,
            registry,
            env,
        })
    }

    /// Run a reified op through the federation loop.
    pub fn run_op(&self, op: &NamingOp) -> crate::error::Result<OpOutcome> {
        drive_op(self.base.clone(), op, &self.registry, &self.env)
    }

    /// Subtree search across mounted naming systems.
    ///
    /// The base system is searched first (through the normal continuation
    /// loop), then every federation link bound directly under `name` is
    /// searched concurrently by a bounded worker pool of
    /// [`keys::FEDERATION_FANOUT`] threads, recursing into nested mounts
    /// up to [`keys::MAX_FEDERATION_DEPTH`] levels. The merge order is
    /// deterministic regardless of worker scheduling: base hits first,
    /// then each mount's hits in mount-name order, each hit renamed to
    /// `"{mount}/{hit}"`. Mounts that cannot be resolved or searched are
    /// skipped — aggregation over heterogeneous member registries is
    /// best-effort, one unreachable system must not fail the federation.
    fn search_federated(
        &self,
        name: &CompositeName,
        filter: &Filter,
        controls: &SearchControls,
        depth: usize,
        parent: Option<&TraceCtx>,
    ) -> Result<Vec<SearchItem>> {
        // One span per (sub)federation searched: the root span of the whole
        // aggregate search at depth 0, a child of the owning mount's span
        // when recursing.
        let span_ctx = match parent {
            Some(p) => p.child(),
            None => TraceCtx::root(),
        };
        let start = Instant::now();
        let result = self.search_federated_inner(name, filter, controls, depth, &span_ctx);
        let outcome = match &result {
            Ok(_) => SpanOutcome::Ok,
            Err(e) if e.is_continue() => SpanOutcome::Continue,
            Err(_) => SpanOutcome::Err,
        };
        rndi_obs::trace::record(SpanRecord::new(
            &span_ctx,
            "federation",
            crate::context::Context::provider_id(self),
            "search",
            outcome,
            start.elapsed(),
        ));
        result
    }

    fn search_federated_inner(
        &self,
        name: &CompositeName,
        filter: &Filter,
        controls: &SearchControls,
        depth: usize,
        span_ctx: &TraceCtx,
    ) -> Result<Vec<SearchItem>> {
        rndi_obs::metrics::histogram(names::FED_DEPTH, &[]).record(depth as u64);
        let mut base_search = NamingOp::search(name.clone(), filter.clone(), controls.clone());
        base_search.set_trace_ctx(span_ctx);
        let mut out = self.run_op(&base_search)?.into_found(OpKind::Search)?;
        let max_depth =
            self.env
                .get_u64(keys::MAX_FEDERATION_DEPTH, DEFAULT_MAX_DEPTH) as usize;
        if controls.scope != SearchScope::Subtree || depth >= max_depth {
            return Ok(Self::truncate(out, controls.count_limit));
        }
        // Federation links bound directly under the base, in name order.
        let mut list_mounts = NamingOp::list_bindings(name.clone());
        list_mounts.set_trace_ctx(span_ctx);
        let mut mounts: Vec<(String, BoundValue)> = match self
            .run_op(&list_mounts)
            .and_then(|o| o.into_bindings(OpKind::ListBindings))
        {
            Ok(bindings) => bindings
                .into_iter()
                .filter(|b| b.value.is_federation_link())
                .map(|b| (b.name, b.value))
                .collect(),
            // Base isn't enumerable (flat service, foreign leaf): nothing
            // to fan out over.
            Err(_) => Vec::new(),
        };
        if mounts.is_empty() {
            return Ok(Self::truncate(out, controls.count_limit));
        }
        mounts.sort_by(|a, b| a.0.cmp(&b.0));
        rndi_obs::metrics::histogram(names::FED_FANOUT, &[]).record(mounts.len() as u64);

        let fanout = self
            .env
            .get_u64(keys::FEDERATION_FANOUT, DEFAULT_FANOUT)
            .max(1) as usize;
        let per_mount = fan_out(mounts.len(), fanout, |i| {
            let (mount, link) = &mounts[i];
            // One child span per mount, recorded by the worker that
            // searched it; parent links keep the tree intact no matter
            // which thread ran which mount.
            let mount_ctx = span_ctx.child();
            let mount_start = Instant::now();
            let searched = self.search_mount(link.clone(), filter, controls, depth + 1, &mount_ctx);
            rndi_obs::trace::record(SpanRecord::new(
                &mount_ctx,
                "federation",
                mount.as_str(),
                "search",
                if searched.is_ok() {
                    SpanOutcome::Ok
                } else {
                    SpanOutcome::Err
                },
                mount_start.elapsed(),
            ));
            searched.unwrap_or_default()
        });
        for ((mount, _), hits) in mounts.iter().zip(per_mount) {
            out.extend(hits.into_iter().map(|mut hit| {
                hit.name = if hit.name.is_empty() {
                    mount.clone()
                } else {
                    format!("{mount}/{}", hit.name)
                };
                hit
            }));
        }
        Ok(Self::truncate(out, controls.count_limit))
    }

    /// Resolve one federation link and run the subtree search inside it
    /// (itself federated, so nested mounts keep aggregating).
    fn search_mount(
        &self,
        link: BoundValue,
        filter: &Filter,
        controls: &SearchControls,
        depth: usize,
        parent: &TraceCtx,
    ) -> Result<Vec<SearchItem>> {
        let (ctx, prefix) = continuation_context(link, &self.registry, &self.env)?;
        let child = FederatedContext::new(ctx, self.registry.clone(), self.env.clone());
        child.search_federated(&prefix, filter, controls, depth, Some(parent))
    }

    fn truncate(mut hits: Vec<SearchItem>, limit: usize) -> Vec<SearchItem> {
        if limit > 0 && hits.len() > limit {
            hits.truncate(limit);
        }
        hits
    }
}

impl crate::context::Context for FederatedContext {
    fn lookup(&self, name: &CompositeName) -> crate::error::Result<BoundValue> {
        self.run_op(&NamingOp::lookup(name.clone()))?
            .into_value(crate::op::OpKind::Lookup)
    }

    fn bind(&self, name: &CompositeName, value: BoundValue) -> crate::error::Result<()> {
        self.run_op(&NamingOp::bind(name.clone(), value))?
            .into_done(crate::op::OpKind::Bind)
    }

    fn rebind(&self, name: &CompositeName, value: BoundValue) -> crate::error::Result<()> {
        self.run_op(&NamingOp::rebind(name.clone(), value))?
            .into_done(crate::op::OpKind::Rebind)
    }

    fn unbind(&self, name: &CompositeName) -> crate::error::Result<()> {
        self.run_op(&NamingOp::unbind(name.clone()))?
            .into_done(crate::op::OpKind::Unbind)
    }

    fn rename(&self, old: &CompositeName, new: &CompositeName) -> crate::error::Result<()> {
        self.run_op(&NamingOp::rename(old.clone(), new.clone()))?
            .into_done(crate::op::OpKind::Rename)
    }

    fn list(
        &self,
        name: &CompositeName,
    ) -> crate::error::Result<Vec<crate::context::NameClassPair>> {
        self.run_op(&NamingOp::list(name.clone()))?
            .into_names(crate::op::OpKind::List)
    }

    fn list_bindings(
        &self,
        name: &CompositeName,
    ) -> crate::error::Result<Vec<crate::context::Binding>> {
        self.run_op(&NamingOp::list_bindings(name.clone()))?
            .into_bindings(crate::op::OpKind::ListBindings)
    }

    fn create_subcontext(&self, name: &CompositeName) -> crate::error::Result<()> {
        self.run_op(&NamingOp::create_subcontext(name.clone()))?
            .into_done(crate::op::OpKind::CreateSubcontext)
    }

    fn destroy_subcontext(&self, name: &CompositeName) -> crate::error::Result<()> {
        self.run_op(&NamingOp::destroy_subcontext(name.clone()))?
            .into_done(crate::op::OpKind::DestroySubcontext)
    }

    fn provider_id(&self) -> String {
        format!("federated({})", self.base.provider_id())
    }

    fn execute_reified(&self, op: &NamingOp) -> Option<Result<OpOutcome>> {
        // Keep annotated ops (trace context above all) intact instead of
        // letting `op::dispatch` rebuild them through the trait methods.
        // Searches take the federated fan-out path, everything else the
        // continuation loop — exactly what the trait methods would do.
        match (op.kind, &op.payload) {
            (OpKind::Search, OpPayload::Query { filter, controls }) => Some(
                self.search_federated(&op.name, filter, controls, 0, op.trace_ctx().as_ref())
                    .map(OpOutcome::Found),
            ),
            _ => Some(self.run_op(op)),
        }
    }
}

impl crate::context::DirContext for FederatedContext {
    fn get_attributes(
        &self,
        name: &CompositeName,
    ) -> crate::error::Result<crate::attrs::Attributes> {
        self.run_op(&NamingOp::get_attributes(name.clone()))?
            .into_attrs(crate::op::OpKind::GetAttributes)
    }

    fn modify_attributes(
        &self,
        name: &CompositeName,
        mods: &[crate::attrs::AttrMod],
    ) -> crate::error::Result<()> {
        self.run_op(&NamingOp::modify_attributes(name.clone(), mods.to_vec()))?
            .into_done(crate::op::OpKind::ModifyAttributes)
    }

    fn bind_with_attrs(
        &self,
        name: &CompositeName,
        value: BoundValue,
        attrs: crate::attrs::Attributes,
    ) -> crate::error::Result<()> {
        self.run_op(&NamingOp::bind_with_attrs(name.clone(), value, attrs))?
            .into_done(crate::op::OpKind::BindWithAttrs)
    }

    fn rebind_with_attrs(
        &self,
        name: &CompositeName,
        value: BoundValue,
        attrs: crate::attrs::Attributes,
    ) -> crate::error::Result<()> {
        self.run_op(&NamingOp::rebind_with_attrs(name.clone(), value, attrs))?
            .into_done(crate::op::OpKind::RebindWithAttrs)
    }

    fn search(
        &self,
        name: &CompositeName,
        filter: &crate::filter::Filter,
        controls: &crate::context::SearchControls,
    ) -> crate::error::Result<Vec<crate::context::SearchItem>> {
        self.search_federated(name, filter, controls, 0, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Context, ContextExt};
    use crate::mem::MemContext;
    use crate::spi::UrlContextFactory;
    use crate::value::Reference;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    /// A factory that serves pre-built MemContexts per host, so tests can
    /// build multi-system federations without real backends.
    struct MemFactory {
        scheme: &'static str,
        hosts: Mutex<HashMap<String, MemContext>>,
    }

    impl MemFactory {
        fn with_host(scheme: &'static str, host: &str, ctx: MemContext) -> Arc<Self> {
            let f = MemFactory {
                scheme,
                hosts: Mutex::new(HashMap::new()),
            };
            f.hosts.lock().insert(host.to_string(), ctx);
            Arc::new(f)
        }
    }

    impl UrlContextFactory for MemFactory {
        fn scheme(&self) -> &str {
            self.scheme
        }
        fn create(&self, url: &RndiUrl, _env: &Environment) -> Result<Arc<dyn DirContext>> {
            self.hosts
                .lock()
                .get(&url.host)
                .cloned()
                .map(|c| Arc::new(c) as Arc<dyn DirContext>)
                .ok_or_else(|| NamingError::service(format!("unknown host {}", url.host)))
        }
    }

    #[test]
    fn two_hop_resolution_via_url_reference() {
        // root --(ref "hdns://host2/sub")--> hdns host2 {sub/{obj}}
        let root = MemContext::new();
        let hdns = MemContext::new();
        hdns.create_subcontext(&"sub".into()).unwrap();
        hdns.bind_str("sub/obj", "found-it").unwrap();

        root.bind(
            &"link".into(),
            BoundValue::Reference(Reference::url("hdns://host2/sub")),
        )
        .unwrap();

        let registry = ProviderRegistry::new();
        registry.register(MemFactory::with_host("hdns", "host2", hdns));
        let env = Environment::new();

        let got = drive(
            Arc::new(root),
            CompositeName::from("link/obj"),
            &registry,
            &env,
            &mut |ctx, name| ctx.lookup(name),
        )
        .unwrap();
        assert_eq!(got.as_str(), Some("found-it"));
    }

    #[test]
    fn live_context_binding_continues_without_registry() {
        let root = MemContext::new();
        let foreign = MemContext::new();
        foreign.bind_str("x", "v").unwrap();
        root.bind(&"mnt".into(), BoundValue::Context(Arc::new(foreign)))
            .unwrap();

        let registry = ProviderRegistry::new();
        let env = Environment::new();
        let got = drive(
            Arc::new(root),
            CompositeName::from("mnt/x"),
            &registry,
            &env,
            &mut |ctx, name| ctx.lookup(name),
        )
        .unwrap();
        assert_eq!(got.as_str(), Some("v"));
    }

    #[test]
    fn cycle_guard_trips() {
        // a -> ref(loop://h) where loop://h resolves to a context that
        // itself mounts loop://h again... simplest: self-referential mount.
        let a = MemContext::new();
        a.bind(
            &"self".into(),
            BoundValue::Reference(Reference::url("loop://h/self")),
        )
        .unwrap();
        let registry = ProviderRegistry::new();
        registry.register(MemFactory::with_host("loop", "h", a.clone()));
        let env = Environment::new().with(keys::MAX_FEDERATION_DEPTH, "4");

        let err = drive(
            Arc::new(a),
            CompositeName::from("self/self/x"),
            &registry,
            &env,
            &mut |ctx, name| ctx.lookup(name),
        )
        .unwrap_err();
        assert!(matches!(err, NamingError::FederationDepthExceeded { .. }));
    }

    #[test]
    fn missing_provider_is_reported() {
        let root = MemContext::new();
        root.bind(
            &"link".into(),
            BoundValue::Reference(Reference::url("nosuch://h")),
        )
        .unwrap();
        let registry = ProviderRegistry::new();
        let env = Environment::new();
        let err = drive(
            Arc::new(root),
            CompositeName::from("link/x"),
            &registry,
            &env,
            &mut |ctx, name| ctx.lookup(name),
        )
        .unwrap_err();
        assert!(matches!(err, NamingError::NoProvider { .. }));
    }

    #[test]
    fn write_operations_follow_federation_too() {
        let root = MemContext::new();
        let far = MemContext::new();
        root.bind(&"mnt".into(), BoundValue::Context(Arc::new(far.clone())))
            .unwrap();

        let registry = ProviderRegistry::new();
        let env = Environment::new();
        drive(
            Arc::new(root),
            CompositeName::from("mnt/new"),
            &registry,
            &env,
            &mut |ctx, name| ctx.bind(name, BoundValue::str("written")),
        )
        .unwrap();
        assert_eq!(far.lookup_str("new").unwrap().as_str(), Some("written"));
    }

    #[test]
    fn federated_context_is_a_first_class_context() {
        // root mounts a foreign mem context; the FederatedContext hides
        // the boundary from ordinary Context users.
        let root = MemContext::new();
        let far = MemContext::new();
        root.bind(&"mnt".into(), BoundValue::Context(Arc::new(far.clone())))
            .unwrap();
        let fed = FederatedContext::new(
            Arc::new(root),
            Arc::new(ProviderRegistry::new()),
            Environment::new(),
        );
        // Plain trait calls traverse the mount transparently.
        fed.bind_str("mnt/deep", "v").unwrap();
        assert_eq!(fed.lookup_str("mnt/deep").unwrap().as_str(), Some("v"));
        assert_eq!(far.lookup_str("deep").unwrap().as_str(), Some("v"));
        fed.unbind_str("mnt/deep").unwrap();
        assert!(far.lookup_str("deep").is_err());

        // And the facade is itself bindable as a live context.
        let outer = MemContext::new();
        outer
            .bind(&"world".into(), BoundValue::Context(fed))
            .unwrap();
        let got = drive(
            Arc::new(outer),
            CompositeName::from("world/mnt"),
            &ProviderRegistry::new(),
            &Environment::new(),
            &mut |c, n| c.list(n),
        )
        .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn federated_context_search_spans_mounts() {
        use crate::attrs::Attributes;
        use crate::context::SearchControls;
        use crate::filter::Filter;
        let root = MemContext::new();
        let far = MemContext::new();
        far.bind_with_attrs(
            &"hit".into(),
            BoundValue::Null,
            Attributes::new().with("k", "v"),
        )
        .unwrap();
        root.bind(&"mnt".into(), BoundValue::Context(Arc::new(far)))
            .unwrap();
        let fed = FederatedContext::new(
            Arc::new(root),
            Arc::new(ProviderRegistry::new()),
            Environment::new(),
        );
        let hits = fed
            .search(
                &"mnt".into(),
                &Filter::parse("(k=v)").unwrap(),
                &SearchControls::default(),
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn subtree_search_fans_out_across_mounts_in_name_order() {
        use crate::attrs::Attributes;
        use crate::context::{SearchControls, SearchScope};
        use crate::filter::Filter;

        // root { local(k=v), mount-b -> far_b{hit-b}, mount-a -> far_a{hit-a, nested -> deep{hit-deep}} }
        let root = MemContext::new();
        root.bind_with_attrs(
            &"local".into(),
            BoundValue::Null,
            Attributes::new().with("k", "v"),
        )
        .unwrap();
        let deep = MemContext::new();
        deep.bind_with_attrs(
            &"hit-deep".into(),
            BoundValue::Null,
            Attributes::new().with("k", "v"),
        )
        .unwrap();
        let far_a = MemContext::new();
        far_a
            .bind_with_attrs(
                &"hit-a".into(),
                BoundValue::Null,
                Attributes::new().with("k", "v"),
            )
            .unwrap();
        far_a
            .bind(&"nested".into(), BoundValue::Context(Arc::new(deep)))
            .unwrap();
        let far_b = MemContext::new();
        far_b
            .bind_with_attrs(
                &"hit-b".into(),
                BoundValue::Null,
                Attributes::new().with("k", "v"),
            )
            .unwrap();
        root.bind(&"mount-b".into(), BoundValue::Context(Arc::new(far_b)))
            .unwrap();
        root.bind(&"mount-a".into(), BoundValue::Context(Arc::new(far_a)))
            .unwrap();

        let controls = SearchControls {
            scope: SearchScope::Subtree,
            ..Default::default()
        };
        let filter = Filter::parse("(k=v)").unwrap();
        for fanout in ["1", "8"] {
            let fed = FederatedContext::new(
                Arc::new(root.clone()),
                Arc::new(ProviderRegistry::new()),
                Environment::new().with(keys::FEDERATION_FANOUT, fanout),
            );
            let names: Vec<String> = crate::context::DirContext::search(
                fed.as_ref(),
                &CompositeName::empty(),
                &filter,
                &controls,
            )
            .unwrap()
            .into_iter()
            .map(|h| h.name)
            .collect();
            // Base hits first, then mounts in name order (a before b),
            // nested mounts recursed — identical for any pool width.
            assert_eq!(
                names,
                vec![
                    "local",
                    "mount-a/hit-a",
                    "mount-a/nested/hit-deep",
                    "mount-b/hit-b"
                ],
                "fanout={fanout}"
            );
        }
    }

    #[test]
    fn federated_search_emits_one_linked_trace() {
        use crate::attrs::Attributes;
        use crate::context::{SearchControls, SearchScope};
        use crate::filter::Filter;

        // Mount names unique to this test, so ring lookups are immune to
        // spans emitted by concurrently running tests.
        let root = MemContext::new();
        let deep = MemContext::new();
        deep.bind_with_attrs(
            &"hit-deep".into(),
            BoundValue::Null,
            Attributes::new().with("k", "v"),
        )
        .unwrap();
        let far_a = MemContext::new();
        far_a
            .bind_with_attrs(
                &"hit-a".into(),
                BoundValue::Null,
                Attributes::new().with("k", "v"),
            )
            .unwrap();
        far_a
            .bind(&"obs-nested".into(), BoundValue::Context(Arc::new(deep)))
            .unwrap();
        let far_b = MemContext::new();
        far_b
            .bind_with_attrs(
                &"hit-b".into(),
                BoundValue::Null,
                Attributes::new().with("k", "v"),
            )
            .unwrap();
        root.bind(&"obs-mount-a".into(), BoundValue::Context(Arc::new(far_a)))
            .unwrap();
        root.bind(&"obs-mount-b".into(), BoundValue::Context(Arc::new(far_b)))
            .unwrap();

        let fed = FederatedContext::new(
            Arc::new(root),
            Arc::new(ProviderRegistry::new()),
            Environment::new(),
        );
        let controls = SearchControls {
            scope: SearchScope::Subtree,
            ..Default::default()
        };
        let filter = Filter::parse("(k=v)").unwrap();
        let hits = crate::context::DirContext::search(
            fed.as_ref(),
            &CompositeName::empty(),
            &filter,
            &controls,
        )
        .unwrap();
        assert!(hits.len() >= 3, "expected all three hits, got {hits:?}");

        let ring = rndi_obs::trace::ring();
        let anchor = ring
            .snapshot()
            .into_iter()
            .rev()
            .find(|s| &*s.provider == "obs-mount-a")
            .expect("per-mount span recorded");
        let trace = ring.trace(anchor.trace_id);
        let roots: Vec<_> = trace.iter().filter(|s| s.parent_span == 0).collect();
        assert_eq!(roots.len(), 1, "one root span per federated search");
        let root_span = roots[0];
        assert_eq!(root_span.layer, "federation");
        assert_eq!(root_span.op, "search");
        assert_eq!(root_span.depth, 0);
        // One child span per mount, all linked to the same root.
        for mount in ["obs-mount-a", "obs-mount-b"] {
            let m = trace
                .iter()
                .find(|s| &*s.provider == mount)
                .unwrap_or_else(|| panic!("child span for {mount}"));
            assert_eq!(m.parent_span, root_span.span_id);
            assert_eq!(m.depth, 1);
        }
        // The nested mount inside mount-a joins the same trace, deeper.
        let nested = trace
            .iter()
            .find(|s| &*s.provider == "obs-nested")
            .expect("nested mount span");
        assert!(nested.depth > 1, "nested span below the mount span");
    }

    #[test]
    fn subtree_search_skips_unresolvable_mounts() {
        use crate::context::{SearchControls, SearchScope};
        use crate::filter::Filter;

        let root = MemContext::new();
        root.bind(
            &"dead".into(),
            BoundValue::Reference(Reference::url("nosuch://host")),
        )
        .unwrap();
        let fed = FederatedContext::new(
            Arc::new(root),
            Arc::new(ProviderRegistry::new()),
            Environment::new(),
        );
        let controls = SearchControls {
            scope: SearchScope::Subtree,
            ..Default::default()
        };
        let hits = crate::context::DirContext::search(
            fed.as_ref(),
            &CompositeName::empty(),
            &Filter::parse("(k=v)").unwrap(),
            &controls,
        )
        .unwrap();
        assert!(hits.is_empty(), "unreachable mount is skipped, not fatal");
    }

    #[test]
    fn continuation_through_non_link_value_fails() {
        match continuation_context(
            BoundValue::I64(3),
            &ProviderRegistry::new(),
            &Environment::new(),
        ) {
            Err(NamingError::NotAContext { .. }) => {}
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("expected failure"),
        }
    }
}
