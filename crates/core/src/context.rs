//! The `Context` / `DirContext` trait hierarchy.
//!
//! JNDI deliberately defines a hierarchy of interfaces and lets each
//! provider choose its conformance level; here [`Context`] carries the
//! naming operations and [`DirContext`] adds directory (attribute/search)
//! operations. Optional operations have default implementations returning
//! [`NamingError::NotSupported`], so a minimal provider only implements the
//! core set — exactly the "lowest-common-denominator base interface,
//! extensible per provider" design the paper leans on.

use std::sync::Arc;

use crate::attrs::{AttrMod, Attributes};
use crate::error::{NamingError, Result};
use crate::event::{ListenerHandle, NamingListener};
use crate::filter::Filter;
use crate::name::CompositeName;
use crate::value::BoundValue;

/// Name plus class of a bound object — what [`Context::list`] returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NameClassPair {
    /// Name relative to the listed context.
    pub name: String,
    /// Class of the bound value (see [`BoundValue::class_name`]).
    pub class_name: String,
}

/// Name plus the bound value — what [`Context::list_bindings`] returns.
#[derive(Clone, Debug)]
pub struct Binding {
    pub name: String,
    pub value: BoundValue,
}

/// Search scope, as in LDAP.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchScope {
    /// Only the named object itself.
    Object,
    /// Direct children of the named context.
    #[default]
    OneLevel,
    /// The whole subtree under the named context.
    Subtree,
}

/// Knobs for [`DirContext::search`].
#[derive(Clone, Debug, Default)]
pub struct SearchControls {
    pub scope: SearchScope,
    /// Stop after this many results; `0` = unlimited.
    pub count_limit: usize,
    /// Project returned attributes to these ids; `None` = all.
    pub return_attrs: Option<Vec<String>>,
    /// Also return the bound values, not just names/attributes.
    pub return_values: bool,
}

/// One search hit.
#[derive(Clone, Debug)]
pub struct SearchItem {
    /// Name relative to the search base.
    pub name: String,
    /// The bound value, when requested via `return_values`.
    pub value: Option<BoundValue>,
    pub attrs: Attributes,
}

/// Core naming operations (JNDI `javax.naming.Context`).
///
/// All names are composite; a provider resolves as many leading components
/// as belong to its own naming system and signals
/// [`NamingError::Continue`] when resolution crosses into a foreign system.
pub trait Context: Send + Sync {
    /// Retrieve the value bound to `name`.
    fn lookup(&self, name: &CompositeName) -> Result<BoundValue>;

    /// Bind `value` under `name` **atomically**: fails with
    /// [`NamingError::AlreadyBound`] if the name is taken.
    fn bind(&self, name: &CompositeName, value: BoundValue) -> Result<()>;

    /// Bind `value` under `name`, replacing any existing binding.
    fn rebind(&self, name: &CompositeName, value: BoundValue) -> Result<()>;

    /// Remove the binding for `name`. Unbinding an unbound name succeeds
    /// (JNDI semantics).
    fn unbind(&self, name: &CompositeName) -> Result<()>;

    /// Atomically rename a binding. Optional.
    fn rename(&self, _old: &CompositeName, _new: &CompositeName) -> Result<()> {
        Err(NamingError::unsupported("rename"))
    }

    /// Enumerate the names (and value classes) bound in the context `name`.
    fn list(&self, name: &CompositeName) -> Result<Vec<NameClassPair>>;

    /// Enumerate names *and values* bound in the context `name`.
    fn list_bindings(&self, name: &CompositeName) -> Result<Vec<Binding>>;

    /// Create a subcontext. Optional (flat services do not nest).
    fn create_subcontext(&self, _name: &CompositeName) -> Result<()> {
        Err(NamingError::unsupported("create_subcontext"))
    }

    /// Destroy an **empty** subcontext. Optional.
    fn destroy_subcontext(&self, _name: &CompositeName) -> Result<()> {
        Err(NamingError::unsupported("destroy_subcontext"))
    }

    /// Subscribe to naming events under `name` (prefix-scoped). Optional.
    fn add_listener(
        &self,
        _name: &CompositeName,
        _listener: Arc<dyn NamingListener>,
    ) -> Result<ListenerHandle> {
        Err(NamingError::unsupported("add_listener"))
    }

    /// Cancel a subscription. Optional.
    fn remove_listener(&self, _handle: ListenerHandle) -> Result<()> {
        Err(NamingError::unsupported("remove_listener"))
    }

    /// A human-readable identifier for diagnostics (provider + instance).
    fn provider_id(&self) -> String {
        "anonymous".to_string()
    }

    /// Execute a reified operation natively, or `None` to have
    /// [`crate::op::dispatch`] bridge to the per-method trait calls.
    /// Contexts that understand op values (provider pipelines, federated
    /// facades) override this so op annotations — the trace context above
    /// all — survive instead of being dropped when the bridge rebuilds a
    /// bare op from trait-method arguments.
    fn execute_reified(&self, _op: &crate::op::NamingOp) -> Option<Result<crate::op::OpOutcome>> {
        None
    }

    /// The compound-name syntax of this naming system (JNDI's
    /// `getNameParser`): how a single composite component would be written
    /// natively — dots for DNS, commas for LDAP, slashes by default.
    fn compound_syntax(&self) -> crate::name::CompoundSyntax {
        crate::name::CompoundSyntax::path()
    }
}

/// Directory operations (JNDI `javax.naming.directory.DirContext`).
pub trait DirContext: Context {
    /// Retrieve the attributes of `name` (all of them).
    fn get_attributes(&self, name: &CompositeName) -> Result<Attributes>;

    /// Apply attribute modifications to `name`. Optional.
    fn modify_attributes(&self, _name: &CompositeName, _mods: &[AttrMod]) -> Result<()> {
        Err(NamingError::unsupported("modify_attributes"))
    }

    /// Bind with attributes, atomically.
    fn bind_with_attrs(
        &self,
        name: &CompositeName,
        value: BoundValue,
        attrs: Attributes,
    ) -> Result<()>;

    /// Rebind with attributes.
    fn rebind_with_attrs(
        &self,
        name: &CompositeName,
        value: BoundValue,
        attrs: Attributes,
    ) -> Result<()>;

    /// Search the context `name` for entries matching `filter`.
    fn search(
        &self,
        _name: &CompositeName,
        _filter: &Filter,
        _controls: &SearchControls,
    ) -> Result<Vec<SearchItem>> {
        Err(NamingError::unsupported("search"))
    }
}

/// Convenience extension methods usable on any `Context` (string-name
/// entry points, mirroring the JNDI overloads that take `String`).
pub trait ContextExt: Context {
    /// `lookup` with a string name (parsed as a composite name).
    fn lookup_str(&self, name: &str) -> Result<BoundValue> {
        self.lookup(&CompositeName::parse(name)?)
    }

    /// `bind` with a string name.
    fn bind_str(&self, name: &str, value: impl Into<BoundValue>) -> Result<()> {
        self.bind(&CompositeName::parse(name)?, value.into())
    }

    /// `rebind` with a string name.
    fn rebind_str(&self, name: &str, value: impl Into<BoundValue>) -> Result<()> {
        self.rebind(&CompositeName::parse(name)?, value.into())
    }

    /// `unbind` with a string name.
    fn unbind_str(&self, name: &str) -> Result<()> {
        self.unbind(&CompositeName::parse(name)?)
    }

    /// `list` with a string name.
    fn list_str(&self, name: &str) -> Result<Vec<NameClassPair>> {
        self.list(&CompositeName::parse(name)?)
    }
}

impl<T: Context + ?Sized> ContextExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A do-nothing context exercising the default conformance level.
    struct Minimal;

    impl Context for Minimal {
        fn lookup(&self, name: &CompositeName) -> Result<BoundValue> {
            Err(NamingError::not_found(name.to_string()))
        }
        fn bind(&self, _: &CompositeName, _: BoundValue) -> Result<()> {
            Ok(())
        }
        fn rebind(&self, _: &CompositeName, _: BoundValue) -> Result<()> {
            Ok(())
        }
        fn unbind(&self, _: &CompositeName) -> Result<()> {
            Ok(())
        }
        fn list(&self, _: &CompositeName) -> Result<Vec<NameClassPair>> {
            Ok(vec![])
        }
        fn list_bindings(&self, _: &CompositeName) -> Result<Vec<Binding>> {
            Ok(vec![])
        }
    }

    #[test]
    fn optional_operations_report_unsupported() {
        let c = Minimal;
        let n = CompositeName::from("x");
        assert!(matches!(
            c.rename(&n, &n),
            Err(NamingError::NotSupported { .. })
        ));
        assert!(matches!(
            c.create_subcontext(&n),
            Err(NamingError::NotSupported { .. })
        ));
        assert!(matches!(
            c.destroy_subcontext(&n),
            Err(NamingError::NotSupported { .. })
        ));
    }

    #[test]
    fn string_extension_methods_parse() {
        let c = Minimal;
        assert!(c.bind_str("a/b", "v").is_ok());
        assert!(matches!(
            c.lookup_str("a/b"),
            Err(NamingError::NameNotFound { .. })
        ));
        // Malformed names surface parse errors.
        assert!(matches!(
            c.lookup_str("'oops"),
            Err(NamingError::InvalidName { .. })
        ));
    }

    #[test]
    fn search_controls_defaults() {
        let c = SearchControls::default();
        assert_eq!(c.scope, SearchScope::OneLevel);
        assert_eq!(c.count_limit, 0);
        assert!(c.return_attrs.is_none());
        assert!(!c.return_values);
    }
}
