//! Directory attributes: `<name, object, attributes>` is the JNDI data
//! model. Attribute identifiers compare case-insensitively (as in LDAP);
//! attributes are multi-valued and unordered.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single attribute value. Kept deliberately simple — string and binary
/// cover every backend in this workspace; numeric comparisons in search
/// filters parse the string form.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AttrValue {
    Str(String),
    Bytes(Vec<u8>),
}

impl AttrValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            AttrValue::Bytes(_) => None,
        }
    }
}

impl fmt::Debug for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "{s:?}"),
            AttrValue::Bytes(b) => write!(f, "bytes[{}]", b.len()),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

/// A named, multi-valued attribute.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Identifier in its original case (comparison is case-insensitive).
    pub id: String,
    pub values: Vec<AttrValue>,
}

impl Attribute {
    pub fn new(id: impl Into<String>) -> Self {
        Attribute {
            id: id.into(),
            values: Vec::new(),
        }
    }

    pub fn single(id: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        Attribute {
            id: id.into(),
            values: vec![value.into()],
        }
    }

    pub fn with(mut self, value: impl Into<AttrValue>) -> Self {
        self.values.push(value.into());
        self
    }

    /// First value as a string, if any.
    pub fn first_str(&self) -> Option<&str> {
        self.values.first().and_then(|v| v.as_str())
    }

    /// Whether any value (string form, case-insensitive) equals `s`.
    pub fn contains_str(&self, s: &str) -> bool {
        self.values
            .iter()
            .any(|v| v.as_str().is_some_and(|x| x.eq_ignore_ascii_case(s)))
    }
}

/// An attribute set keyed by lower-cased identifier.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attributes {
    attrs: BTreeMap<String, Attribute>,
}

impl Attributes {
    pub fn new() -> Self {
        Attributes::default()
    }

    /// Builder-style insertion of a single-valued attribute.
    pub fn with(mut self, id: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.put(Attribute::single(id, value));
        self
    }

    /// Insert or replace an attribute.
    pub fn put(&mut self, attr: Attribute) -> Option<Attribute> {
        self.attrs.insert(attr.id.to_ascii_lowercase(), attr)
    }

    /// Add a value to an existing attribute, creating it if absent.
    pub fn add_value(&mut self, id: &str, value: impl Into<AttrValue>) {
        let key = id.to_ascii_lowercase();
        self.attrs
            .entry(key)
            .or_insert_with(|| Attribute::new(id))
            .values
            .push(value.into());
    }

    /// Case-insensitive fetch.
    pub fn get(&self, id: &str) -> Option<&Attribute> {
        self.attrs.get(&id.to_ascii_lowercase())
    }

    /// Remove an attribute (case-insensitive).
    pub fn remove(&mut self, id: &str) -> Option<Attribute> {
        self.attrs.remove(&id.to_ascii_lowercase())
    }

    pub fn contains(&self, id: &str) -> bool {
        self.attrs.contains_key(&id.to_ascii_lowercase())
    }

    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterate attributes in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = &Attribute> {
        self.attrs.values()
    }

    /// A copy containing only the requested identifiers (the
    /// `getAttributes(name, attrIds)` projection).
    pub fn project(&self, ids: &[&str]) -> Attributes {
        let mut out = Attributes::new();
        for id in ids {
            if let Some(a) = self.get(id) {
                out.put(a.clone());
            }
        }
        out
    }

    /// Merge `other` into `self`, replacing same-id attributes.
    pub fn merge(&mut self, other: &Attributes) {
        for a in other.iter() {
            self.put(a.clone());
        }
    }
}

impl FromIterator<Attribute> for Attributes {
    fn from_iter<I: IntoIterator<Item = Attribute>>(iter: I) -> Self {
        let mut out = Attributes::new();
        for a in iter {
            out.put(a);
        }
        out
    }
}

/// Modification operations for `modify_attributes`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrMod {
    /// Add values (creating the attribute if needed).
    Add(Attribute),
    /// Replace the attribute wholesale.
    Replace(Attribute),
    /// Remove the attribute entirely (values in the payload are ignored).
    Remove(String),
    /// Remove specific values; removes the attribute if none remain.
    RemoveValues(Attribute),
}

impl AttrMod {
    /// Apply this modification to an attribute set.
    pub fn apply(&self, attrs: &mut Attributes) {
        match self {
            AttrMod::Add(a) => {
                for v in &a.values {
                    attrs.add_value(&a.id, v.clone());
                }
            }
            AttrMod::Replace(a) => {
                attrs.put(a.clone());
            }
            AttrMod::Remove(id) => {
                attrs.remove(id);
            }
            AttrMod::RemoveValues(a) => {
                if let Some(existing) = attrs.get(&a.id).cloned() {
                    let remaining: Vec<AttrValue> = existing
                        .values
                        .iter()
                        .filter(|v| !a.values.contains(v))
                        .cloned()
                        .collect();
                    if remaining.is_empty() {
                        attrs.remove(&a.id);
                    } else {
                        attrs.put(Attribute {
                            id: existing.id,
                            values: remaining,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_ids() {
        let mut attrs = Attributes::new();
        attrs.put(Attribute::single("CPUCount", "8"));
        assert!(attrs.contains("cpucount"));
        assert_eq!(attrs.get("CPUCOUNT").unwrap().first_str(), Some("8"));
        attrs.remove("CpuCount");
        assert!(attrs.is_empty());
    }

    #[test]
    fn multivalued() {
        let a = Attribute::new("member").with("alice").with("bob");
        assert_eq!(a.values.len(), 2);
        assert!(a.contains_str("ALICE"));
        assert!(!a.contains_str("carol"));
    }

    #[test]
    fn add_value_creates_or_extends() {
        let mut attrs = Attributes::new();
        attrs.add_value("tag", "x");
        attrs.add_value("TAG", "y");
        assert_eq!(attrs.get("tag").unwrap().values.len(), 2);
        assert_eq!(attrs.len(), 1);
    }

    #[test]
    fn projection() {
        let attrs = Attributes::new()
            .with("a", "1")
            .with("b", "2")
            .with("c", "3");
        let p = attrs.project(&["A", "c", "zz"]);
        assert_eq!(p.len(), 2);
        assert!(p.contains("a") && p.contains("c") && !p.contains("b"));
    }

    #[test]
    fn modifications() {
        let mut attrs = Attributes::new().with("color", "red");
        AttrMod::Add(Attribute::single("color", "blue")).apply(&mut attrs);
        assert_eq!(attrs.get("color").unwrap().values.len(), 2);

        AttrMod::RemoveValues(Attribute::single("color", "red")).apply(&mut attrs);
        assert_eq!(attrs.get("color").unwrap().first_str(), Some("blue"));

        AttrMod::RemoveValues(Attribute::single("color", "blue")).apply(&mut attrs);
        assert!(
            !attrs.contains("color"),
            "attribute gone when last value removed"
        );

        AttrMod::Replace(Attribute::single("size", "xl")).apply(&mut attrs);
        AttrMod::Replace(Attribute::single("size", "s")).apply(&mut attrs);
        assert_eq!(attrs.get("size").unwrap().first_str(), Some("s"));

        AttrMod::Remove("size".into()).apply(&mut attrs);
        assert!(attrs.is_empty());
    }

    #[test]
    fn merge_replaces() {
        let mut a = Attributes::new().with("x", "1").with("y", "2");
        let b = Attributes::new().with("y", "9").with("z", "3");
        a.merge(&b);
        assert_eq!(a.get("y").unwrap().first_str(), Some("9"));
        assert_eq!(a.len(), 3);
    }
}
