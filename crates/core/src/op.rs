//! Reified naming operations.
//!
//! Every [`Context`]/[`DirContext`](crate::context::DirContext) call can be
//! expressed as a first-class request value ([`NamingOp`]) paired with a
//! response value ([`OpOutcome`]). Reifying the call gives every layer that
//! sits between the application and a backend — federation, caching, retry,
//! stats, marshalling — a single uniform unit to operate on, instead of
//! one code path per trait method. The pipeline machinery that routes these
//! values lives in [`crate::spi`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::attrs::{AttrMod, Attributes};
use crate::context::{Binding, DirContext, NameClassPair, SearchControls, SearchItem};
use crate::error::{NamingError, Result};
use crate::event::{ListenerHandle, NamingListener};
use crate::filter::Filter;
use crate::name::CompositeName;
use crate::value::BoundValue;
use rndi_obs::{TraceCell, TraceCtx};

/// Meta key under which an op's encoded [`TraceCtx`] travels the pipeline
/// (and federation hops — [`NamingOp::with_name`] preserves meta).
pub const TRACE_META_KEY: &str = "obs.trace";

/// The marshalling codec shared by every provider whose backing store holds
/// opaque bytes (Jini entry payloads, HDNS leaf values, LDAP attribute
/// strings, filesystem `.val` files). Lifted out of `providers::common` so
/// the pipeline's marshalling interceptor and the providers use one
/// implementation.
pub mod codec {
    use super::*;
    use crate::value::StoredValue;

    /// Marshal a bound value into provider-storable bytes. Live contexts
    /// are rejected — bind a [`crate::value::Reference::url`] instead (the
    /// durable representation of a federation link).
    pub fn marshal(value: &BoundValue) -> Result<Vec<u8>> {
        let stored = StoredValue::try_from_bound(value).ok_or_else(|| {
            NamingError::unsupported("binding a live context; bind a URL reference instead")
        })?;
        Ok(stored.encode())
    }

    /// Unmarshal provider bytes back into a bound value. Undecodable bytes
    /// surface as raw `Bytes` (foreign data bound by non-RNDI clients). A
    /// trace frame, if present, is stripped and discarded — readers that
    /// care about the context use [`decode_frame`].
    pub fn unmarshal(bytes: &[u8]) -> BoundValue {
        let (_, payload) = rndi_obs::frame::strip(bytes);
        match StoredValue::decode(payload) {
            Some(s) => s.into_bound(),
            None => BoundValue::Bytes(bytes.to_vec()),
        }
    }

    /// Marshal a value for the wire, prepending a trace header when the
    /// originating op carries a trace context. With `trace == None` the
    /// output is byte-identical to [`marshal`], so untraced clients write
    /// exactly the legacy encoding (old servers keep working).
    pub fn encode_frame(value: &BoundValue, trace: Option<&TraceCtx>) -> Result<Vec<u8>> {
        let bytes = marshal(value)?;
        Ok(match trace {
            Some(ctx) => rndi_obs::frame::wrap(ctx, &bytes),
            None => bytes,
        })
    }

    /// Inverse of [`encode_frame`]: split off the trace header (if any) and
    /// unmarshal the remaining payload. Bytes written by an old client
    /// (no header) decode with `None` for the context.
    pub fn decode_frame(bytes: &[u8]) -> (BoundValue, Option<TraceCtx>) {
        let (ctx, payload) = rndi_obs::frame::strip(bytes);
        (unmarshal(payload), ctx)
    }
}

/// The operation kind — one variant per `Context`/`DirContext` method.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    Lookup,
    Bind,
    Rebind,
    Unbind,
    Rename,
    List,
    ListBindings,
    CreateSubcontext,
    DestroySubcontext,
    GetAttributes,
    ModifyAttributes,
    BindWithAttrs,
    RebindWithAttrs,
    Search,
    AddListener,
    RemoveListener,
}

/// All kinds, in stable display order (for stats tables).
pub const ALL_OP_KINDS: [OpKind; 16] = [
    OpKind::Lookup,
    OpKind::Bind,
    OpKind::Rebind,
    OpKind::Unbind,
    OpKind::Rename,
    OpKind::List,
    OpKind::ListBindings,
    OpKind::CreateSubcontext,
    OpKind::DestroySubcontext,
    OpKind::GetAttributes,
    OpKind::ModifyAttributes,
    OpKind::BindWithAttrs,
    OpKind::RebindWithAttrs,
    OpKind::Search,
    OpKind::AddListener,
    OpKind::RemoveListener,
];

impl OpKind {
    /// The `Context`/`DirContext` method name this kind reifies.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Lookup => "lookup",
            OpKind::Bind => "bind",
            OpKind::Rebind => "rebind",
            OpKind::Unbind => "unbind",
            OpKind::Rename => "rename",
            OpKind::List => "list",
            OpKind::ListBindings => "list_bindings",
            OpKind::CreateSubcontext => "create_subcontext",
            OpKind::DestroySubcontext => "destroy_subcontext",
            OpKind::GetAttributes => "get_attributes",
            OpKind::ModifyAttributes => "modify_attributes",
            OpKind::BindWithAttrs => "bind_with_attrs",
            OpKind::RebindWithAttrs => "rebind_with_attrs",
            OpKind::Search => "search",
            OpKind::AddListener => "add_listener",
            OpKind::RemoveListener => "remove_listener",
        }
    }

    /// Dense index for per-kind stats arrays.
    pub fn index(self) -> usize {
        ALL_OP_KINDS
            .iter()
            .position(|k| *k == self)
            .expect("listed")
    }

    /// Does this operation change namespace state? Mutations invalidate
    /// cached reads for the touched name.
    pub fn is_mutation(self) -> bool {
        matches!(
            self,
            OpKind::Bind
                | OpKind::Rebind
                | OpKind::Unbind
                | OpKind::Rename
                | OpKind::CreateSubcontext
                | OpKind::DestroySubcontext
                | OpKind::ModifyAttributes
                | OpKind::BindWithAttrs
                | OpKind::RebindWithAttrs
        )
    }

    /// Does this operation carry a value payload to be stored?
    pub fn carries_value(self) -> bool {
        matches!(
            self,
            OpKind::Bind | OpKind::Rebind | OpKind::BindWithAttrs | OpKind::RebindWithAttrs
        )
    }
}

/// The kind-specific request payload.
#[derive(Clone)]
pub enum OpPayload {
    /// No payload (lookup, unbind, list, …).
    None,
    /// A live value to store (bind/rebind before marshalling).
    Value(BoundValue),
    /// A pre-marshalled value (bind/rebind after the marshalling layer).
    Wire { bytes: Vec<u8>, class_name: String },
    /// The destination name of a rename.
    NewName(CompositeName),
    /// Attribute modifications.
    Mods(Vec<AttrMod>),
    /// A directory search.
    Query {
        filter: Filter,
        controls: SearchControls,
    },
    /// An event listener to register.
    Listener(Arc<dyn NamingListener>),
    /// A listener handle to unregister.
    Handle(ListenerHandle),
}

impl fmt::Debug for OpPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpPayload::None => write!(f, "None"),
            OpPayload::Value(v) => write!(f, "Value({})", v.class_name()),
            OpPayload::Wire { bytes, class_name } => {
                write!(f, "Wire({} bytes, {class_name})", bytes.len())
            }
            OpPayload::NewName(n) => write!(f, "NewName({n})"),
            OpPayload::Mods(m) => write!(f, "Mods({})", m.len()),
            OpPayload::Query { filter, .. } => write!(f, "Query({filter:?})"),
            OpPayload::Listener(_) => write!(f, "Listener"),
            OpPayload::Handle(h) => write!(f, "Handle({h:?})"),
        }
    }
}

/// Extensible per-operation metadata: interceptors annotate the op as it
/// travels the pipeline (retry attempt, cache disposition, trace tags…)
/// without the op schema having to know about them.
#[derive(Clone, Debug, Default)]
pub struct MetaBag(BTreeMap<String, String>);

impl MetaBag {
    pub fn new() -> Self {
        MetaBag::default()
    }

    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.0.insert(key.into(), value.into());
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(|s| s.as_str())
    }

    pub fn contains(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A reified naming operation: one `Context`/`DirContext` call as a value.
#[derive(Clone, Debug)]
pub struct NamingOp {
    pub kind: OpKind,
    pub name: CompositeName,
    pub payload: OpPayload,
    /// Attributes accompanying `bind_with_attrs`/`rebind_with_attrs`.
    pub attrs: Option<Attributes>,
    pub meta: MetaBag,
    /// The trace context this op executes under. A first-class
    /// interior-mutable cell so per-layer re-annotation is a handful of
    /// relaxed stores (no string encode, no op clone); the transports
    /// translate it to/from the [`TRACE_META_KEY`] meta string (and the
    /// v1 frame header) only at the wire boundary.
    pub trace: TraceCell,
}

impl NamingOp {
    fn raw(kind: OpKind, name: CompositeName, payload: OpPayload) -> Self {
        NamingOp {
            kind,
            name,
            payload,
            attrs: None,
            meta: MetaBag::new(),
            trace: TraceCell::empty(),
        }
    }

    pub fn lookup(name: CompositeName) -> Self {
        Self::raw(OpKind::Lookup, name, OpPayload::None)
    }

    pub fn bind(name: CompositeName, value: BoundValue) -> Self {
        Self::raw(OpKind::Bind, name, OpPayload::Value(value))
    }

    pub fn rebind(name: CompositeName, value: BoundValue) -> Self {
        Self::raw(OpKind::Rebind, name, OpPayload::Value(value))
    }

    pub fn unbind(name: CompositeName) -> Self {
        Self::raw(OpKind::Unbind, name, OpPayload::None)
    }

    pub fn rename(old: CompositeName, new: CompositeName) -> Self {
        Self::raw(OpKind::Rename, old, OpPayload::NewName(new))
    }

    pub fn list(name: CompositeName) -> Self {
        Self::raw(OpKind::List, name, OpPayload::None)
    }

    pub fn list_bindings(name: CompositeName) -> Self {
        Self::raw(OpKind::ListBindings, name, OpPayload::None)
    }

    pub fn create_subcontext(name: CompositeName) -> Self {
        Self::raw(OpKind::CreateSubcontext, name, OpPayload::None)
    }

    pub fn destroy_subcontext(name: CompositeName) -> Self {
        Self::raw(OpKind::DestroySubcontext, name, OpPayload::None)
    }

    pub fn get_attributes(name: CompositeName) -> Self {
        Self::raw(OpKind::GetAttributes, name, OpPayload::None)
    }

    pub fn modify_attributes(name: CompositeName, mods: Vec<AttrMod>) -> Self {
        Self::raw(OpKind::ModifyAttributes, name, OpPayload::Mods(mods))
    }

    pub fn bind_with_attrs(name: CompositeName, value: BoundValue, attrs: Attributes) -> Self {
        let mut op = Self::raw(OpKind::BindWithAttrs, name, OpPayload::Value(value));
        op.attrs = Some(attrs);
        op
    }

    pub fn rebind_with_attrs(name: CompositeName, value: BoundValue, attrs: Attributes) -> Self {
        let mut op = Self::raw(OpKind::RebindWithAttrs, name, OpPayload::Value(value));
        op.attrs = Some(attrs);
        op
    }

    pub fn search(name: CompositeName, filter: Filter, controls: SearchControls) -> Self {
        Self::raw(OpKind::Search, name, OpPayload::Query { filter, controls })
    }

    pub fn add_listener(name: CompositeName, listener: Arc<dyn NamingListener>) -> Self {
        Self::raw(OpKind::AddListener, name, OpPayload::Listener(listener))
    }

    pub fn remove_listener(handle: ListenerHandle) -> Self {
        Self::raw(
            OpKind::RemoveListener,
            CompositeName::empty(),
            OpPayload::Handle(handle),
        )
    }

    /// The same operation re-targeted at a different name (federation hops
    /// rewrite the remaining name as resolution crosses system boundaries).
    pub fn with_name(&self, name: CompositeName) -> Self {
        let mut op = self.clone();
        op.name = name;
        op
    }

    /// The value payload as a live [`BoundValue`], unmarshalling a wire
    /// payload if the marshalling layer already encoded it.
    pub fn value(&self) -> Result<BoundValue> {
        match &self.payload {
            OpPayload::Value(v) => Ok(v.clone()),
            OpPayload::Wire { bytes, .. } => Ok(codec::unmarshal(bytes)),
            _ => Err(NamingError::service(format!(
                "{} carries no value payload",
                self.kind.label()
            ))),
        }
    }

    /// The value payload as wire bytes plus its class name. If the
    /// marshalling interceptor already ran, the pre-encoded bytes are
    /// returned; otherwise the value is encoded here (so a pipeline without
    /// the marshalling layer still functions).
    pub fn wire_value(&self) -> Result<(Vec<u8>, String)> {
        match &self.payload {
            OpPayload::Wire { bytes, class_name } => Ok((bytes.clone(), class_name.clone())),
            OpPayload::Value(v) => Ok((codec::marshal(v)?, v.class_name().to_string())),
            _ => Err(NamingError::service(format!(
                "{} carries no value payload",
                self.kind.label()
            ))),
        }
    }

    /// The rename destination.
    pub fn new_name(&self) -> Result<&CompositeName> {
        match &self.payload {
            OpPayload::NewName(n) => Ok(n),
            _ => Err(NamingError::service("rename payload missing")),
        }
    }

    /// How a sharded routing tier should place this operation.
    ///
    /// The routing key of a name is its *normalized first component*
    /// (leading/trailing whitespace trimmed): a partitioning layer that
    /// hashes only the head keeps every name under one top-level prefix on
    /// the same shard, so subtree operations (`list("apps")`,
    /// `search("apps", …)`) stay point-to-point. Ops whose target name is
    /// empty address the whole namespace and must scatter — as must
    /// `remove_listener`, which carries no name at all — and a `rename`
    /// routes by its *source* name; the router compares against
    /// [`NamingOp::new_name`]'s key to detect a cross-shard move.
    pub fn routing_key(&self) -> RoutingKey<'_> {
        match self.name.head().map(str::trim) {
            Some(head) if !head.is_empty() => RoutingKey::Shard(head),
            _ => RoutingKey::Scatter,
        }
    }

    /// The trace context this op is executing under, if any layer above
    /// annotated one. Ops annotated before the wire boundary existed may
    /// carry the context as a [`TRACE_META_KEY`] meta string instead;
    /// parse it as a fallback.
    pub fn trace_ctx(&self) -> Option<TraceCtx> {
        self.trace
            .get()
            .or_else(|| self.meta.get(TRACE_META_KEY).and_then(TraceCtx::parse))
    }

    /// Annotate this op with a trace context (overwriting any previous one).
    pub fn set_trace_ctx(&mut self, ctx: &TraceCtx) {
        self.trace.set(ctx);
    }
}

/// Where a sharded routing tier must send an operation — see
/// [`NamingOp::routing_key`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingKey<'a> {
    /// The op targets the namespace subtree rooted at this normalized
    /// first name component; exactly one shard owns it.
    Shard(&'a str),
    /// The op addresses the whole namespace (empty target name): every
    /// shard must be consulted and the results merged.
    Scatter,
}

/// The reified response of a [`NamingOp`].
#[derive(Clone)]
pub enum OpOutcome {
    /// A unit-returning operation completed.
    Done,
    /// A looked-up value.
    Value(BoundValue),
    /// A looked-up value still in wire form (decoded by the marshalling
    /// layer, or by the pipeline's context facade as a fallback).
    Wire(Vec<u8>),
    /// `list` results.
    Names(Vec<NameClassPair>),
    /// `list_bindings` results.
    Bindings(Vec<Binding>),
    /// `get_attributes` result.
    Attrs(Attributes),
    /// `search` results.
    Found(Vec<SearchItem>),
    /// `add_listener` result.
    Subscribed(ListenerHandle),
}

impl fmt::Debug for OpOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpOutcome::Done => write!(f, "Done"),
            OpOutcome::Value(v) => write!(f, "Value({})", v.class_name()),
            OpOutcome::Wire(b) => write!(f, "Wire({} bytes)", b.len()),
            OpOutcome::Names(n) => write!(f, "Names({})", n.len()),
            OpOutcome::Bindings(b) => write!(f, "Bindings({})", b.len()),
            OpOutcome::Attrs(a) => write!(f, "Attrs({})", a.len()),
            OpOutcome::Found(s) => write!(f, "Found({})", s.len()),
            OpOutcome::Subscribed(h) => write!(f, "Subscribed({h:?})"),
        }
    }
}

fn unexpected(kind: OpKind, got: &OpOutcome) -> NamingError {
    NamingError::service(format!(
        "{} returned an unexpected outcome {:?}",
        kind.label(),
        got
    ))
}

impl OpOutcome {
    pub fn into_value(self, kind: OpKind) -> Result<BoundValue> {
        match self {
            OpOutcome::Value(v) => Ok(v),
            OpOutcome::Wire(b) => Ok(codec::unmarshal(&b)),
            other => Err(unexpected(kind, &other)),
        }
    }

    pub fn into_done(self, kind: OpKind) -> Result<()> {
        match self {
            OpOutcome::Done => Ok(()),
            other => Err(unexpected(kind, &other)),
        }
    }

    pub fn into_names(self, kind: OpKind) -> Result<Vec<NameClassPair>> {
        match self {
            OpOutcome::Names(n) => Ok(n),
            other => Err(unexpected(kind, &other)),
        }
    }

    pub fn into_bindings(self, kind: OpKind) -> Result<Vec<Binding>> {
        match self {
            OpOutcome::Bindings(b) => Ok(b),
            other => Err(unexpected(kind, &other)),
        }
    }

    pub fn into_attrs(self, kind: OpKind) -> Result<Attributes> {
        match self {
            OpOutcome::Attrs(a) => Ok(a),
            other => Err(unexpected(kind, &other)),
        }
    }

    pub fn into_found(self, kind: OpKind) -> Result<Vec<SearchItem>> {
        match self {
            OpOutcome::Found(s) => Ok(s),
            other => Err(unexpected(kind, &other)),
        }
    }

    pub fn into_handle(self, kind: OpKind) -> Result<ListenerHandle> {
        match self {
            OpOutcome::Subscribed(h) => Ok(h),
            other => Err(unexpected(kind, &other)),
        }
    }
}

/// Dispatch one reified op against a plain [`DirContext`]. This is the
/// bridge between the op world and the trait world: the federation driver
/// and [`crate::spi::ContextBackend`] both route through it, so any legacy
/// context participates in the reified path unchanged.
pub fn dispatch(ctx: &dyn DirContext, op: &NamingOp) -> Result<OpOutcome> {
    // Contexts that understand reified ops natively (provider pipelines,
    // federated facades) take the op as-is, preserving its annotations
    // (trace context, retry attempt) instead of rebuilding a bare op from
    // the trait-method arguments.
    if let Some(result) = ctx.execute_reified(op) {
        return result;
    }
    match op.kind {
        OpKind::Lookup => ctx.lookup(&op.name).map(OpOutcome::Value),
        OpKind::Bind => ctx.bind(&op.name, op.value()?).map(|_| OpOutcome::Done),
        OpKind::Rebind => ctx.rebind(&op.name, op.value()?).map(|_| OpOutcome::Done),
        OpKind::Unbind => ctx.unbind(&op.name).map(|_| OpOutcome::Done),
        OpKind::Rename => ctx
            .rename(&op.name, op.new_name()?)
            .map(|_| OpOutcome::Done),
        OpKind::List => ctx.list(&op.name).map(OpOutcome::Names),
        OpKind::ListBindings => ctx.list_bindings(&op.name).map(OpOutcome::Bindings),
        OpKind::CreateSubcontext => ctx.create_subcontext(&op.name).map(|_| OpOutcome::Done),
        OpKind::DestroySubcontext => ctx.destroy_subcontext(&op.name).map(|_| OpOutcome::Done),
        OpKind::GetAttributes => ctx.get_attributes(&op.name).map(OpOutcome::Attrs),
        OpKind::ModifyAttributes => match &op.payload {
            OpPayload::Mods(mods) => ctx
                .modify_attributes(&op.name, mods)
                .map(|_| OpOutcome::Done),
            _ => Err(NamingError::service("modify_attributes payload missing")),
        },
        OpKind::BindWithAttrs => ctx
            .bind_with_attrs(&op.name, op.value()?, op.attrs.clone().unwrap_or_default())
            .map(|_| OpOutcome::Done),
        OpKind::RebindWithAttrs => ctx
            .rebind_with_attrs(&op.name, op.value()?, op.attrs.clone().unwrap_or_default())
            .map(|_| OpOutcome::Done),
        OpKind::Search => match &op.payload {
            OpPayload::Query { filter, controls } => {
                ctx.search(&op.name, filter, controls).map(OpOutcome::Found)
            }
            _ => Err(NamingError::service("search payload missing")),
        },
        OpKind::AddListener => match &op.payload {
            OpPayload::Listener(l) => ctx
                .add_listener(&op.name, l.clone())
                .map(OpOutcome::Subscribed),
            _ => Err(NamingError::service("add_listener payload missing")),
        },
        OpKind::RemoveListener => match &op.payload {
            OpPayload::Handle(h) => ctx.remove_listener(*h).map(|_| OpOutcome::Done),
            _ => Err(NamingError::service("remove_listener payload missing")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemContext;
    use crate::value::Reference;

    #[test]
    fn codec_roundtrip_and_foreign_bytes() {
        let v = BoundValue::str("hello");
        assert_eq!(codec::unmarshal(&codec::marshal(&v).unwrap()), v);
        let r = BoundValue::Reference(Reference::url("jini://h"));
        assert_eq!(codec::unmarshal(&codec::marshal(&r).unwrap()), r);
        assert!(matches!(
            codec::unmarshal(b"\x00\x01 not json"),
            BoundValue::Bytes(_)
        ));
        assert!(matches!(
            codec::marshal(&BoundValue::Context(Arc::new(MemContext::new()))),
            Err(NamingError::NotSupported { .. })
        ));
    }

    #[test]
    fn wire_value_encodes_on_demand_and_reuses_preencoded() {
        let op = NamingOp::bind("a".into(), BoundValue::str("x"));
        let (bytes, class) = op.wire_value().unwrap();
        assert_eq!(class, "string");
        assert_eq!(codec::unmarshal(&bytes), BoundValue::str("x"));

        let mut wired = op.clone();
        wired.payload = OpPayload::Wire {
            bytes: bytes.clone(),
            class_name: class.clone(),
        };
        assert_eq!(wired.wire_value().unwrap().0, bytes);
        assert_eq!(wired.value().unwrap(), BoundValue::str("x"));
    }

    #[test]
    fn dispatch_covers_the_context_surface() {
        let ctx = MemContext::new();
        dispatch(&ctx, &NamingOp::bind("a".into(), BoundValue::str("1")))
            .unwrap()
            .into_done(OpKind::Bind)
            .unwrap();
        let v = dispatch(&ctx, &NamingOp::lookup("a".into()))
            .unwrap()
            .into_value(OpKind::Lookup)
            .unwrap();
        assert_eq!(v.as_str(), Some("1"));
        let names = dispatch(&ctx, &NamingOp::list(CompositeName::empty()))
            .unwrap()
            .into_names(OpKind::List)
            .unwrap();
        assert_eq!(names.len(), 1);
        dispatch(&ctx, &NamingOp::rename("a".into(), "b".into()))
            .unwrap()
            .into_done(OpKind::Rename)
            .unwrap();
        assert!(dispatch(&ctx, &NamingOp::lookup("a".into())).is_err());
        dispatch(&ctx, &NamingOp::unbind("b".into()))
            .unwrap()
            .into_done(OpKind::Unbind)
            .unwrap();
    }

    #[test]
    fn routing_keys_partition_by_head_component() {
        assert_eq!(
            NamingOp::lookup("apps/web/frontend".into()).routing_key(),
            RoutingKey::Shard("apps")
        );
        assert_eq!(
            NamingOp::rebind("apps".into(), BoundValue::str("v")).routing_key(),
            RoutingKey::Shard("apps")
        );
        // Rename routes by its source; the destination key is read
        // separately by the router to detect cross-shard moves.
        let mv = NamingOp::rename("east/a".into(), "west/a".into());
        assert_eq!(mv.routing_key(), RoutingKey::Shard("east"));
        assert_eq!(mv.new_name().unwrap().head(), Some("west"));
        // Whole-namespace ops scatter.
        assert_eq!(
            NamingOp::list(CompositeName::empty()).routing_key(),
            RoutingKey::Scatter
        );
        assert_eq!(
            NamingOp::remove_listener(ListenerHandle::from_raw(7)).routing_key(),
            RoutingKey::Scatter
        );
    }

    #[test]
    fn meta_bag_annotations() {
        let mut op = NamingOp::lookup("x".into());
        assert!(op.meta.is_empty());
        op.meta.set("retry.attempt", "2");
        assert_eq!(op.meta.get("retry.attempt"), Some("2"));
        assert!(op.meta.contains("retry.attempt"));
        assert_eq!(op.meta.iter().count(), 1);
    }

    #[test]
    fn outcome_conversions_reject_mismatches() {
        assert!(OpOutcome::Done.into_value(OpKind::Lookup).is_err());
        assert!(OpOutcome::Value(BoundValue::Null)
            .into_done(OpKind::Bind)
            .is_err());
        let wire = OpOutcome::Wire(codec::marshal(&BoundValue::I64(7)).unwrap());
        assert_eq!(wire.into_value(OpKind::Lookup).unwrap(), BoundValue::I64(7));
    }
}
