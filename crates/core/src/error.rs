//! Error model for naming and directory operations.
//!
//! Mirrors the JNDI `NamingException` hierarchy, flattened into one enum.
//! The [`NamingError::Continue`] variant is the SPI-level federation
//! mechanism (JNDI's `CannotProceedException`): a provider that resolves a
//! prefix of a composite name to a foreign context/reference returns
//! `Continue`, and the [`InitialContext`](crate::initial::InitialContext)
//! resumes resolution in the next naming system.

use std::fmt;

use crate::name::CompositeName;
use crate::value::BoundValue;

/// Result alias used throughout the API.
pub type Result<T> = std::result::Result<T, NamingError>;

/// Anything that can go wrong during a naming or directory operation.
#[derive(Debug, Clone, PartialEq)]
pub enum NamingError {
    /// The name does not resolve to a binding.
    NameNotFound { name: String },
    /// `bind` found an existing binding (atomic-bind semantics).
    AlreadyBound { name: String },
    /// An intermediate component resolved to a non-context value.
    NotAContext { name: String },
    /// A context operation was applied to a leaf binding, or vice versa.
    ContextExpected { name: String },
    /// The name is syntactically invalid for this naming system.
    InvalidName { name: String, reason: String },
    /// Search filter could not be parsed or evaluated.
    InvalidSearchFilter { filter: String, reason: String },
    /// The operation is not supported by this provider (JNDI providers may
    /// implement only a conformance subset).
    NotSupported { operation: String },
    /// Authentication/authorization failure.
    NoPermission { detail: String },
    /// The backing service could not be reached or failed mid-operation.
    ServiceFailure { detail: String },
    /// The operation exceeded its deadline.
    Timeout { detail: String },
    /// No provider is registered for the URL scheme.
    NoProvider { scheme: String },
    /// The environment is missing a required property.
    ConfigurationError { detail: String },
    /// A subcontext slated for destruction still has children.
    ContextNotEmpty { name: String },
    /// A lease renewal failed and the entry may have expired remotely.
    LeaseExpired { name: String },
    /// Federation continuation: `resolved` is the object at the boundary of
    /// this naming system and `remaining` the suffix still to resolve.
    Continue {
        resolved: BoundValue,
        remaining: CompositeName,
    },
    /// Federation nested too deeply (cycle guard).
    FederationDepthExceeded { depth: usize },
    /// The serving side shed this operation under overload instead of
    /// queueing it past its deadline. Transient by design: the caller
    /// should back off at least `retry_after_ms` before retrying.
    Overloaded { retry_after_ms: u64 },
}

impl NamingError {
    /// Shorthand constructor for [`NamingError::NameNotFound`].
    pub fn not_found(name: impl Into<String>) -> Self {
        NamingError::NameNotFound { name: name.into() }
    }

    /// Shorthand constructor for [`NamingError::AlreadyBound`].
    pub fn already_bound(name: impl Into<String>) -> Self {
        NamingError::AlreadyBound { name: name.into() }
    }

    /// Shorthand constructor for [`NamingError::InvalidName`].
    pub fn invalid_name(name: impl Into<String>, reason: impl Into<String>) -> Self {
        NamingError::InvalidName {
            name: name.into(),
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`NamingError::ServiceFailure`].
    pub fn service(detail: impl Into<String>) -> Self {
        NamingError::ServiceFailure {
            detail: detail.into(),
        }
    }

    /// Shorthand constructor for [`NamingError::NotSupported`].
    pub fn unsupported(operation: impl Into<String>) -> Self {
        NamingError::NotSupported {
            operation: operation.into(),
        }
    }

    /// Shorthand constructor for [`NamingError::Overloaded`].
    pub fn overloaded(retry_after_ms: u64) -> Self {
        NamingError::Overloaded { retry_after_ms }
    }

    /// Whether this is the internal federation-continuation signal.
    pub fn is_continue(&self) -> bool {
        matches!(self, NamingError::Continue { .. })
    }

    /// Whether the serving side shed this op under overload.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, NamingError::Overloaded { .. })
    }
}

impl fmt::Display for NamingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NamingError::NameNotFound { name } => write!(f, "name not found: {name}"),
            NamingError::AlreadyBound { name } => write!(f, "name already bound: {name}"),
            NamingError::NotAContext { name } => {
                write!(f, "intermediate name is not a context: {name}")
            }
            NamingError::ContextExpected { name } => {
                write!(f, "operation requires a context: {name}")
            }
            NamingError::InvalidName { name, reason } => {
                write!(f, "invalid name {name:?}: {reason}")
            }
            NamingError::InvalidSearchFilter { filter, reason } => {
                write!(f, "invalid search filter {filter:?}: {reason}")
            }
            NamingError::NotSupported { operation } => {
                write!(f, "operation not supported by provider: {operation}")
            }
            NamingError::NoPermission { detail } => write!(f, "no permission: {detail}"),
            NamingError::ServiceFailure { detail } => write!(f, "service failure: {detail}"),
            NamingError::Timeout { detail } => write!(f, "timed out: {detail}"),
            NamingError::NoProvider { scheme } => {
                write!(f, "no service provider registered for scheme {scheme:?}")
            }
            NamingError::ConfigurationError { detail } => {
                write!(f, "configuration error: {detail}")
            }
            NamingError::ContextNotEmpty { name } => {
                write!(f, "context not empty: {name}")
            }
            NamingError::LeaseExpired { name } => write!(f, "lease expired: {name}"),
            NamingError::Continue { remaining, .. } => {
                write!(f, "cannot proceed; remaining name: {remaining}")
            }
            NamingError::FederationDepthExceeded { depth } => {
                write!(f, "federation resolution exceeded depth {depth}")
            }
            NamingError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for NamingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NamingError::not_found("a/b");
        assert!(e.to_string().contains("a/b"));
        let e = NamingError::invalid_name("x", "bad escape");
        assert!(e.to_string().contains("bad escape"));
    }

    #[test]
    fn continue_detection() {
        let e = NamingError::Continue {
            resolved: BoundValue::Null,
            remaining: CompositeName::empty(),
        };
        assert!(e.is_continue());
        assert!(!NamingError::not_found("x").is_continue());
    }
}
