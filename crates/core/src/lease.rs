//! Client-side lease emulation.
//!
//! The JNDI API has no data-expiration concept, but Jini entries expire
//! unless their leases are renewed. The paper's resolution (§5.1 "Handling
//! leases") is to renew leases *inside the provider*: every entry a
//! provider binds is kept alive automatically until it is explicitly
//! unbound or the process exits. [`LeaseRenewalManager`] implements that
//! policy, decoupled from wall-clock time through [`LeaseClock`] so both
//! simulations and real deployments can drive it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::Result;

/// Time source for lease bookkeeping (milliseconds, arbitrary epoch).
pub trait LeaseClock: Send + Sync {
    fn now_ms(&self) -> u64;
}

/// Wall-clock implementation of [`LeaseClock`].
pub struct SystemLeaseClock {
    start: std::time::Instant,
}

impl SystemLeaseClock {
    pub fn new() -> Self {
        SystemLeaseClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Default for SystemLeaseClock {
    fn default() -> Self {
        Self::new()
    }
}

impl LeaseClock for SystemLeaseClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A manually advanced clock for tests and simulations.
#[derive(Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock::default())
    }

    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
    }

    pub fn set(&self, ms: u64) {
        self.now.store(ms, Ordering::Relaxed);
    }
}

impl LeaseClock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// The renewal callback: ask the backend to extend the lease on `key` by
/// `duration_ms`; returns the new absolute expiry (clock-relative ms).
pub trait LeaseRenewer: Send + Sync {
    fn renew(&self, key: &str, duration_ms: u64) -> Result<u64>;
}

struct ManagedLease {
    expires_at_ms: u64,
    duration_ms: u64,
    renewer: Arc<dyn LeaseRenewer>,
}

/// Summary of one [`LeaseRenewalManager::poll`] pass.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct PollOutcome {
    /// Keys whose leases were successfully renewed.
    pub renewed: Vec<String>,
    /// Keys whose renewal failed (entry likely expired remotely); they are
    /// dropped from management.
    pub failed: Vec<String>,
}

/// Tracks leases and renews each one when it enters the renewal margin.
pub struct LeaseRenewalManager {
    clock: Arc<dyn LeaseClock>,
    /// Renew when remaining validity falls below this fraction of the
    /// total duration (e.g. `0.25` = renew in the last quarter).
    margin: f64,
    leases: Mutex<HashMap<String, ManagedLease>>,
}

impl LeaseRenewalManager {
    pub fn new(clock: Arc<dyn LeaseClock>, margin: f64) -> Self {
        LeaseRenewalManager {
            clock,
            margin: margin.clamp(0.01, 0.99),
            leases: Mutex::new(HashMap::new()),
        }
    }

    /// Begin managing the lease for `key`.
    pub fn manage(
        &self,
        key: impl Into<String>,
        expires_at_ms: u64,
        duration_ms: u64,
        renewer: Arc<dyn LeaseRenewer>,
    ) {
        self.leases.lock().insert(
            key.into(),
            ManagedLease {
                expires_at_ms,
                duration_ms,
                renewer,
            },
        );
    }

    /// Stop managing `key` (after an explicit unbind).
    pub fn unmanage(&self, key: &str) {
        self.leases.lock().remove(key);
    }

    /// Number of leases under management.
    pub fn len(&self) -> usize {
        self.leases.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.leases.lock().is_empty()
    }

    /// The earliest instant at which some lease needs renewal — drive the
    /// next `poll` no later than this.
    pub fn next_due_ms(&self) -> Option<u64> {
        let leases = self.leases.lock();
        leases.values().map(|l| renew_point(l, self.margin)).min()
    }

    /// Renew every lease that has entered its renewal margin. Failed
    /// renewals are dropped from management and reported.
    pub fn poll(&self) -> PollOutcome {
        let now = self.clock.now_ms();
        let due: Vec<(String, u64, Arc<dyn LeaseRenewer>)> = {
            let leases = self.leases.lock();
            leases
                .iter()
                .filter(|(_, l)| now >= renew_point(l, self.margin))
                .map(|(k, l)| (k.clone(), l.duration_ms, l.renewer.clone()))
                .collect()
        };
        let mut outcome = PollOutcome::default();
        for (key, duration, renewer) in due {
            match renewer.renew(&key, duration) {
                Ok(new_expiry) => {
                    if let Some(l) = self.leases.lock().get_mut(&key) {
                        l.expires_at_ms = new_expiry;
                    }
                    outcome.renewed.push(key);
                }
                Err(_) => {
                    self.leases.lock().remove(&key);
                    outcome.failed.push(key);
                }
            }
        }
        outcome.renewed.sort();
        outcome.failed.sort();
        outcome
    }
}

fn renew_point(l: &ManagedLease, margin: f64) -> u64 {
    let lead = (l.duration_ms as f64 * margin) as u64;
    l.expires_at_ms.saturating_sub(lead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::NamingError;
    use parking_lot::Mutex as PMutex;

    struct FakeBackend {
        clock: Arc<ManualClock>,
        renewals: PMutex<Vec<String>>,
        fail_keys: Vec<String>,
    }

    impl LeaseRenewer for FakeBackend {
        fn renew(&self, key: &str, duration_ms: u64) -> Result<u64> {
            if self.fail_keys.iter().any(|k| k == key) {
                return Err(NamingError::LeaseExpired { name: key.into() });
            }
            self.renewals.lock().push(key.to_string());
            Ok(self.clock.now_ms() + duration_ms)
        }
    }

    #[test]
    fn renews_inside_margin_only() {
        let clock = ManualClock::new();
        let backend = Arc::new(FakeBackend {
            clock: clock.clone(),
            renewals: PMutex::new(vec![]),
            fail_keys: vec![],
        });
        let mgr = LeaseRenewalManager::new(clock.clone(), 0.25);
        // Lease of 1000ms expiring at t=1000; renew point = 750.
        mgr.manage("a", 1000, 1000, backend.clone());

        clock.set(500);
        assert_eq!(mgr.poll(), PollOutcome::default());
        clock.set(750);
        let out = mgr.poll();
        assert_eq!(out.renewed, vec!["a".to_string()]);
        // Renewed to 750 + 1000 = 1750; next renewal at 1500.
        assert_eq!(mgr.next_due_ms(), Some(1500));
    }

    #[test]
    fn failed_renewal_drops_lease() {
        let clock = ManualClock::new();
        let backend = Arc::new(FakeBackend {
            clock: clock.clone(),
            renewals: PMutex::new(vec![]),
            fail_keys: vec!["dead".into()],
        });
        let mgr = LeaseRenewalManager::new(clock.clone(), 0.5);
        mgr.manage("dead", 100, 100, backend.clone());
        mgr.manage("alive", 100, 100, backend.clone());
        clock.set(60);
        let out = mgr.poll();
        assert_eq!(out.failed, vec!["dead".to_string()]);
        assert_eq!(out.renewed, vec!["alive".to_string()]);
        assert_eq!(mgr.len(), 1, "failed lease no longer managed");
    }

    #[test]
    fn unmanage_stops_renewal() {
        let clock = ManualClock::new();
        let backend = Arc::new(FakeBackend {
            clock: clock.clone(),
            renewals: PMutex::new(vec![]),
            fail_keys: vec![],
        });
        let mgr = LeaseRenewalManager::new(clock.clone(), 0.25);
        mgr.manage("x", 100, 100, backend.clone());
        mgr.unmanage("x");
        clock.set(1000);
        assert_eq!(mgr.poll(), PollOutcome::default());
        assert!(mgr.is_empty());
        assert_eq!(mgr.next_due_ms(), None);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_ms(), 12);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemLeaseClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }
}
