//! Naming events.
//!
//! JNDI's `EventContext` lets clients register listeners for changes under a
//! name. The paper's HDNS provider implements this on top of the H2O
//! distributed event mechanism; our providers feed events through
//! [`EventHub`], a prefix-scoped dispatcher.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::name::CompositeName;
use crate::value::BoundValue;

/// What happened to a binding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventType {
    ObjectAdded,
    ObjectRemoved,
    ObjectChanged,
    ObjectRenamed,
}

/// A change notification.
#[derive(Clone, Debug)]
pub struct NamingEvent {
    pub event_type: EventType,
    /// Absolute name of the affected binding.
    pub name: CompositeName,
    /// Value before the change (for removed/changed/renamed).
    pub old: Option<BoundValue>,
    /// Value after the change (for added/changed).
    pub new: Option<BoundValue>,
}

/// Receives events. Implementations must be cheap and non-blocking; heavy
/// work should be queued elsewhere.
pub trait NamingListener: Send + Sync {
    fn on_event(&self, event: &NamingEvent);
}

/// Identifies a registration so it can be cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ListenerHandle(u64);

impl ListenerHandle {
    /// Rehydrate a handle from its raw id. Handles are process-local;
    /// this exists for layers (tests, routers) that shuttle an id around
    /// without holding the original value.
    pub fn from_raw(raw: u64) -> Self {
        ListenerHandle(raw)
    }

    /// The raw registration id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

struct Registration {
    handle: ListenerHandle,
    /// Events fire when the event name starts with this prefix.
    prefix: CompositeName,
    listener: Arc<dyn NamingListener>,
}

/// A prefix-scoped event dispatcher shared by provider implementations.
#[derive(Default)]
pub struct EventHub {
    next: AtomicU64,
    regs: RwLock<Vec<Registration>>,
}

impl EventHub {
    pub fn new() -> Self {
        EventHub::default()
    }

    /// Register `listener` for events at or under `prefix`.
    pub fn subscribe(
        &self,
        prefix: CompositeName,
        listener: Arc<dyn NamingListener>,
    ) -> ListenerHandle {
        let handle = ListenerHandle(self.next.fetch_add(1, Ordering::Relaxed));
        self.regs.write().push(Registration {
            handle,
            prefix,
            listener,
        });
        handle
    }

    /// Cancel a registration; unknown handles are ignored.
    pub fn unsubscribe(&self, handle: ListenerHandle) {
        self.regs.write().retain(|r| r.handle != handle);
    }

    /// Number of active registrations.
    pub fn len(&self) -> usize {
        self.regs.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.regs.read().is_empty()
    }

    /// Dispatch an event to every matching listener.
    pub fn fire(&self, event: &NamingEvent) {
        let listeners: Vec<Arc<dyn NamingListener>> = {
            let regs = self.regs.read();
            regs.iter()
                .filter(|r| event.name.starts_with(&r.prefix))
                .map(|r| r.listener.clone())
                .collect()
        };
        for l in listeners {
            l.on_event(event);
        }
    }

    /// Convenience constructor + fire for the common cases.
    pub fn fire_added(&self, name: CompositeName, new: BoundValue) {
        self.fire(&NamingEvent {
            event_type: EventType::ObjectAdded,
            name,
            old: None,
            new: Some(new),
        });
    }

    pub fn fire_removed(&self, name: CompositeName, old: Option<BoundValue>) {
        self.fire(&NamingEvent {
            event_type: EventType::ObjectRemoved,
            name,
            old,
            new: None,
        });
    }

    pub fn fire_changed(&self, name: CompositeName, old: Option<BoundValue>, new: BoundValue) {
        self.fire(&NamingEvent {
            event_type: EventType::ObjectChanged,
            name,
            old,
            new: Some(new),
        });
    }
}

/// A listener that records events into a vector — handy in tests and small
/// tools.
#[derive(Default)]
pub struct CollectingListener {
    events: Mutex<Vec<NamingEvent>>,
}

impl CollectingListener {
    pub fn new() -> Arc<Self> {
        Arc::new(CollectingListener::default())
    }

    /// Take the events captured so far.
    pub fn drain(&self) -> Vec<NamingEvent> {
        std::mem::take(&mut self.events.lock())
    }

    pub fn count(&self) -> usize {
        self.events.lock().len()
    }
}

impl NamingListener for CollectingListener {
    fn on_event(&self, event: &NamingEvent) {
        self.events.lock().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_scoping() {
        let hub = EventHub::new();
        let all = CollectingListener::new();
        let scoped = CollectingListener::new();
        hub.subscribe(CompositeName::empty(), all.clone());
        hub.subscribe(CompositeName::from("a/b"), scoped.clone());

        hub.fire_added(CompositeName::from("a/b/c"), BoundValue::str("1"));
        hub.fire_added(CompositeName::from("a/x"), BoundValue::str("2"));

        assert_eq!(all.count(), 2);
        assert_eq!(scoped.count(), 1);
        let evs = scoped.drain();
        assert_eq!(evs[0].name.to_string(), "a/b/c");
        assert_eq!(evs[0].event_type, EventType::ObjectAdded);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let hub = EventHub::new();
        let l = CollectingListener::new();
        let h = hub.subscribe(CompositeName::empty(), l.clone());
        hub.fire_removed(CompositeName::from("x"), None);
        hub.unsubscribe(h);
        hub.fire_removed(CompositeName::from("y"), None);
        assert_eq!(l.count(), 1);
        assert!(hub.is_empty());
    }

    #[test]
    fn changed_event_carries_old_and_new() {
        let hub = EventHub::new();
        let l = CollectingListener::new();
        hub.subscribe(CompositeName::empty(), l.clone());
        hub.fire_changed(
            CompositeName::from("k"),
            Some(BoundValue::str("old")),
            BoundValue::str("new"),
        );
        let evs = l.drain();
        assert_eq!(evs[0].event_type, EventType::ObjectChanged);
        assert_eq!(evs[0].old.as_ref().unwrap().as_str(), Some("old"));
        assert_eq!(evs[0].new.as_ref().unwrap().as_str(), Some("new"));
    }

    #[test]
    fn exact_name_subscription_matches_self() {
        let hub = EventHub::new();
        let l = CollectingListener::new();
        hub.subscribe(CompositeName::from("a/b"), l.clone());
        hub.fire_removed(CompositeName::from("a/b"), None);
        hub.fire_removed(CompositeName::from("a"), None);
        assert_eq!(l.count(), 1);
    }
}
