//! Attribute search filters.
//!
//! JNDI mandates LDAP-style (RFC 2254) string filters for directory
//! searches; this module implements a lexer/parser, an evaluator over
//! [`Attributes`], and round-trippable printing. Comparisons are
//! case-insensitive; ordering comparisons (`>=`, `<=`) compare numerically
//! when both operands parse as numbers, lexicographically otherwise.

use std::fmt;

use crate::attrs::{AttrValue, Attributes};
use crate::error::{NamingError, Result};

/// A parsed search filter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Filter {
    /// `(&(f1)(f2)...)` — all must match. An empty `And` matches everything
    /// (the standard "absolute true" filter).
    And(Vec<Filter>),
    /// `(|(f1)(f2)...)` — at least one must match.
    Or(Vec<Filter>),
    /// `(!(f))`.
    Not(Box<Filter>),
    /// `(attr=*)` — the attribute is present.
    Present(String),
    /// `(attr=value)`.
    Eq(String, String),
    /// `(attr~=value)` — approximate match (case/whitespace-insensitive).
    Approx(String, String),
    /// `(attr>=value)`.
    Ge(String, String),
    /// `(attr<=value)`.
    Le(String, String),
    /// `(attr=ini*any*...*fin)` — substring match.
    Substring(String, SubstringPattern),
}

/// The pattern of a substring filter: optional anchored prefix/suffix and
/// any number of interior fragments, in order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SubstringPattern {
    pub initial: Option<String>,
    pub any: Vec<String>,
    pub final_: Option<String>,
}

impl SubstringPattern {
    /// Whether `s` matches the pattern (case-insensitive).
    pub fn matches(&self, s: &str) -> bool {
        let s = s.to_ascii_lowercase();
        let mut pos = 0usize;
        if let Some(ini) = &self.initial {
            let ini = ini.to_ascii_lowercase();
            if !s.starts_with(&ini) {
                return false;
            }
            pos = ini.len();
        }
        for frag in &self.any {
            let frag = frag.to_ascii_lowercase();
            match s[pos..].find(&frag) {
                Some(at) => pos += at + frag.len(),
                None => return false,
            }
        }
        if let Some(fin) = &self.final_ {
            let fin = fin.to_ascii_lowercase();
            if s.len() < pos + fin.len() {
                return false;
            }
            return s.ends_with(&fin);
        }
        true
    }
}

impl Filter {
    /// The filter that matches every entry: `(&)`.
    pub fn always() -> Filter {
        Filter::And(Vec::new())
    }

    /// Parse an RFC 2254-style filter string.
    pub fn parse(input: &str) -> Result<Filter> {
        let mut p = Parser {
            src: input,
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let f = p.filter()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after filter"));
        }
        Ok(f)
    }

    /// Evaluate against an attribute set.
    pub fn matches(&self, attrs: &Attributes) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(attrs)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(attrs)),
            Filter::Not(f) => !f.matches(attrs),
            Filter::Present(id) => attrs.contains(id),
            Filter::Eq(id, v) => any_value(attrs, id, |s| s.eq_ignore_ascii_case(v)),
            Filter::Approx(id, v) => {
                let want = normalize(v);
                any_value(attrs, id, |s| normalize(s) == want)
            }
            Filter::Ge(id, v) => {
                any_value(attrs, id, |s| compare(s, v) >= std::cmp::Ordering::Equal)
            }
            Filter::Le(id, v) => {
                any_value(attrs, id, |s| compare(s, v) <= std::cmp::Ordering::Equal)
            }
            Filter::Substring(id, pat) => any_value(attrs, id, |s| pat.matches(s)),
        }
    }
}

fn any_value(attrs: &Attributes, id: &str, pred: impl Fn(&str) -> bool) -> bool {
    attrs
        .get(id)
        .map(|a| {
            a.values.iter().any(|v| match v {
                AttrValue::Str(s) => pred(s),
                AttrValue::Bytes(_) => false,
            })
        })
        .unwrap_or(false)
}

fn normalize(s: &str) -> String {
    s.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_ascii_lowercase()
}

/// Numeric comparison when both sides parse, otherwise case-insensitive
/// lexicographic.
fn compare(a: &str, b: &str) -> std::cmp::Ordering {
    match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        (Ok(x), Ok(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
        _ => a.to_ascii_lowercase().cmp(&b.to_ascii_lowercase()),
    }
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> NamingError {
        NamingError::InvalidSearchFilter {
            filter: self.src.to_string(),
            reason: format!("{reason} (at byte {})", self.pos),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn filter(&mut self) -> Result<Filter> {
        self.expect(b'(')?;
        let f = match self.peek() {
            Some(b'&') => {
                self.bump();
                Filter::And(self.filter_list()?)
            }
            Some(b'|') => {
                self.bump();
                let list = self.filter_list()?;
                if list.is_empty() {
                    return Err(self.err("empty OR filter"));
                }
                Filter::Or(list)
            }
            Some(b'!') => {
                self.bump();
                Filter::Not(Box::new(self.filter()?))
            }
            Some(_) => self.item()?,
            None => return Err(self.err("unexpected end of filter")),
        };
        self.expect(b')')?;
        Ok(f)
    }

    fn filter_list(&mut self) -> Result<Vec<Filter>> {
        let mut out = Vec::new();
        self.skip_ws();
        while self.peek() == Some(b'(') {
            out.push(self.filter()?);
            self.skip_ws();
        }
        Ok(out)
    }

    fn item(&mut self) -> Result<Filter> {
        let attr = self.attr_name()?;
        let op = match (self.bump(), self.peek()) {
            (Some(b'='), _) => b'=',
            (Some(b'~'), Some(b'=')) => {
                self.bump();
                b'~'
            }
            (Some(b'>'), Some(b'=')) => {
                self.bump();
                b'>'
            }
            (Some(b'<'), Some(b'=')) => {
                self.bump();
                b'<'
            }
            _ => return Err(self.err("expected =, ~=, >= or <=")),
        };
        let (value, wildcards) = self.value()?;
        match op {
            b'~' => Ok(Filter::Approx(attr, value)),
            b'>' => Ok(Filter::Ge(attr, value)),
            b'<' => Ok(Filter::Le(attr, value)),
            b'=' => {
                if !wildcards {
                    Ok(Filter::Eq(attr, value))
                } else if value == "\u{0}" {
                    // Single '*' (encoded below as NUL sentinel): presence.
                    Ok(Filter::Present(attr))
                } else {
                    Ok(Filter::Substring(attr, split_pattern(&value)))
                }
            }
            _ => unreachable!(),
        }
    }

    fn attr_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'=' | b'~' | b'>' | b'<' | b'(' | b')' | b'*') {
                break;
            }
            self.pos += 1;
        }
        let name = self.src[start..self.pos].trim();
        if name.is_empty() {
            return Err(self.err("empty attribute name"));
        }
        Ok(name.to_string())
    }

    /// Parse a value up to `)`. Returns the decoded value and whether any
    /// unescaped `*` appeared. Unescaped `*` characters are preserved
    /// in-band; escaped characters (`\xx` hex pairs) are decoded and can
    /// never be confused with wildcards because a decoded `*` is re-escaped
    /// on display. A value that is exactly one `*` is reported via the NUL
    /// sentinel so the caller can distinguish presence from substring.
    fn value(&mut self) -> Result<(String, bool)> {
        let mut out = String::new();
        let mut stars = 0usize;
        let mut non_star = false;
        while let Some(b) = self.peek() {
            match b {
                b')' => break,
                b'(' => return Err(self.err("unescaped '(' in value")),
                b'\\' => {
                    self.bump();
                    let hi = self.bump().ok_or_else(|| self.err("truncated escape"))?;
                    let lo = self.bump().ok_or_else(|| self.err("truncated escape"))?;
                    let hex = [hi, lo];
                    let s = std::str::from_utf8(&hex).map_err(|_| self.err("bad escape"))?;
                    let byte = u8::from_str_radix(s, 16).map_err(|_| self.err("bad hex escape"))?;
                    out.push(byte as char);
                    non_star = true;
                }
                b'*' => {
                    self.bump();
                    out.push('*');
                    stars += 1;
                }
                _ => {
                    self.bump();
                    out.push(b as char);
                    non_star = true;
                }
            }
        }
        if stars > 0 && !non_star && stars == 1 {
            return Ok(("\u{0}".to_string(), true));
        }
        Ok((out, stars > 0))
    }
}

/// Split a wildcard-bearing value into a [`SubstringPattern`].
fn split_pattern(value: &str) -> SubstringPattern {
    let parts: Vec<&str> = value.split('*').collect();
    let n = parts.len();
    let mut pat = SubstringPattern::default();
    for (i, p) in parts.iter().enumerate() {
        if p.is_empty() {
            continue;
        }
        if i == 0 {
            pat.initial = Some(p.to_string());
        } else if i == n - 1 {
            pat.final_ = Some(p.to_string());
        } else {
            pat.any.push(p.to_string());
        }
    }
    pat
}

/// Escape special characters in a filter value for display.
fn escape_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '*' => out.push_str("\\2a"),
            '(' => out.push_str("\\28"),
            ')' => out.push_str("\\29"),
            '\\' => out.push_str("\\5c"),
            '\u{0}' => out.push_str("\\00"),
            _ => out.push(c),
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_to(&mut s);
        f.write_str(&s)
    }
}

impl Filter {
    fn write_to(&self, out: &mut String) {
        out.push('(');
        match self {
            Filter::And(fs) => {
                out.push('&');
                for x in fs {
                    x.write_to(out);
                }
            }
            Filter::Or(fs) => {
                out.push('|');
                for x in fs {
                    x.write_to(out);
                }
            }
            Filter::Not(x) => {
                out.push('!');
                x.write_to(out);
            }
            Filter::Present(a) => {
                out.push_str(a);
                out.push_str("=*");
            }
            Filter::Eq(a, v) => {
                out.push_str(a);
                out.push('=');
                escape_value(v, out);
            }
            Filter::Approx(a, v) => {
                out.push_str(a);
                out.push_str("~=");
                escape_value(v, out);
            }
            Filter::Ge(a, v) => {
                out.push_str(a);
                out.push_str(">=");
                escape_value(v, out);
            }
            Filter::Le(a, v) => {
                out.push_str(a);
                out.push_str("<=");
                escape_value(v, out);
            }
            Filter::Substring(a, p) => {
                out.push_str(a);
                out.push('=');
                if let Some(i) = &p.initial {
                    escape_value(i, out);
                }
                out.push('*');
                for frag in &p.any {
                    escape_value(frag, out);
                    out.push('*');
                }
                if let Some(fin) = &p.final_ {
                    escape_value(fin, out);
                }
            }
        }
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Attributes;

    fn node() -> Attributes {
        Attributes::new()
            .with("cpu", "8")
            .with("os", "Linux")
            .with("host", "node01.mathcs.emory.edu")
    }

    #[test]
    fn simple_eq() {
        let f = Filter::parse("(os=linux)").unwrap();
        assert!(f.matches(&node()), "case-insensitive match");
        assert!(!Filter::parse("(os=windows)").unwrap().matches(&node()));
    }

    #[test]
    fn presence() {
        assert!(Filter::parse("(cpu=*)").unwrap().matches(&node()));
        assert!(!Filter::parse("(gpu=*)").unwrap().matches(&node()));
        assert_eq!(
            Filter::parse("(cpu=*)").unwrap(),
            Filter::Present("cpu".into())
        );
    }

    #[test]
    fn numeric_ordering() {
        assert!(Filter::parse("(cpu>=4)").unwrap().matches(&node()));
        assert!(Filter::parse("(cpu<=8)").unwrap().matches(&node()));
        assert!(!Filter::parse("(cpu>=16)").unwrap().matches(&node()));
        // "8" >= "10" numerically false even though lexicographically true.
        let attrs = Attributes::new().with("n", "8");
        assert!(!Filter::parse("(n>=10)").unwrap().matches(&attrs));
    }

    #[test]
    fn lexicographic_fallback() {
        let attrs = Attributes::new().with("name", "delta");
        assert!(Filter::parse("(name>=alpha)").unwrap().matches(&attrs));
        assert!(!Filter::parse("(name<=alpha)").unwrap().matches(&attrs));
    }

    #[test]
    fn boolean_combinators() {
        let f = Filter::parse("(&(os=Linux)(cpu>=4))").unwrap();
        assert!(f.matches(&node()));
        let f = Filter::parse("(|(os=windows)(cpu=8))").unwrap();
        assert!(f.matches(&node()));
        let f = Filter::parse("(!(os=Linux))").unwrap();
        assert!(!f.matches(&node()));
        assert!(
            Filter::parse("(&)").unwrap().matches(&node()),
            "empty AND is true"
        );
    }

    #[test]
    fn substrings() {
        let f = Filter::parse("(host=node*emory*)").unwrap();
        assert!(f.matches(&node()));
        let f = Filter::parse("(host=*edu)").unwrap();
        assert!(f.matches(&node()));
        let f = Filter::parse("(host=*mathcs*)").unwrap();
        assert!(f.matches(&node()));
        let f = Filter::parse("(host=node*gatech*)").unwrap();
        assert!(!f.matches(&node()));
    }

    #[test]
    fn substring_ordering_of_fragments() {
        let attrs = Attributes::new().with("s", "abcdef");
        assert!(Filter::parse("(s=a*c*e*)").unwrap().matches(&attrs));
        assert!(
            !Filter::parse("(s=a*e*c*)").unwrap().matches(&attrs),
            "fragments must appear in order"
        );
        assert!(Filter::parse("(s=*f)").unwrap().matches(&attrs));
        assert!(!Filter::parse("(s=*g)").unwrap().matches(&attrs));
    }

    #[test]
    fn approx_normalizes() {
        let attrs = Attributes::new().with("desc", "High  Performance   Cluster");
        assert!(Filter::parse("(desc~=high performance cluster)")
            .unwrap()
            .matches(&attrs));
        assert!(!Filter::parse("(desc=high performance cluster)")
            .unwrap()
            .matches(&attrs));
    }

    #[test]
    fn hex_escapes() {
        // Match a literal '*' via the \2a escape.
        let attrs = Attributes::new().with("v", "a*b");
        let f = Filter::parse(r"(v=a\2ab)").unwrap();
        assert_eq!(f, Filter::Eq("v".into(), "a*b".into()));
        assert!(f.matches(&attrs));
        // Display re-escapes.
        assert_eq!(f.to_string(), r"(v=a\2ab)");
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "", "()", "(a)", "(=x)", "(a=b", "a=b", "(a=b))", "((a=b)", "(|)", r"(a=\2)", "(a=(b)",
            "(&(a=b)",
        ] {
            assert!(Filter::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "(a=b)",
            "(&(a=b)(c>=3))",
            "(|(x~=y)(!(z<=9)))",
            "(cpu=*)",
            "(host=a*b*c)",
            "(host=*mid*)",
        ] {
            let f = Filter::parse(s).unwrap();
            let printed = f.to_string();
            assert_eq!(Filter::parse(&printed).unwrap(), f, "roundtrip of {s}");
        }
    }

    #[test]
    fn multivalued_any_semantics() {
        let mut attrs = Attributes::new();
        attrs.add_value("member", "alice");
        attrs.add_value("member", "bob");
        assert!(Filter::parse("(member=bob)").unwrap().matches(&attrs));
        assert!(!Filter::parse("(member=carol)").unwrap().matches(&attrs));
    }
}
