//! The values that can be bound in a context.
//!
//! JNDI binds arbitrary Java objects; the specification's minimum
//! conformance level is "any serializable object". [`BoundValue`] is the
//! Rust analogue: serializable scalars/structures plus the two special cases
//! the federation machinery understands — [`Reference`]s (provider-
//! interpretable pointers, JNDI's `javax.naming.Reference`) and live
//! [`Context`](crate::context::Context) handles.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::context::DirContext;

/// A provider-independent pointer to an object living elsewhere.
///
/// A reference carries a class name (what the object is), a set of typed
/// addresses (where/how to reach it), and optionally the name of an object
/// factory able to reconstruct the live object.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reference {
    /// The type of object this reference points to.
    pub class_name: String,
    /// Typed addresses, e.g. `("URL", "hdns://host2/ctx")`.
    pub addrs: Vec<RefAddr>,
    /// Object factory hint.
    pub factory: Option<String>,
}

/// One typed address within a [`Reference`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefAddr {
    pub addr_type: String,
    pub content: String,
}

impl Reference {
    /// A reference consisting of a single URL address — the form used to
    /// link naming systems into a federation.
    pub fn url(url: impl Into<String>) -> Self {
        Reference {
            class_name: "Context".to_string(),
            addrs: vec![RefAddr {
                addr_type: "URL".to_string(),
                content: url.into(),
            }],
            factory: None,
        }
    }

    /// First address of the given type, if present.
    pub fn addr(&self, addr_type: &str) -> Option<&str> {
        self.addrs
            .iter()
            .find(|a| a.addr_type == addr_type)
            .map(|a| a.content.as_str())
    }

    /// The URL address, if this is a URL reference.
    pub fn url_addr(&self) -> Option<&str> {
        self.addr("URL")
    }
}

/// A value bound under a name.
#[derive(Clone, Default)]
pub enum BoundValue {
    /// Explicit null binding.
    #[default]
    Null,
    /// UTF-8 text.
    Str(String),
    /// 64-bit signed integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Opaque bytes (the "any serializable object" conformance floor —
    /// applications serialize through state factories).
    Bytes(Vec<u8>),
    /// Structured data (maps/arrays/scalars).
    Json(serde_json::Value),
    /// A provider-interpretable reference (federation link, service stub…).
    Reference(Reference),
    /// A live context — binding one naming system into another.
    Context(Arc<dyn DirContext>),
}

impl BoundValue {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Self {
        BoundValue::Str(s.into())
    }

    /// Borrow as `&str` when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            BoundValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            BoundValue::I64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            BoundValue::Bytes(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_reference(&self) -> Option<&Reference> {
        match self {
            BoundValue::Reference(r) => Some(r),
            _ => None,
        }
    }

    pub fn as_context(&self) -> Option<Arc<dyn DirContext>> {
        match self {
            BoundValue::Context(c) => Some(c.clone()),
            _ => None,
        }
    }

    /// Whether the value can continue a federated resolution (a context or a
    /// URL reference).
    pub fn is_federation_link(&self) -> bool {
        match self {
            BoundValue::Context(_) => true,
            BoundValue::Reference(r) => r.url_addr().is_some(),
            _ => false,
        }
    }

    /// A short class-name string, analogous to `Binding.getClassName()`.
    pub fn class_name(&self) -> &'static str {
        match self {
            BoundValue::Null => "null",
            BoundValue::Str(_) => "string",
            BoundValue::I64(_) => "i64",
            BoundValue::F64(_) => "f64",
            BoundValue::Bool(_) => "bool",
            BoundValue::Bytes(_) => "bytes",
            BoundValue::Json(_) => "json",
            BoundValue::Reference(_) => "reference",
            BoundValue::Context(_) => "context",
        }
    }
}

impl PartialEq for BoundValue {
    /// Structural equality; two `Context` values compare by pointer
    /// identity (a live context has no meaningful structural equality).
    fn eq(&self, other: &Self) -> bool {
        use BoundValue::*;
        match (self, other) {
            (Null, Null) => true,
            (Str(a), Str(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (F64(a), F64(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (Bytes(a), Bytes(b)) => a == b,
            (Json(a), Json(b)) => a == b,
            (Reference(a), Reference(b)) => a == b,
            (Context(a), Context(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl fmt::Debug for BoundValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundValue::Null => f.write_str("Null"),
            BoundValue::Str(s) => write!(f, "Str({s:?})"),
            BoundValue::I64(v) => write!(f, "I64({v})"),
            BoundValue::F64(v) => write!(f, "F64({v})"),
            BoundValue::Bool(v) => write!(f, "Bool({v})"),
            BoundValue::Bytes(b) => write!(f, "Bytes(len={})", b.len()),
            BoundValue::Json(v) => write!(f, "Json({v})"),
            BoundValue::Reference(r) => write!(f, "Reference({r:?})"),
            BoundValue::Context(_) => f.write_str("Context(..)"),
        }
    }
}

impl From<&str> for BoundValue {
    fn from(s: &str) -> Self {
        BoundValue::Str(s.to_string())
    }
}

impl From<String> for BoundValue {
    fn from(s: String) -> Self {
        BoundValue::Str(s)
    }
}

impl From<i64> for BoundValue {
    fn from(v: i64) -> Self {
        BoundValue::I64(v)
    }
}

impl From<bool> for BoundValue {
    fn from(v: bool) -> Self {
        BoundValue::Bool(v)
    }
}

/// A wire-encodable subset of [`BoundValue`] — what state factories produce
/// and providers actually store. Live `Context` handles are *not* encodable;
/// they must first be converted to URL references.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StoredValue {
    Null,
    Str(String),
    I64(i64),
    F64(f64),
    Bool(bool),
    Bytes(Vec<u8>),
    Json(serde_json::Value),
    Reference(Reference),
}

impl StoredValue {
    /// Encode to bytes (the marshalling the paper's providers pay for).
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("StoredValue is always serializable")
    }

    /// Decode from bytes.
    pub fn decode(bytes: &[u8]) -> Option<StoredValue> {
        serde_json::from_slice(bytes).ok()
    }

    /// Convert back into a [`BoundValue`].
    pub fn into_bound(self) -> BoundValue {
        match self {
            StoredValue::Null => BoundValue::Null,
            StoredValue::Str(s) => BoundValue::Str(s),
            StoredValue::I64(v) => BoundValue::I64(v),
            StoredValue::F64(v) => BoundValue::F64(v),
            StoredValue::Bool(v) => BoundValue::Bool(v),
            StoredValue::Bytes(b) => BoundValue::Bytes(b),
            StoredValue::Json(v) => BoundValue::Json(v),
            StoredValue::Reference(r) => BoundValue::Reference(r),
        }
    }

    /// Convert a [`BoundValue`]; fails for live contexts, which cannot be
    /// marshalled (bind a [`Reference::url`] instead).
    pub fn try_from_bound(v: &BoundValue) -> Option<StoredValue> {
        Some(match v {
            BoundValue::Null => StoredValue::Null,
            BoundValue::Str(s) => StoredValue::Str(s.clone()),
            BoundValue::I64(x) => StoredValue::I64(*x),
            BoundValue::F64(x) => StoredValue::F64(*x),
            BoundValue::Bool(x) => StoredValue::Bool(*x),
            BoundValue::Bytes(b) => StoredValue::Bytes(b.clone()),
            BoundValue::Json(j) => StoredValue::Json(j.clone()),
            BoundValue::Reference(r) => StoredValue::Reference(r.clone()),
            BoundValue::Context(_) => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_url_roundtrip() {
        let r = Reference::url("hdns://host2/jiniCtx");
        assert_eq!(r.url_addr(), Some("hdns://host2/jiniCtx"));
        assert_eq!(r.addr("NOPE"), None);
        assert!(BoundValue::Reference(r).is_federation_link());
    }

    #[test]
    fn accessors() {
        assert_eq!(BoundValue::str("x").as_str(), Some("x"));
        assert_eq!(BoundValue::I64(4).as_i64(), Some(4));
        assert_eq!(BoundValue::from("y").as_str(), Some("y"));
        assert_eq!(BoundValue::Bytes(vec![1]).as_bytes(), Some(&[1u8][..]));
        assert!(BoundValue::Null.as_str().is_none());
    }

    #[test]
    fn stored_value_encode_decode() {
        let vals = [
            StoredValue::Null,
            StoredValue::Str("s".into()),
            StoredValue::I64(-5),
            StoredValue::F64(1.5),
            StoredValue::Bool(true),
            StoredValue::Bytes(vec![0, 255]),
            StoredValue::Json(serde_json::json!({"a": [1, 2]})),
            StoredValue::Reference(Reference::url("jini://h")),
        ];
        for v in vals {
            let bytes = v.encode();
            assert_eq!(StoredValue::decode(&bytes), Some(v));
        }
        assert_eq!(StoredValue::decode(b"garbage"), None);
    }

    #[test]
    fn bound_stored_conversion() {
        let v = BoundValue::str("hello");
        let s = StoredValue::try_from_bound(&v).unwrap();
        assert_eq!(s.into_bound(), v);
    }

    #[test]
    fn class_names() {
        assert_eq!(BoundValue::Null.class_name(), "null");
        assert_eq!(BoundValue::str("x").class_name(), "string");
        assert_eq!(
            BoundValue::Reference(Reference::url("a://b")).class_name(),
            "reference"
        );
    }
}
