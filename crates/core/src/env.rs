//! The environment: configuration properties passed to providers.
//!
//! JNDI threads a `Hashtable` of environment properties through every
//! context; providers read service-specific settings (credentials, URLs,
//! consistency flags) from it. This mirrors that, with typed accessors.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::NamingError;

/// Well-known property names.
pub mod keys {
    /// URL of the initial/default naming service, e.g. `"hdns://host2"`.
    pub const PROVIDER_URL: &str = "rndi.provider.url";
    /// Security principal (user identity) for providers that authenticate.
    pub const SECURITY_PRINCIPAL: &str = "rndi.security.principal";
    /// Security credentials.
    pub const SECURITY_CREDENTIALS: &str = "rndi.security.credentials";
    /// `"true"`/`"false"`: whether the Jini provider enforces strict atomic
    /// `bind` semantics via distributed locking (paper §5.1). Default true.
    pub const JINI_STRICT_BIND: &str = "rndi.jini.bind.strict";
    /// Lease duration, in milliseconds, requested by providers that lease.
    pub const LEASE_MS: &str = "rndi.lease.ms";
    /// Maximum federation hops before resolution aborts (cycle guard).
    pub const MAX_FEDERATION_DEPTH: &str = "rndi.federation.max-depth";
    /// Maximum worker threads a federated subtree search fans out across
    /// mounted naming systems with. `1` degenerates to sequential visits.
    pub const FEDERATION_FANOUT: &str = "rndi.federation.fanout";
    /// TTL, in milliseconds, of the pipeline's read-through lookup cache.
    /// `0` (the default) disables the cache layer entirely.
    pub const CACHE_TTL_MS: &str = "rndi.pipeline.cache.ttl.ms";
    /// Maximum entries the pipeline's read-through cache retains before
    /// evicting least-recently-used ones.
    pub const CACHE_MAX_ENTRIES: &str = "rndi.pipeline.cache.max-entries";
    /// Maximum attempts the pipeline's retry layer makes per operation on
    /// transient backend errors. `1` (the default) means no retries.
    pub const RETRY_MAX_ATTEMPTS: &str = "rndi.pipeline.retry.max-attempts";
    /// Base backoff, in milliseconds, doubled per retry attempt.
    pub const RETRY_BACKOFF_MS: &str = "rndi.pipeline.retry.backoff.ms";
    /// `"true"`/`"false"`: whether pipelines install the observability
    /// layer (trace spans + per-op metrics). Default true.
    pub const OBS_ENABLED: &str = "rndi.obs.enabled";
    /// Path of a JSONL file that finished spans are appended to, in
    /// addition to the in-memory ring buffer. Unset (the default) means no
    /// file sink.
    pub const OBS_TRACE_FILE: &str = "rndi.obs.trace-file";
    /// Capacity of the process-wide span ring buffer (default 4096).
    pub const OBS_RING_CAPACITY: &str = "rndi.obs.ring-capacity";
    /// Cap on distinct metric series per family before new label sets
    /// fold into an `overflow="true"` series (default 4096; `0` = the
    /// default). Guards the registry against label-cardinality blowups.
    pub const OBS_MAX_SERIES: &str = "rndi.obs.max-series";
    /// Directory the flight recorder writes anomaly dumps (JSONL) into.
    /// Unset (the default) leaves the recorder disarmed.
    pub const OBS_FLIGHT_DIR: &str = "rndi.obs.flight-dir";
    /// Flight-recorder slow-op trigger: dump when an op runs longer than
    /// this multiple of its trailing p99 (default 4).
    pub const OBS_FLIGHT_P99_MULT: &str = "rndi.obs.flight.p99-multiple";
    /// Observations required per (provider, op) before the slow-op
    /// trigger arms (default 64).
    pub const OBS_FLIGHT_MIN_SAMPLES: &str = "rndi.obs.flight.min-samples";
    /// Flight-recorder error-spike trigger: dump when at least this
    /// percent of the trailing window errored (default 50).
    pub const OBS_FLIGHT_ERR_PCT: &str = "rndi.obs.flight.err-rate-pct";
    /// `host:port` a `NetServer` listens on. `127.0.0.1:0` (the default)
    /// binds an ephemeral loopback port.
    pub const NET_LISTEN: &str = "rndi.net.listen";
    /// Maximum concurrent connections a `NetServer` serves; accepts beyond
    /// this are refused until a slot drains. Default 64.
    pub const NET_SERVER_MAX_CONNS: &str = "rndi.net.server.max-conns";
    /// Per-request deadline, in milliseconds, that clients propagate and
    /// servers enforce. `0` disables deadlines. Default 5000.
    pub const NET_DEADLINE_MS: &str = "rndi.net.deadline-ms";
    /// Maximum idle pooled connections a `NetClient` keeps per endpoint.
    /// Default 4.
    pub const NET_CLIENT_POOL_SIZE: &str = "rndi.net.client.pool-size";
    /// `"true"`/`"false"`: whether a `NetClient` pings pooled connections
    /// before reuse (health check). Default true.
    pub const NET_CLIENT_HEALTH_CHECK: &str = "rndi.net.client.health-check";
    /// Wire protocol version a `NetClient` speaks: `2` (the default)
    /// opens with the binary-envelope preamble and multiplexes requests;
    /// `1` speaks lock-step framed JSON (what every server still accepts
    /// as the negotiated fallback).
    pub const NET_PROTO_VERSION: &str = "rndi.net.proto.version";
    /// Maximum in-flight requests a v2 `NetClient` pipelines per
    /// connection before a new call blocks. Default 32.
    pub const NET_CLIENT_PIPELINE_DEPTH: &str = "rndi.net.client.pipeline-depth";
    /// Event-loop shards (worker threads) a `NetServer` spreads its
    /// connections across. `0` (the default) sizes to the machine:
    /// `min(available cores, 4)`.
    pub const NET_SERVER_SHARDS: &str = "rndi.net.server.shards";
    /// Hard cap on the total pooled connections a `NetClient` holds per
    /// endpoint, counting transient redials — where
    /// [`NET_CLIENT_POOL_SIZE`] is the steady-state target, this is the
    /// ceiling the pool never grows past. `0` (the default) means
    /// `pool-size`.
    pub const NET_CLIENT_MAX_POOL: &str = "rndi.net.client.max-pool";
    /// Milliseconds a pooled client connection may sit idle (no request
    /// completed on it) before the pool evicts and closes it. `0`
    /// disables idle eviction. Default 30000.
    pub const NET_CLIENT_IDLE_MS: &str = "rndi.net.client.idle-ms";
    /// Bound on each `NetServer` event-loop shard's admission queue: calls
    /// beyond this many waiting are shed with `Overloaded` instead of
    /// queueing past their deadline. `0` (the default) leaves the queue
    /// unbounded (no queue shedding).
    pub const NET_SERVER_QUEUE_DEPTH: &str = "rndi.net.server.queue-depth";
    /// Per-connection token-bucket refill rate, in ops per second, that a
    /// `NetServer` admits; calls past the bucket are shed with
    /// `Overloaded`. `0` (the default) disables rate limiting.
    pub const NET_SERVER_RATE_OPS: &str = "rndi.net.server.rate.ops-per-sec";
    /// Per-connection token-bucket burst capacity (maximum tokens banked
    /// while a connection idles). `0` (the default) means the refill rate.
    pub const NET_SERVER_RATE_BURST: &str = "rndi.net.server.rate.burst";
    /// `"true"`/`"false"`: whether each `NetServer` shard runs the AIMD
    /// adaptive admission controller, shrinking its effective queue bound
    /// multiplicatively on shed/deadline-miss and growing it additively on
    /// in-budget completions. Requires a bounded queue. Default false.
    pub const NET_SERVER_ADAPTIVE: &str = "rndi.net.server.adaptive-concurrency";
    /// Grace window, in milliseconds, during which the pipeline cache may
    /// serve an *expired* entry when the backend reports `Overloaded`
    /// (serve-stale fallback). `0` (the default) disables it.
    pub const CACHE_SERVE_STALE_MS: &str = "rndi.pipeline.cache.serve-stale-ms";
    /// Maximum worker threads the shard router fans a scatter op
    /// (whole-namespace `list`/`search`, listener broadcast) out across.
    /// `1` degenerates to sequential shard visits. Default 8.
    pub const SHARD_FANOUT: &str = "rndi.shard.fanout";
    /// Shard-map specification a router/facade is built from:
    /// comma-separated `shard-id=host:port` members (the `shard-id=`
    /// prefix is optional — bare endpoints use the endpoint as id).
    pub const SHARD_MAP: &str = "rndi.shard.map";
    /// Seed endpoint (`host:port`) a booting cluster node gossips with
    /// first to discover the rest of the membership. Empty / absent means
    /// this node *is* the seed.
    pub const CLUSTER_SEED: &str = "rndi.cluster.seed";
    /// Milliseconds between gossip rounds (membership exchange with one
    /// random peer + heartbeat fan-out). Default 25.
    pub const CLUSTER_GOSSIP_INTERVAL_MS: &str = "rndi.cluster.gossip-interval-ms";
    /// Phi-accrual suspicion threshold: a peer whose heartbeat phi score
    /// crosses this becomes `Suspect`, and `Dead` at twice it. Default 8.
    pub const CLUSTER_PHI_THRESHOLD: &str = "rndi.cluster.phi-threshold";
    /// Milliseconds a node declared `Dead` stays quarantined: re-admission
    /// requires this cooldown to elapse *and* the node to return under a
    /// strictly higher incarnation. Default 2000.
    pub const CLUSTER_QUARANTINE_MS: &str = "rndi.cluster.quarantine-ms";
}

/// An immutable-by-convention string property map.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Environment {
    props: BTreeMap<String, String>,
}

impl Environment {
    pub fn new() -> Self {
        Environment::default()
    }

    /// Builder-style property set.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.props.insert(key.into(), value.into());
        self
    }

    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.props.insert(key.into(), value.into());
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.props.get(key).map(|s| s.as_str())
    }

    /// Boolean property; absent returns `default`. An unparsable value
    /// also falls back to `default` but is no longer silent: it bumps
    /// `rndi_config_parse_errors_total{key}` so misconfiguration is
    /// visible in metrics. Use [`Environment::try_get_bool`] to fail fast
    /// instead.
    pub fn get_bool(&self, key: &str, default: bool) -> bool {
        match self.parse_bool(key) {
            Ok(v) => v.unwrap_or(default),
            Err(_) => {
                note_parse_error(key);
                default
            }
        }
    }

    /// Unsigned integer property; absent returns `default`. An unparsable
    /// value falls back to `default` and bumps
    /// `rndi_config_parse_errors_total{key}`. Use
    /// [`Environment::try_get_u64`] to fail fast instead.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        match self.parse_u64(key) {
            Ok(v) => v.unwrap_or(default),
            Err(_) => {
                note_parse_error(key);
                default
            }
        }
    }

    /// Strict boolean accessor: absent returns `Ok(default)`, present but
    /// unparsable returns a `ConfigurationError` naming the key.
    pub fn try_get_bool(&self, key: &str, default: bool) -> Result<bool, NamingError> {
        self.parse_bool(key)
            .map(|v| v.unwrap_or(default))
            .map_err(|raw| config_error(key, &raw, "boolean"))
    }

    /// Strict unsigned-integer accessor: absent returns `Ok(default)`,
    /// present but unparsable returns a `ConfigurationError` naming the
    /// key.
    pub fn try_get_u64(&self, key: &str, default: u64) -> Result<u64, NamingError> {
        self.parse_u64(key)
            .map(|v| v.unwrap_or(default))
            .map_err(|raw| config_error(key, &raw, "unsigned integer"))
    }

    /// `Ok(None)` absent, `Ok(Some(v))` parsed, `Err(raw)` unparsable.
    fn parse_bool(&self, key: &str) -> Result<Option<bool>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => match v.to_ascii_lowercase().as_str() {
                "true" | "1" | "yes" | "on" => Ok(Some(true)),
                "false" | "0" | "no" | "off" => Ok(Some(false)),
                _ => Err(v.to_string()),
            },
        }
    }

    /// `Ok(None)` absent, `Ok(Some(v))` parsed, `Err(raw)` unparsable.
    fn parse_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v.trim().parse().map(Some).map_err(|_| v.to_string()),
        }
    }

    pub fn len(&self) -> usize {
        self.props.len()
    }

    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.props.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

fn note_parse_error(key: &str) {
    rndi_obs::metrics::counter(
        rndi_obs::metrics::names::CONFIG_PARSE_ERRORS,
        &[("key", key)],
    )
    .inc();
}

fn config_error(key: &str, raw: &str, kind: &str) -> NamingError {
    NamingError::ConfigurationError {
        detail: format!("property {key}: expected {kind}, got {raw:?}"),
    }
}

impl fmt::Debug for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_map();
        for (k, v) in &self.props {
            // Never leak credentials into logs.
            if k == keys::SECURITY_CREDENTIALS {
                d.entry(k, &"<redacted>");
            } else {
                d.entry(k, v);
            }
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors() {
        let env = Environment::new()
            .with("flag", "true")
            .with("num", "42")
            .with("junk", "zzz");
        assert!(env.get_bool("flag", false));
        assert!(!env.get_bool("missing", false));
        assert!(env.get_bool("junk", true), "unparsable falls back");
        assert_eq!(env.get_u64("num", 0), 42);
        assert_eq!(env.get_u64("junk", 7), 7);
        assert_eq!(env.get("num"), Some("42"));
    }

    #[test]
    fn strict_accessors_surface_config_errors() {
        let env = Environment::new()
            .with("flag", "true")
            .with("num", "42")
            .with("junk", "zzz");
        assert_eq!(env.try_get_bool("flag", false), Ok(true));
        assert_eq!(env.try_get_bool("missing", true), Ok(true));
        assert_eq!(env.try_get_u64("num", 0), Ok(42));
        assert_eq!(env.try_get_u64("missing", 9), Ok(9));
        match env.try_get_bool("junk", true) {
            Err(NamingError::ConfigurationError { detail }) => {
                assert!(detail.contains("junk"), "{detail}");
                assert!(detail.contains("zzz"), "{detail}");
            }
            other => panic!("expected ConfigurationError, got {other:?}"),
        }
        assert!(env.try_get_u64("junk", 7).is_err());
    }

    #[test]
    fn lenient_fallback_counts_parse_errors() {
        let env = Environment::new().with("env-test.bad", "not-a-number");
        let before = rndi_obs::metrics::counter(
            rndi_obs::metrics::names::CONFIG_PARSE_ERRORS,
            &[("key", "env-test.bad")],
        )
        .get();
        assert_eq!(env.get_u64("env-test.bad", 3), 3);
        assert!(env.get_bool("env-test.bad", true));
        let after = rndi_obs::metrics::counter(
            rndi_obs::metrics::names::CONFIG_PARSE_ERRORS,
            &[("key", "env-test.bad")],
        )
        .get();
        assert_eq!(after - before, 2, "both lenient reads count a parse error");
    }

    #[test]
    fn bool_spellings() {
        for (s, expect) in [("YES", true), ("off", false), ("1", true), ("0", false)] {
            let env = Environment::new().with("k", s);
            assert_eq!(env.get_bool("k", !expect), expect, "spelling {s}");
        }
    }

    #[test]
    fn debug_redacts_credentials() {
        let env = Environment::new()
            .with(keys::SECURITY_CREDENTIALS, "hunter2")
            .with(keys::SECURITY_PRINCIPAL, "alice");
        let dbg = format!("{env:?}");
        assert!(!dbg.contains("hunter2"));
        assert!(dbg.contains("alice"));
    }
}
