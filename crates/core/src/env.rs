//! The environment: configuration properties passed to providers.
//!
//! JNDI threads a `Hashtable` of environment properties through every
//! context; providers read service-specific settings (credentials, URLs,
//! consistency flags) from it. This mirrors that, with typed accessors.

use std::collections::BTreeMap;
use std::fmt;

/// Well-known property names.
pub mod keys {
    /// URL of the initial/default naming service, e.g. `"hdns://host2"`.
    pub const PROVIDER_URL: &str = "rndi.provider.url";
    /// Security principal (user identity) for providers that authenticate.
    pub const SECURITY_PRINCIPAL: &str = "rndi.security.principal";
    /// Security credentials.
    pub const SECURITY_CREDENTIALS: &str = "rndi.security.credentials";
    /// `"true"`/`"false"`: whether the Jini provider enforces strict atomic
    /// `bind` semantics via distributed locking (paper §5.1). Default true.
    pub const JINI_STRICT_BIND: &str = "rndi.jini.bind.strict";
    /// Lease duration, in milliseconds, requested by providers that lease.
    pub const LEASE_MS: &str = "rndi.lease.ms";
    /// Maximum federation hops before resolution aborts (cycle guard).
    pub const MAX_FEDERATION_DEPTH: &str = "rndi.federation.max-depth";
    /// Maximum worker threads a federated subtree search fans out across
    /// mounted naming systems with. `1` degenerates to sequential visits.
    pub const FEDERATION_FANOUT: &str = "rndi.federation.fanout";
    /// TTL, in milliseconds, of the pipeline's read-through lookup cache.
    /// `0` (the default) disables the cache layer entirely.
    pub const CACHE_TTL_MS: &str = "rndi.pipeline.cache.ttl.ms";
    /// Maximum entries the pipeline's read-through cache retains before
    /// evicting least-recently-used ones.
    pub const CACHE_MAX_ENTRIES: &str = "rndi.pipeline.cache.max-entries";
    /// Maximum attempts the pipeline's retry layer makes per operation on
    /// transient backend errors. `1` (the default) means no retries.
    pub const RETRY_MAX_ATTEMPTS: &str = "rndi.pipeline.retry.max-attempts";
    /// Base backoff, in milliseconds, doubled per retry attempt.
    pub const RETRY_BACKOFF_MS: &str = "rndi.pipeline.retry.backoff.ms";
    /// `"true"`/`"false"`: whether pipelines install the observability
    /// layer (trace spans + per-op metrics). Default true.
    pub const OBS_ENABLED: &str = "rndi.obs.enabled";
    /// Path of a JSONL file that finished spans are appended to, in
    /// addition to the in-memory ring buffer. Unset (the default) means no
    /// file sink.
    pub const OBS_TRACE_FILE: &str = "rndi.obs.trace-file";
    /// Capacity of the process-wide span ring buffer (default 4096).
    pub const OBS_RING_CAPACITY: &str = "rndi.obs.ring-capacity";
}

/// An immutable-by-convention string property map.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Environment {
    props: BTreeMap<String, String>,
}

impl Environment {
    pub fn new() -> Self {
        Environment::default()
    }

    /// Builder-style property set.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.props.insert(key.into(), value.into());
        self
    }

    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.props.insert(key.into(), value.into());
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.props.get(key).map(|s| s.as_str())
    }

    /// Boolean property; absent or unparsable returns `default`.
    pub fn get_bool(&self, key: &str, default: bool) -> bool {
        match self.get(key) {
            Some(v) => match v.to_ascii_lowercase().as_str() {
                "true" | "1" | "yes" | "on" => true,
                "false" | "0" | "no" | "off" => false,
                _ => default,
            },
            None => default,
        }
    }

    /// Unsigned integer property; absent or unparsable returns `default`.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(default)
    }

    pub fn len(&self) -> usize {
        self.props.len()
    }

    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.props.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

impl fmt::Debug for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_map();
        for (k, v) in &self.props {
            // Never leak credentials into logs.
            if k == keys::SECURITY_CREDENTIALS {
                d.entry(k, &"<redacted>");
            } else {
                d.entry(k, v);
            }
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors() {
        let env = Environment::new()
            .with("flag", "true")
            .with("num", "42")
            .with("junk", "zzz");
        assert!(env.get_bool("flag", false));
        assert!(!env.get_bool("missing", false));
        assert!(env.get_bool("junk", true), "unparsable falls back");
        assert_eq!(env.get_u64("num", 0), 42);
        assert_eq!(env.get_u64("junk", 7), 7);
        assert_eq!(env.get("num"), Some("42"));
    }

    #[test]
    fn bool_spellings() {
        for (s, expect) in [("YES", true), ("off", false), ("1", true), ("0", false)] {
            let env = Environment::new().with("k", s);
            assert_eq!(env.get_bool("k", !expect), expect, "spelling {s}");
        }
    }

    #[test]
    fn debug_redacts_credentials() {
        let env = Environment::new()
            .with(keys::SECURITY_CREDENTIALS, "hunter2")
            .with(keys::SECURITY_PRINCIPAL, "alice");
        let dbg = format!("{env:?}");
        assert!(!dbg.contains("hunter2"));
        assert!(dbg.contains("alice"));
    }
}
