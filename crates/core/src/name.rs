//! Composite and compound names.
//!
//! JNDI distinguishes **composite names** — which span naming systems and
//! use `/` as the component separator with `\` escapes and `'`/`"` quoting —
//! from **compound names**, which live within a single naming system and
//! follow provider-specific syntax (dot-separated right-to-left for DNS,
//! comma-separated right-to-left for LDAP, …). We implement both, with
//! round-trippable parse/print.

use std::fmt;

use crate::error::{NamingError, Result};

/// A composite name: an ordered sequence of components, possibly spanning
/// multiple naming systems.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct CompositeName {
    components: Vec<String>,
}

impl CompositeName {
    /// The empty name (names the context itself).
    pub fn empty() -> Self {
        CompositeName::default()
    }

    /// Build from pre-split components (no parsing).
    pub fn from_components<I, S>(parts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        CompositeName {
            components: parts.into_iter().map(Into::into).collect(),
        }
    }

    /// Parse the JNDI composite-name syntax: components separated by `/`,
    /// with `\` escaping the next character and single or double quotes
    /// protecting whole components.
    pub fn parse(s: &str) -> Result<Self> {
        if s.is_empty() {
            return Ok(CompositeName::empty());
        }
        let mut components = Vec::new();
        let mut current = String::new();
        let mut chars = s.chars().peekable();
        let mut quote: Option<char> = None;
        let mut component_open = true; // tracks trailing separator
        while let Some(c) = chars.next() {
            component_open = true;
            match c {
                '\\' => match chars.next() {
                    Some(next) => current.push(next),
                    None => {
                        return Err(NamingError::invalid_name(s, "dangling escape at end"));
                    }
                },
                q @ ('\'' | '"') => {
                    match quote {
                        None if current.is_empty() => quote = Some(q),
                        Some(open) if open == q => {
                            // Closing quote must end the component.
                            match chars.peek() {
                                None | Some('/') => quote = None,
                                Some(_) => {
                                    return Err(NamingError::invalid_name(
                                        s,
                                        "closing quote not at end of component",
                                    ));
                                }
                            }
                        }
                        _ => current.push(q),
                    }
                }
                '/' if quote.is_none() => {
                    components.push(std::mem::take(&mut current));
                    component_open = false;
                }
                other => current.push(other),
            }
        }
        if quote.is_some() {
            return Err(NamingError::invalid_name(s, "unterminated quote"));
        }
        if component_open || components.is_empty() {
            components.push(current);
        } else if s.ends_with('/') {
            // "a/" names the empty component under a.
            components.push(String::new());
        }
        Ok(CompositeName { components })
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` when the name has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Borrow the components.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// The first component, if any.
    pub fn head(&self) -> Option<&str> {
        self.components.first().map(|s| s.as_str())
    }

    /// Everything after the first component.
    pub fn tail(&self) -> CompositeName {
        CompositeName {
            components: self.components.iter().skip(1).cloned().collect(),
        }
    }

    /// The leading `n` components.
    pub fn prefix(&self, n: usize) -> CompositeName {
        CompositeName {
            components: self.components.iter().take(n).cloned().collect(),
        }
    }

    /// Components from position `n` onward.
    pub fn suffix(&self, n: usize) -> CompositeName {
        CompositeName {
            components: self.components.iter().skip(n).cloned().collect(),
        }
    }

    /// Append a single component (no parsing).
    pub fn child(&self, component: impl Into<String>) -> CompositeName {
        let mut components = self.components.clone();
        components.push(component.into());
        CompositeName { components }
    }

    /// Concatenate two names.
    pub fn join(&self, other: &CompositeName) -> CompositeName {
        let mut components = self.components.clone();
        components.extend(other.components.iter().cloned());
        CompositeName { components }
    }

    /// Whether `prefix` is a leading subsequence of this name.
    pub fn starts_with(&self, prefix: &CompositeName) -> bool {
        self.components.len() >= prefix.components.len()
            && self.components[..prefix.components.len()] == prefix.components[..]
    }

    /// Escape a single component for display.
    fn escape(component: &str) -> String {
        let mut out = String::with_capacity(component.len());
        for c in component.chars() {
            if matches!(c, '/' | '\\' | '\'' | '"') {
                out.push('\\');
            }
            out.push(c);
        }
        out
    }
}

impl fmt::Display for CompositeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.components {
            if !first {
                f.write_str("/")?;
            }
            first = false;
            f.write_str(&Self::escape(c))?;
        }
        Ok(())
    }
}

impl fmt::Debug for CompositeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompositeName({self})")
    }
}

impl std::str::FromStr for CompositeName {
    type Err = NamingError;
    fn from_str(s: &str) -> Result<Self> {
        CompositeName::parse(s)
    }
}

impl From<&str> for CompositeName {
    /// Convenience conversion that panics on malformed names; use
    /// [`CompositeName::parse`] when input is untrusted.
    fn from(s: &str) -> Self {
        CompositeName::parse(s).expect("malformed composite name literal")
    }
}

/// Syntax description for a provider's compound names.
#[derive(Clone, Debug)]
pub struct CompoundSyntax {
    /// The component separator, e.g. `"."` for DNS, `","` for LDAP.
    pub separator: char,
    /// `true` when the most significant component is rightmost (DNS, LDAP).
    pub right_to_left: bool,
    /// Whether component comparison ignores ASCII case.
    pub case_insensitive: bool,
    /// Escape character, if the syntax supports escaping.
    pub escape: Option<char>,
    /// Whether surrounding whitespace in components is insignificant.
    pub trim_blanks: bool,
}

impl CompoundSyntax {
    /// DNS-style: dot-separated, right-to-left, case-insensitive.
    pub fn dns() -> Self {
        CompoundSyntax {
            separator: '.',
            right_to_left: true,
            case_insensitive: true,
            escape: Some('\\'),
            trim_blanks: false,
        }
    }

    /// LDAP-style: comma-separated, right-to-left, case-insensitive, with
    /// blank trimming (`cn=a, dc=b` ≡ `cn=a,dc=b`).
    pub fn ldap() -> Self {
        CompoundSyntax {
            separator: ',',
            right_to_left: true,
            case_insensitive: true,
            escape: Some('\\'),
            trim_blanks: true,
        }
    }

    /// Unix-path style: slash-separated, left-to-right, case-sensitive.
    pub fn path() -> Self {
        CompoundSyntax {
            separator: '/',
            right_to_left: false,
            case_insensitive: false,
            escape: Some('\\'),
            trim_blanks: false,
        }
    }
}

/// A compound name: components within one naming system, stored
/// **most-significant first** regardless of the display direction.
#[derive(Clone, Debug)]
pub struct CompoundName {
    components: Vec<String>,
    syntax: CompoundSyntax,
}

impl CompoundName {
    /// Parse `s` under the given syntax.
    pub fn parse(s: &str, syntax: CompoundSyntax) -> Result<Self> {
        if s.is_empty() {
            return Ok(CompoundName {
                components: Vec::new(),
                syntax,
            });
        }
        let mut parts: Vec<String> = Vec::new();
        let mut current = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if Some(c) == syntax.escape {
                match chars.next() {
                    Some(next) => current.push(next),
                    None => return Err(NamingError::invalid_name(s, "dangling escape")),
                }
            } else if c == syntax.separator {
                parts.push(std::mem::take(&mut current));
            } else {
                current.push(c);
            }
        }
        parts.push(current);
        if syntax.trim_blanks {
            for p in &mut parts {
                *p = p.trim().to_string();
            }
        }
        if syntax.right_to_left {
            parts.reverse();
        }
        Ok(CompoundName {
            components: parts,
            syntax,
        })
    }

    /// Components, most-significant first.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    pub fn len(&self) -> usize {
        self.components.len()
    }

    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Compare under the syntax's case rule.
    pub fn name_eq(&self, other: &CompoundName) -> bool {
        if self.components.len() != other.components.len() {
            return false;
        }
        self.components.iter().zip(&other.components).all(|(a, b)| {
            if self.syntax.case_insensitive {
                a.eq_ignore_ascii_case(b)
            } else {
                a == b
            }
        })
    }

    /// Convert to a composite name (one composite component per compound
    /// component, most-significant first).
    pub fn to_composite(&self) -> CompositeName {
        CompositeName::from_components(self.components.clone())
    }
}

impl fmt::Display for CompoundName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let escape = |c: &str| -> String {
            let mut out = String::with_capacity(c.len());
            for ch in c.chars() {
                if ch == self.syntax.separator || Some(ch) == self.syntax.escape {
                    if let Some(e) = self.syntax.escape {
                        out.push(e);
                    }
                }
                out.push(ch);
            }
            out
        };
        let ordered: Vec<String> = if self.syntax.right_to_left {
            self.components.iter().rev().map(|c| escape(c)).collect()
        } else {
            self.components.iter().map(|c| escape(c)).collect()
        };
        f.write_str(&ordered.join(&self.syntax.separator.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let n = CompositeName::parse("a/b/c").unwrap();
        assert_eq!(n.components(), ["a", "b", "c"]);
        assert_eq!(n.to_string(), "a/b/c");
    }

    #[test]
    fn parse_empty_and_root() {
        assert!(CompositeName::parse("").unwrap().is_empty());
        let n = CompositeName::parse("/").unwrap();
        assert_eq!(n.components(), ["", ""]);
    }

    #[test]
    fn trailing_separator_yields_empty_component() {
        let n = CompositeName::parse("a/").unwrap();
        assert_eq!(n.components(), ["a", ""]);
    }

    #[test]
    fn escapes_protect_separator() {
        let n = CompositeName::parse(r"a\/b/c").unwrap();
        assert_eq!(n.components(), ["a/b", "c"]);
        // Round trip re-escapes.
        assert_eq!(n.to_string(), r"a\/b/c");
        let re = CompositeName::parse(&n.to_string()).unwrap();
        assert_eq!(re, n);
    }

    #[test]
    fn quotes_protect_separator() {
        let n = CompositeName::parse(r#""a/b"/c"#).unwrap();
        assert_eq!(n.components(), ["a/b", "c"]);
        let n = CompositeName::parse("'x/y'").unwrap();
        assert_eq!(n.components(), ["x/y"]);
    }

    #[test]
    fn quote_errors() {
        assert!(CompositeName::parse("'abc").is_err());
        assert!(CompositeName::parse("'ab'c").is_err());
        assert!(CompositeName::parse(r"abc\").is_err());
    }

    #[test]
    fn inner_quote_is_literal() {
        let n = CompositeName::parse("ab'cd").unwrap();
        assert_eq!(n.components(), ["ab'cd"]);
    }

    #[test]
    fn head_tail_prefix_suffix() {
        let n = CompositeName::from_components(["a", "b", "c"]);
        assert_eq!(n.head(), Some("a"));
        assert_eq!(n.tail().components(), ["b", "c"]);
        assert_eq!(n.prefix(2).components(), ["a", "b"]);
        assert_eq!(n.suffix(2).components(), ["c"]);
        assert!(n.starts_with(&n.prefix(2)));
        assert!(!n.prefix(2).starts_with(&n));
    }

    #[test]
    fn join_and_child() {
        let a = CompositeName::from_components(["x"]);
        let b = CompositeName::from_components(["y", "z"]);
        assert_eq!(a.join(&b).to_string(), "x/y/z");
        assert_eq!(a.child("w").to_string(), "x/w");
    }

    #[test]
    fn compound_dns_right_to_left() {
        let n = CompoundName::parse("dcl.mathcs.emory.edu", CompoundSyntax::dns()).unwrap();
        // Most significant first: edu, emory, mathcs, dcl
        assert_eq!(n.components(), ["edu", "emory", "mathcs", "dcl"]);
        assert_eq!(n.to_string(), "dcl.mathcs.emory.edu");
    }

    #[test]
    fn compound_ldap_trims_blanks() {
        let n =
            CompoundName::parse("cn=monkey, dc=emory , dc=edu", CompoundSyntax::ldap()).unwrap();
        assert_eq!(n.components(), ["dc=edu", "dc=emory", "cn=monkey"]);
    }

    #[test]
    fn compound_case_insensitive_eq() {
        let a = CompoundName::parse("WWW.Emory.EDU", CompoundSyntax::dns()).unwrap();
        let b = CompoundName::parse("www.emory.edu", CompoundSyntax::dns()).unwrap();
        assert!(a.name_eq(&b));
        let c = CompoundName::parse("a/B", CompoundSyntax::path()).unwrap();
        let d = CompoundName::parse("a/b", CompoundSyntax::path()).unwrap();
        assert!(!c.name_eq(&d));
    }

    #[test]
    fn compound_escaped_separator() {
        let n = CompoundName::parse(r"a\.b.c", CompoundSyntax::dns()).unwrap();
        assert_eq!(n.components(), ["c", "a.b"]);
        assert_eq!(n.to_string(), r"a\.b.c");
    }

    #[test]
    fn compound_to_composite() {
        let n = CompoundName::parse("dcl.mathcs.emory", CompoundSyntax::dns()).unwrap();
        assert_eq!(n.to_composite().to_string(), "emory/mathcs/dcl");
    }
}
