//! URL-style names: `scheme://host[:port]/component/...`.
//!
//! JNDI federations identify entries with composite URL names; the scheme
//! selects a service provider, the authority selects a service instance,
//! and the path is a composite name resolved within (and possibly beyond)
//! that service.

use std::fmt;

use crate::error::{NamingError, Result};
use crate::name::CompositeName;

/// A parsed naming URL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RndiUrl {
    pub scheme: String,
    pub host: String,
    pub port: Option<u16>,
    /// The path, as a composite name (may be empty).
    pub path: CompositeName,
}

impl RndiUrl {
    /// Parse a URL of the form `scheme://host[:port][/path...]`.
    pub fn parse(s: &str) -> Result<RndiUrl> {
        let (scheme, rest) = s
            .split_once("://")
            .ok_or_else(|| NamingError::invalid_name(s, "missing ://"))?;
        if !is_valid_scheme(scheme) {
            return Err(NamingError::invalid_name(s, "invalid scheme"));
        }
        let (authority, path) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx + 1..]),
            None => (rest, ""),
        };
        if authority.is_empty() {
            return Err(NamingError::invalid_name(s, "empty authority"));
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p
                    .parse()
                    .map_err(|_| NamingError::invalid_name(s, "invalid port"))?;
                (h.to_string(), Some(port))
            }
            None => (authority.to_string(), None),
        };
        if host.is_empty() {
            return Err(NamingError::invalid_name(s, "empty host"));
        }
        Ok(RndiUrl {
            scheme: scheme.to_ascii_lowercase(),
            host,
            port,
            path: CompositeName::parse(path)?,
        })
    }

    /// `scheme://host[:port]` with no path.
    pub fn authority(&self) -> String {
        match self.port {
            Some(p) => format!("{}://{}:{}", self.scheme, self.host, p),
            None => format!("{}://{}", self.scheme, self.host),
        }
    }

    /// Re-root this URL at a different path.
    pub fn with_path(&self, path: CompositeName) -> RndiUrl {
        RndiUrl {
            path,
            ..self.clone()
        }
    }
}

impl fmt::Display for RndiUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.authority())?;
        if !self.path.is_empty() {
            write!(f, "/{}", self.path)?;
        }
        Ok(())
    }
}

/// Whether `s` is syntactically a naming URL (as opposed to a composite
/// name to resolve in the default context).
pub fn looks_like_url(s: &str) -> bool {
    match s.split_once("://") {
        Some((scheme, rest)) => is_valid_scheme(scheme) && !rest.is_empty(),
        None => false,
    }
}

fn is_valid_scheme(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full() {
        let u = RndiUrl::parse("hdns://host2:8085/emory/mathcs/dcl").unwrap();
        assert_eq!(u.scheme, "hdns");
        assert_eq!(u.host, "host2");
        assert_eq!(u.port, Some(8085));
        assert_eq!(u.path.components(), ["emory", "mathcs", "dcl"]);
        assert_eq!(u.to_string(), "hdns://host2:8085/emory/mathcs/dcl");
    }

    #[test]
    fn parse_no_path_no_port() {
        let u = RndiUrl::parse("jini://host1").unwrap();
        assert_eq!(u.scheme, "jini");
        assert_eq!(u.host, "host1");
        assert_eq!(u.port, None);
        assert!(u.path.is_empty());
        assert_eq!(u.authority(), "jini://host1");
    }

    #[test]
    fn scheme_case_normalized() {
        let u = RndiUrl::parse("LDAP://h/x").unwrap();
        assert_eq!(u.scheme, "ldap");
    }

    #[test]
    fn paper_example() {
        let u = RndiUrl::parse("dns://global/emory/mathcs/dcl/mokey").unwrap();
        assert_eq!(u.scheme, "dns");
        assert_eq!(u.host, "global");
        assert_eq!(u.path.components(), ["emory", "mathcs", "dcl", "mokey"]);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "nourl",
            "://host",
            "1ab://host",
            "a b://host",
            "jini://",
            "jini://:80",
            "jini://h:notaport",
        ] {
            assert!(RndiUrl::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn url_detection() {
        assert!(looks_like_url("jini://host1"));
        assert!(looks_like_url("dns://global/a"));
        assert!(!looks_like_url("plain/name"));
        assert!(!looks_like_url("no-scheme"));
        assert!(!looks_like_url("://x"));
        assert!(!looks_like_url("9bad://x"));
    }

    #[test]
    fn with_path_reroots() {
        let u = RndiUrl::parse("ldap://h:389/a/b").unwrap();
        let v = u.with_path(CompositeName::from_components(["c"]));
        assert_eq!(v.to_string(), "ldap://h:389/c");
    }
}
