//! Property tests for the op-layer wire codec: every marshallable
//! [`BoundValue`] survives a marshal/unmarshal round trip, bytes the
//! codec never produced (foreign data bound by non-RNDI clients) fall back
//! to raw [`BoundValue::Bytes`] instead of failing, and the optional trace
//! frame is backward compatible in both directions (old client → new
//! server and new client → old server).

use proptest::prelude::*;

use rndi_core::op::codec::{decode_frame, encode_frame, marshal, unmarshal};
use rndi_core::value::{BoundValue, Reference, StoredValue};
use rndi_obs::TraceCtx;

fn json_leaf() -> impl Strategy<Value = serde_json::Value> {
    prop_oneof![
        Just(serde_json::Value::Null),
        any::<bool>().prop_map(serde_json::Value::from),
        any::<i64>().prop_map(serde_json::Value::from),
        "[a-zA-Z0-9 ]{0,12}".prop_map(serde_json::Value::from),
    ]
}

fn json_value() -> impl Strategy<Value = serde_json::Value> {
    json_leaf().prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(serde_json::Value::Array),
            proptest::collection::btree_map("[a-z]{1,6}", inner, 0..4)
                .prop_map(|m| { serde_json::Value::Object(m.into_iter().collect()) }),
        ]
    })
}

fn bound_value() -> impl Strategy<Value = BoundValue> {
    prop_oneof![
        Just(BoundValue::Null),
        "[a-zA-Z0-9 _.:/]{0,16}".prop_map(BoundValue::Str),
        any::<i64>().prop_map(BoundValue::I64),
        // JSON has no encoding for NaN/infinity, so the codec only promises
        // round trips for finite floats.
        any::<f64>().prop_map(|f| BoundValue::F64(if f.is_finite() { f } else { 0.5 })),
        any::<bool>().prop_map(BoundValue::Bool),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(BoundValue::Bytes),
        json_value().prop_map(BoundValue::Json),
        "[a-z]{1,8}://[a-z0-9./]{0,20}".prop_map(|url| BoundValue::Reference(Reference::url(url))),
    ]
}

fn trace_ctx() -> impl Strategy<Value = TraceCtx> {
    // trace_id and span_id are never 0 in a valid context (0 parent means
    // "root"); depth is a small hop count in practice but any u32 encodes.
    (1..u64::MAX, 1..u64::MAX, any::<u64>(), any::<u32>()).prop_map(
        |(trace_id, span_id, parent_span, depth)| TraceCtx {
            trace_id,
            span_id,
            parent_span,
            depth,
        },
    )
}

proptest! {
    #[test]
    fn framed_value_round_trips_with_trace(v in bound_value(), ctx in trace_ctx()) {
        let bytes = encode_frame(&v, Some(&ctx)).expect("marshallable value");
        let (decoded, got_ctx) = decode_frame(&bytes);
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(got_ctx, Some(ctx));
    }

    #[test]
    fn untraced_frame_is_byte_identical_to_legacy_encoding(v in bound_value()) {
        // New client without a trace context → old server: the wire bytes
        // are exactly what a pre-trace client would have written.
        prop_assert_eq!(
            encode_frame(&v, None).expect("marshallable value"),
            marshal(&v).expect("marshallable value")
        );
    }

    #[test]
    fn legacy_bytes_decode_without_trace(v in bound_value()) {
        // Old client → new server: un-framed bytes decode to the value
        // with no trace context attached.
        let legacy = marshal(&v).expect("marshallable value");
        let (decoded, ctx) = decode_frame(&legacy);
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(ctx, None);
    }

    #[test]
    fn unmarshal_tolerates_framed_bytes(v in bound_value(), ctx in trace_ctx()) {
        // A reader that doesn't care about traces still gets the value
        // from framed bytes (defense in depth for mixed-version stores).
        let framed = encode_frame(&v, Some(&ctx)).expect("marshallable value");
        prop_assert_eq!(unmarshal(&framed), v);
    }

    #[test]
    fn marshal_unmarshal_round_trips(v in bound_value()) {
        let bytes = marshal(&v).expect("marshallable value");
        prop_assert_eq!(unmarshal(&bytes), v);
    }

    #[test]
    fn foreign_bytes_surface_as_raw_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        // Only exercise inputs the codec itself would never emit.
        prop_assume!(StoredValue::decode(&bytes).is_none());
        prop_assert_eq!(unmarshal(&bytes), BoundValue::Bytes(bytes));
    }

    #[test]
    fn unmarshal_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..48)) {
        let _ = unmarshal(&bytes);
    }
}
