//! Domain names: dotted labels, case-insensitive, stored leaf-first.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A fully qualified domain name. `labels[0]` is the leftmost (leaf)
/// label; the root is the empty label sequence.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DnsName {
    labels: Vec<String>,
}

impl DnsName {
    /// The DNS root.
    pub fn root() -> Self {
        DnsName::default()
    }

    /// Parse a dotted name; a trailing dot (FQDN form) is accepted and
    /// ignored. Labels are normalized to lower case.
    pub fn parse(s: &str) -> Result<DnsName, String> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(DnsName::root());
        }
        let mut labels = Vec::new();
        for label in s.split('.') {
            if label.is_empty() {
                return Err(format!("empty label in {s:?}"));
            }
            if label.len() > 63 {
                return Err(format!("label too long in {s:?}"));
            }
            if !label
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
            {
                return Err(format!("invalid character in label {label:?}"));
            }
            labels.push(label.to_ascii_lowercase());
        }
        if labels.iter().map(|l| l.len() + 1).sum::<usize>() > 255 {
            return Err(format!("name too long: {s:?}"));
        }
        Ok(DnsName { labels })
    }

    pub fn from_labels<I, S>(labels: I) -> DnsName
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        DnsName {
            labels: labels
                .into_iter()
                .map(|l| l.into().to_ascii_lowercase())
                .collect(),
        }
    }

    /// Leaf-first labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The parent name (dropping the leaf label); `None` at the root.
    pub fn parent(&self) -> Option<DnsName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DnsName {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Prepend a label.
    pub fn child(&self, label: &str) -> DnsName {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.to_ascii_lowercase());
        labels.extend(self.labels.iter().cloned());
        DnsName { labels }
    }

    /// Whether `self` equals or is beneath `zone` (suffix match).
    pub fn is_under(&self, zone: &DnsName) -> bool {
        if zone.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - zone.labels.len();
        self.labels[offset..] == zone.labels[..]
    }

    /// The trailing `n` labels (a suffix name).
    pub fn suffix(&self, n: usize) -> DnsName {
        let n = n.min(self.labels.len());
        DnsName {
            labels: self.labels[self.labels.len() - n..].to_vec(),
        }
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            f.write_str(".")
        } else {
            write!(f, "{}.", self.labels.join("."))
        }
    }
}

impl fmt::Debug for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DnsName({self})")
    }
}

impl std::str::FromStr for DnsName {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnsName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n = DnsName::parse("dcl.MathCS.Emory.edu").unwrap();
        assert_eq!(n.labels(), ["dcl", "mathcs", "emory", "edu"]);
        assert_eq!(n.to_string(), "dcl.mathcs.emory.edu.");
        assert_eq!(DnsName::parse("dcl.mathcs.emory.edu.").unwrap(), n);
    }

    #[test]
    fn root_cases() {
        assert!(DnsName::parse("").unwrap().is_root());
        assert!(DnsName::parse(".").unwrap().is_root());
        assert_eq!(DnsName::root().to_string(), ".");
        assert!(DnsName::root().parent().is_none());
    }

    #[test]
    fn hierarchy_navigation() {
        let n = DnsName::parse("a.b.c").unwrap();
        assert_eq!(n.parent().unwrap().to_string(), "b.c.");
        assert_eq!(n.parent().unwrap().child("x").to_string(), "x.b.c.");
        assert_eq!(n.suffix(1).to_string(), "c.");
        assert_eq!(n.suffix(99), n);
    }

    #[test]
    fn suffix_matching() {
        let zone = DnsName::parse("emory.edu").unwrap();
        assert!(DnsName::parse("dcl.mathcs.emory.edu")
            .unwrap()
            .is_under(&zone));
        assert!(zone.is_under(&zone));
        assert!(zone.is_under(&DnsName::root()));
        assert!(!DnsName::parse("emory.com").unwrap().is_under(&zone));
        assert!(!DnsName::parse("notemory.edu").unwrap().is_under(&zone));
    }

    #[test]
    fn rejects_bad_labels() {
        assert!(DnsName::parse("a..b").is_err());
        assert!(DnsName::parse("sp ace.com").is_err());
        assert!(DnsName::parse(&("x".repeat(64) + ".com")).is_err());
        let long = ["abcdefgh"; 32].join(".");
        assert!(DnsName::parse(&long).is_err(), "total length cap");
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(
            DnsName::parse("WWW.EMORY.EDU").unwrap(),
            DnsName::parse("www.emory.edu").unwrap()
        );
    }
}
