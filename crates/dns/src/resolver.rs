//! Iterative resolution with a TTL cache.
//!
//! The resolver chases referrals from the root servers down to an
//! authoritative answer, caching positive and negative results by TTL.
//! Nameserver hostnames map to server handles through a registry (standing
//! in for glue/A-record resolution of the real protocol).

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::name::DnsName;
use crate::rr::{RData, RecordType, ResourceRecord};
use crate::server::{AuthServer, Rcode};

/// Resolution failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResolveError {
    /// Authoritative denial.
    NxDomain(String),
    /// Referral loop / depth exceeded / unreachable nameserver.
    ServFail(String),
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::NxDomain(n) => write!(f, "NXDOMAIN {n}"),
            ResolveError::ServFail(d) => write!(f, "SERVFAIL {d}"),
        }
    }
}

impl std::error::Error for ResolveError {}

#[derive(Clone)]
struct CacheLine {
    expires_at_ms: u64,
    /// `None` encodes a negative (NXDOMAIN) entry.
    records: Option<Vec<ResourceRecord>>,
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResolverStats {
    pub hits: u64,
    pub misses: u64,
    pub upstream_queries: u64,
}

/// An iterative, caching resolver.
///
/// ```
/// use minidns::{AuthServer, DnsName, RecordType, Resolver, ResourceRecord, Zone};
///
/// let server = AuthServer::new();
/// let mut zone = Zone::new(DnsName::parse("example").unwrap());
/// zone.insert(ResourceRecord::txt("svc.example", 60, "hdns://host2"));
/// server.add_zone(zone);
///
/// let resolver = Resolver::new(vec![server]);
/// let rrs = resolver
///     .resolve(&DnsName::parse("svc.example").unwrap(), RecordType::Txt, 0)
///     .unwrap();
/// assert_eq!(rrs.len(), 1);
/// ```
pub struct Resolver {
    roots: Vec<AuthServer>,
    /// Nameserver hostname → server handle (glue).
    servers: HashMap<DnsName, AuthServer>,
    cache: Mutex<HashMap<(DnsName, RecordType), CacheLine>>,
    stats: Mutex<ResolverStats>,
    negative_ttl_ms: u64,
    max_referrals: usize,
}

impl Resolver {
    pub fn new(roots: Vec<AuthServer>) -> Self {
        Resolver {
            roots,
            servers: HashMap::new(),
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(ResolverStats::default()),
            negative_ttl_ms: 30_000,
            max_referrals: 16,
        }
    }

    /// Register glue: the server reachable as nameserver `host`.
    pub fn add_glue(&mut self, host: DnsName, server: AuthServer) {
        self.servers.insert(host, server);
    }

    pub fn stats(&self) -> ResolverStats {
        *self.stats.lock()
    }

    /// [`Resolver::resolve`] carrying the caller's trace context: the
    /// resolution is counted and timed under the `minidns` server label,
    /// and when a context is supplied a `server`-layer span is linked into
    /// the caller's trace.
    pub fn resolve_traced(
        &self,
        name: &DnsName,
        rtype: RecordType,
        now_ms: u64,
        trace: Option<&rndi_obs::TraceCtx>,
    ) -> Result<Vec<ResourceRecord>, ResolveError> {
        use rndi_obs::metrics::names;
        let start = std::time::Instant::now();
        let result = self.resolve(name, rtype, now_ms);
        rndi_obs::metrics::counter(
            names::SERVER_OPS,
            &[("server", "minidns"), ("op", "resolve")],
        )
        .inc();
        rndi_obs::metrics::histogram(
            names::SERVER_DURATION,
            &[("server", "minidns"), ("op", "resolve")],
        )
        .record_duration(start.elapsed());
        if let Some(ctx) = trace {
            rndi_obs::trace::record(rndi_obs::SpanRecord::new(
                &ctx.child(),
                "server",
                "minidns",
                "resolve",
                if result.is_ok() {
                    rndi_obs::SpanOutcome::Ok
                } else {
                    rndi_obs::SpanOutcome::Err
                },
                start.elapsed(),
            ));
        }
        result
    }

    /// Resolve `name`/`rtype` at virtual time `now_ms`.
    pub fn resolve(
        &self,
        name: &DnsName,
        rtype: RecordType,
        now_ms: u64,
    ) -> Result<Vec<ResourceRecord>, ResolveError> {
        // Cache consultation.
        {
            let mut cache = self.cache.lock();
            if let Some(line) = cache.get(&(name.clone(), rtype)) {
                if now_ms < line.expires_at_ms {
                    self.stats.lock().hits += 1;
                    return match &line.records {
                        Some(rrs) => Ok(rrs.clone()),
                        None => Err(ResolveError::NxDomain(name.to_string())),
                    };
                }
                cache.remove(&(name.clone(), rtype));
            }
        }
        self.stats.lock().misses += 1;

        let mut candidates: Vec<AuthServer> = self.roots.clone();
        for _hop in 0..self.max_referrals {
            let Some(server) = candidates.first() else {
                return Err(ResolveError::ServFail(format!(
                    "no reachable nameserver for {name}"
                )));
            };
            self.stats.lock().upstream_queries += 1;
            let resp = server.query(name, rtype);
            match resp.rcode {
                Rcode::NoError if resp.is_referral() => {
                    // Chase the referral through glue.
                    let mut next = Vec::new();
                    for ns in &resp.authority {
                        if let RData::Ns(target) = &ns.rdata {
                            if let Some(s) = self.servers.get(target) {
                                next.push(s.clone());
                            }
                        }
                    }
                    if next.is_empty() {
                        return Err(ResolveError::ServFail(format!(
                            "referral for {name} has no resolvable nameserver"
                        )));
                    }
                    candidates = next;
                }
                Rcode::NoError => {
                    let ttl_ms = resp
                        .answers
                        .iter()
                        .map(|r| r.ttl as u64 * 1000)
                        .min()
                        .unwrap_or(self.negative_ttl_ms);
                    self.cache.lock().insert(
                        (name.clone(), rtype),
                        CacheLine {
                            expires_at_ms: now_ms + ttl_ms,
                            records: Some(resp.answers.clone()),
                        },
                    );
                    return Ok(resp.answers);
                }
                Rcode::NxDomain => {
                    self.cache.lock().insert(
                        (name.clone(), rtype),
                        CacheLine {
                            expires_at_ms: now_ms + self.negative_ttl_ms,
                            records: None,
                        },
                    );
                    return Err(ResolveError::NxDomain(name.to_string()));
                }
                Rcode::Refused | Rcode::ServFail => {
                    return Err(ResolveError::ServFail(format!(
                        "{name}: upstream rcode {:?}",
                        resp.rcode
                    )));
                }
            }
        }
        Err(ResolveError::ServFail(format!(
            "referral depth exceeded resolving {name}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Zone;

    /// Build root → edu → emory.edu delegation with glue.
    fn world() -> Resolver {
        let root = AuthServer::new();
        let mut root_zone = Zone::new(DnsName::root());
        root_zone.insert(ResourceRecord::ns("edu", 3600, "ns.edu-servers.net"));
        root.add_zone(root_zone);

        let edu = AuthServer::new();
        let mut edu_zone = Zone::new(DnsName::parse("edu").unwrap());
        edu_zone.insert(ResourceRecord::ns("emory.edu", 3600, "ns.emory.edu"));
        edu.add_zone(edu_zone);

        let emory = AuthServer::new();
        let mut emory_zone = Zone::new(DnsName::parse("emory.edu").unwrap());
        emory_zone.insert(ResourceRecord::a("www.emory.edu", 60, [170, 140, 0, 2]));
        emory_zone.insert(ResourceRecord::txt(
            "global.emory.edu",
            60,
            "hdns://host2:8085",
        ));
        emory.add_zone(emory_zone);

        let mut r = Resolver::new(vec![root]);
        r.add_glue(DnsName::parse("ns.edu-servers.net").unwrap(), edu);
        r.add_glue(DnsName::parse("ns.emory.edu").unwrap(), emory);
        r
    }

    #[test]
    fn iterative_resolution_chases_referrals() {
        let r = world();
        let rrs = r
            .resolve(&DnsName::parse("www.emory.edu").unwrap(), RecordType::A, 0)
            .unwrap();
        assert_eq!(rrs.len(), 1);
        // Three upstream queries: root → edu → emory.
        assert_eq!(r.stats().upstream_queries, 3);
    }

    #[test]
    fn cache_short_circuits() {
        let r = world();
        let name = DnsName::parse("www.emory.edu").unwrap();
        r.resolve(&name, RecordType::A, 0).unwrap();
        r.resolve(&name, RecordType::A, 1_000).unwrap();
        let stats = r.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.upstream_queries, 3, "second hit went to cache");
    }

    #[test]
    fn cache_expires_by_ttl() {
        let r = world();
        let name = DnsName::parse("www.emory.edu").unwrap();
        r.resolve(&name, RecordType::A, 0).unwrap();
        // TTL is 60s; at 61s the cache line is stale.
        r.resolve(&name, RecordType::A, 61_000).unwrap();
        assert_eq!(r.stats().upstream_queries, 6);
    }

    #[test]
    fn negative_caching() {
        let r = world();
        let name = DnsName::parse("ghost.emory.edu").unwrap();
        assert!(matches!(
            r.resolve(&name, RecordType::A, 0),
            Err(ResolveError::NxDomain(_))
        ));
        let q1 = r.stats().upstream_queries;
        assert!(matches!(
            r.resolve(&name, RecordType::A, 1_000),
            Err(ResolveError::NxDomain(_))
        ));
        assert_eq!(r.stats().upstream_queries, q1, "negative answer cached");
    }

    #[test]
    fn missing_glue_is_servfail() {
        let root = AuthServer::new();
        let mut z = Zone::new(DnsName::root());
        z.insert(ResourceRecord::ns("lost", 60, "ns.lost"));
        root.add_zone(z);
        let r = Resolver::new(vec![root]);
        assert!(matches!(
            r.resolve(&DnsName::parse("x.lost").unwrap(), RecordType::A, 0),
            Err(ResolveError::ServFail(_))
        ));
    }

    #[test]
    fn txt_lookup_for_federation_anchor() {
        let r = world();
        let rrs = r
            .resolve(
                &DnsName::parse("global.emory.edu").unwrap(),
                RecordType::Txt,
                0,
            )
            .unwrap();
        match &rrs[0].rdata {
            RData::Txt(t) => assert_eq!(t, "hdns://host2:8085"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
