//! Binary message codec.
//!
//! A straightforward DNS wire encoding (no label compression): header,
//! question, answer and authority sections. The benchmark cost models use
//! encoded sizes so the simulated network carries realistic byte counts.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::name::DnsName;
use crate::rr::{RData, RecordType, ResourceRecord};
use crate::server::{Rcode, Response};

/// A DNS message (query or response).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    pub id: u16,
    /// Query/response flag.
    pub qr: bool,
    pub aa: bool,
    pub rcode: u8,
    pub question: Option<(DnsName, RecordType)>,
    pub answers: Vec<ResourceRecord>,
    pub authority: Vec<ResourceRecord>,
}

impl Message {
    /// Build a query message.
    pub fn query(id: u16, name: DnsName, rtype: RecordType) -> Message {
        Message {
            id,
            qr: false,
            aa: false,
            rcode: 0,
            question: Some((name, rtype)),
            answers: vec![],
            authority: vec![],
        }
    }

    /// Build the response message for a server [`Response`].
    pub fn response(id: u16, question: (DnsName, RecordType), resp: &Response) -> Message {
        Message {
            id,
            qr: true,
            aa: resp.aa,
            rcode: match resp.rcode {
                Rcode::NoError => 0,
                Rcode::ServFail => 2,
                Rcode::NxDomain => 3,
                Rcode::Refused => 5,
            },
            question: Some(question),
            answers: resp.answers.clone(),
            authority: resp.authority.clone(),
        }
    }

    /// Encode to wire format.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(128);
        b.put_u16(self.id);
        let mut flags: u16 = 0;
        if self.qr {
            flags |= 0x8000;
        }
        if self.aa {
            flags |= 0x0400;
        }
        flags |= self.rcode as u16 & 0x000f;
        b.put_u16(flags);
        b.put_u16(self.question.is_some() as u16);
        b.put_u16(self.answers.len() as u16);
        b.put_u16(self.authority.len() as u16);
        b.put_u16(0); // no additional section
        if let Some((name, rtype)) = &self.question {
            encode_name(&mut b, name);
            b.put_u16(rtype.code());
            b.put_u16(1); // class IN
        }
        for rr in self.answers.iter().chain(&self.authority) {
            encode_rr(&mut b, rr);
        }
        b.freeze()
    }

    /// Decode from wire format.
    pub fn decode(bytes: &[u8]) -> Result<Message, String> {
        let mut b = bytes;
        if b.remaining() < 12 {
            return Err("truncated header".into());
        }
        let id = b.get_u16();
        let flags = b.get_u16();
        let qdcount = b.get_u16();
        let ancount = b.get_u16();
        let nscount = b.get_u16();
        let _arcount = b.get_u16();
        let question = if qdcount > 0 {
            let name = decode_name(&mut b)?;
            if b.remaining() < 4 {
                return Err("truncated question".into());
            }
            let rtype =
                RecordType::from_code(b.get_u16()).ok_or_else(|| "unknown qtype".to_string())?;
            let _class = b.get_u16();
            Some((name, rtype))
        } else {
            None
        };
        let mut answers = Vec::with_capacity(ancount as usize);
        for _ in 0..ancount {
            answers.push(decode_rr(&mut b)?);
        }
        let mut authority = Vec::with_capacity(nscount as usize);
        for _ in 0..nscount {
            authority.push(decode_rr(&mut b)?);
        }
        Ok(Message {
            id,
            qr: flags & 0x8000 != 0,
            aa: flags & 0x0400 != 0,
            rcode: (flags & 0x000f) as u8,
            question,
            answers,
            authority,
        })
    }

    /// Encoded size in bytes (for cost models).
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

fn encode_name(b: &mut BytesMut, name: &DnsName) {
    for label in name.labels() {
        b.put_u8(label.len() as u8);
        b.put_slice(label.as_bytes());
    }
    b.put_u8(0);
}

fn decode_name(b: &mut &[u8]) -> Result<DnsName, String> {
    let mut labels = Vec::new();
    loop {
        if !b.has_remaining() {
            return Err("truncated name".into());
        }
        let len = b.get_u8() as usize;
        if len == 0 {
            break;
        }
        if b.remaining() < len {
            return Err("truncated label".into());
        }
        let raw = &b.chunk()[..len];
        let label = std::str::from_utf8(raw)
            .map_err(|_| "non-utf8 label".to_string())?
            .to_string();
        b.advance(len);
        labels.push(label);
    }
    Ok(DnsName::from_labels(labels))
}

fn encode_rr(b: &mut BytesMut, rr: &ResourceRecord) {
    encode_name(b, &rr.name);
    b.put_u16(rr.rtype().code());
    b.put_u16(1); // class IN
    b.put_u32(rr.ttl);
    let mut rdata = BytesMut::new();
    match &rr.rdata {
        RData::A(ip) => rdata.put_slice(&ip.octets()),
        RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => encode_name(&mut rdata, n),
        RData::Txt(t) => {
            // One character-string per 255-byte chunk.
            for chunk in t.as_bytes().chunks(255) {
                rdata.put_u8(chunk.len() as u8);
                rdata.put_slice(chunk);
            }
        }
        RData::Srv {
            priority,
            weight,
            port,
            target,
        } => {
            rdata.put_u16(*priority);
            rdata.put_u16(*weight);
            rdata.put_u16(*port);
            encode_name(&mut rdata, target);
        }
        RData::Soa {
            mname,
            rname,
            serial,
            refresh,
            retry,
            expire,
            minimum,
        } => {
            encode_name(&mut rdata, mname);
            encode_name(&mut rdata, rname);
            rdata.put_u32(*serial);
            rdata.put_u32(*refresh);
            rdata.put_u32(*retry);
            rdata.put_u32(*expire);
            rdata.put_u32(*minimum);
        }
    }
    b.put_u16(rdata.len() as u16);
    b.put_slice(&rdata);
}

fn decode_rr(b: &mut &[u8]) -> Result<ResourceRecord, String> {
    let name = decode_name(b)?;
    if b.remaining() < 10 {
        return Err("truncated rr header".into());
    }
    let rtype = RecordType::from_code(b.get_u16()).ok_or_else(|| "unknown rtype".to_string())?;
    let _class = b.get_u16();
    let ttl = b.get_u32();
    let rdlen = b.get_u16() as usize;
    if b.remaining() < rdlen {
        return Err("truncated rdata".into());
    }
    let mut rdata_slice = &b.chunk()[..rdlen];
    let rdata = match rtype {
        RecordType::A => {
            if rdata_slice.len() != 4 {
                return Err("bad A rdata".into());
            }
            RData::A(std::net::Ipv4Addr::new(
                rdata_slice[0],
                rdata_slice[1],
                rdata_slice[2],
                rdata_slice[3],
            ))
        }
        RecordType::Ns => RData::Ns(decode_name(&mut rdata_slice)?),
        RecordType::Cname => RData::Cname(decode_name(&mut rdata_slice)?),
        RecordType::Ptr => RData::Ptr(decode_name(&mut rdata_slice)?),
        RecordType::Txt => {
            let mut text = String::new();
            while rdata_slice.has_remaining() {
                let len = rdata_slice.get_u8() as usize;
                if rdata_slice.remaining() < len {
                    return Err("bad TXT chunk".into());
                }
                text.push_str(
                    std::str::from_utf8(&rdata_slice.chunk()[..len])
                        .map_err(|_| "non-utf8 TXT".to_string())?,
                );
                rdata_slice.advance(len);
            }
            RData::Txt(text)
        }
        RecordType::Srv => {
            if rdata_slice.remaining() < 6 {
                return Err("bad SRV rdata".into());
            }
            let priority = rdata_slice.get_u16();
            let weight = rdata_slice.get_u16();
            let port = rdata_slice.get_u16();
            let target = decode_name(&mut rdata_slice)?;
            RData::Srv {
                priority,
                weight,
                port,
                target,
            }
        }
        RecordType::Soa => {
            let mname = decode_name(&mut rdata_slice)?;
            let rname = decode_name(&mut rdata_slice)?;
            if rdata_slice.remaining() < 20 {
                return Err("bad SOA rdata".into());
            }
            RData::Soa {
                mname,
                rname,
                serial: rdata_slice.get_u32(),
                refresh: rdata_slice.get_u32(),
                retry: rdata_slice.get_u32(),
                expire: rdata_slice.get_u32(),
                minimum: rdata_slice.get_u32(),
            }
        }
    };
    b.advance(rdlen);
    Ok(ResourceRecord { name, ttl, rdata })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let m = Message::query(
            0x1234,
            DnsName::parse("www.emory.edu").unwrap(),
            RecordType::A,
        );
        let bytes = m.encode();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back, m);
        assert!(!back.qr);
    }

    #[test]
    fn response_roundtrip_all_rdata_kinds() {
        let answers = vec![
            ResourceRecord::a("a.x", 60, [1, 2, 3, 4]),
            ResourceRecord::ns("b.x", 60, "ns.b.x"),
            ResourceRecord::cname("c.x", 60, "a.x"),
            ResourceRecord::txt("d.x", 60, "hdns://host2:8085/path"),
            ResourceRecord::srv("_s._tcp.x", 60, 1, 2, 8085, "host2.x"),
            ResourceRecord::new(
                DnsName::parse("x").unwrap(),
                60,
                RData::Soa {
                    mname: DnsName::parse("ns.x").unwrap(),
                    rname: DnsName::parse("admin.x").unwrap(),
                    serial: 2026070501,
                    refresh: 3600,
                    retry: 600,
                    expire: 86400,
                    minimum: 60,
                },
            ),
            ResourceRecord::new(
                DnsName::parse("4.3.2.1.in-addr.arpa").unwrap(),
                60,
                RData::Ptr(DnsName::parse("a.x").unwrap()),
            ),
        ];
        let resp = Response {
            rcode: Rcode::NoError,
            aa: true,
            answers,
            authority: vec![ResourceRecord::ns("x", 60, "ns.x")],
        };
        let m = Message::response(7, (DnsName::parse("a.x").unwrap(), RecordType::A), &resp);
        let bytes = m.encode();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back, m);
        assert!(back.aa && back.qr);
        assert_eq!(back.answers.len(), 7);
        assert_eq!(back.authority.len(), 1);
    }

    #[test]
    fn long_txt_chunks() {
        let text = "z".repeat(600);
        let rr = ResourceRecord::txt("t.x", 60, text.clone());
        let resp = Response {
            rcode: Rcode::NoError,
            aa: true,
            answers: vec![rr],
            authority: vec![],
        };
        let m = Message::response(1, (DnsName::parse("t.x").unwrap(), RecordType::Txt), &resp);
        let back = Message::decode(&m.encode()).unwrap();
        match &back.answers[0].rdata {
            RData::Txt(t) => assert_eq!(*t, text),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let m = Message::query(1, DnsName::parse("a.b").unwrap(), RecordType::A);
        let bytes = m.encode();
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wire_size_is_positive_and_sane() {
        let m = Message::query(1, DnsName::parse("www.emory.edu").unwrap(), RecordType::A);
        let s = m.wire_size();
        assert!((12..100).contains(&s), "query size {s}");
    }
}
