//! The authoritative server: hosts zones, answers queries.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::name::DnsName;
use crate::rr::{RecordType, ResourceRecord};
use crate::zone::{Zone, ZoneAnswer};

/// Response codes (subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rcode {
    NoError = 0,
    ServFail = 2,
    NxDomain = 3,
    Refused = 5,
}

/// A query response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    pub rcode: Rcode,
    /// Authoritative answer flag.
    pub aa: bool,
    pub answers: Vec<ResourceRecord>,
    /// Referral NS records, when the name is delegated away.
    pub authority: Vec<ResourceRecord>,
}

impl Response {
    pub fn is_referral(&self) -> bool {
        self.rcode == Rcode::NoError && self.answers.is_empty() && !self.authority.is_empty()
    }
}

/// Counters for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DnsStats {
    pub queries: u64,
    pub referrals: u64,
    pub nxdomain: u64,
}

struct Inner {
    zones: Vec<Zone>,
    stats: DnsStats,
}

/// An authoritative DNS server (cheaply cloneable handle).
#[derive(Clone)]
pub struct AuthServer {
    inner: Arc<RwLock<Inner>>,
}

impl Default for AuthServer {
    fn default() -> Self {
        Self::new()
    }
}

impl AuthServer {
    pub fn new() -> Self {
        AuthServer {
            inner: Arc::new(RwLock::new(Inner {
                zones: Vec::new(),
                stats: DnsStats::default(),
            })),
        }
    }

    /// Load (or replace) a zone.
    pub fn add_zone(&self, zone: Zone) {
        let mut inner = self.inner.write();
        inner.zones.retain(|z| z.origin() != zone.origin());
        inner.zones.push(zone);
    }

    /// Mutate a hosted zone in place (operator-side updates — DNS offers
    /// no client-side update path, which is exactly the limitation the
    /// paper works around by layering HDNS below it).
    pub fn with_zone_mut<R>(&self, origin: &DnsName, f: impl FnOnce(&mut Zone) -> R) -> Option<R> {
        let mut inner = self.inner.write();
        inner.zones.iter_mut().find(|z| z.origin() == origin).map(f)
    }

    /// Answer a query.
    pub fn query(&self, name: &DnsName, rtype: RecordType) -> Response {
        let mut inner = self.inner.write();
        inner.stats.queries += 1;
        // Pick the zone with the longest origin that covers the name.
        let zone = inner
            .zones
            .iter()
            .filter(|z| name.is_under(z.origin()))
            .max_by_key(|z| z.origin().label_count());
        let Some(zone) = zone else {
            return Response {
                rcode: Rcode::Refused,
                aa: false,
                answers: vec![],
                authority: vec![],
            };
        };
        match zone.query(name, rtype) {
            ZoneAnswer::Records(answers) => Response {
                rcode: Rcode::NoError,
                aa: true,
                answers,
                authority: vec![],
            },
            ZoneAnswer::Referral(ns) => {
                inner.stats.referrals += 1;
                Response {
                    rcode: Rcode::NoError,
                    aa: false,
                    answers: vec![],
                    authority: ns,
                }
            }
            ZoneAnswer::Cname { chain, answers } => {
                let mut all = chain;
                all.extend(answers);
                Response {
                    rcode: Rcode::NoError,
                    aa: true,
                    answers: all,
                    authority: vec![],
                }
            }
            ZoneAnswer::NxDomain => {
                inner.stats.nxdomain += 1;
                Response {
                    rcode: Rcode::NxDomain,
                    aa: true,
                    answers: vec![],
                    authority: vec![],
                }
            }
        }
    }

    pub fn stats(&self) -> DnsStats {
        self.inner.read().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> AuthServer {
        let s = AuthServer::new();
        let mut z = Zone::new(DnsName::parse("edu").unwrap());
        z.insert(ResourceRecord::a("emory.edu", 300, [170, 140, 0, 1]));
        z.insert(ResourceRecord::ns("gatech.edu", 300, "ns.gatech.edu"));
        s.add_zone(z);
        let mut z2 = Zone::new(DnsName::parse("emory.edu").unwrap());
        z2.insert(ResourceRecord::a("www.emory.edu", 60, [170, 140, 0, 2]));
        s.add_zone(z2);
        s
    }

    #[test]
    fn longest_zone_wins() {
        let s = server();
        // www.emory.edu lives in the more specific emory.edu zone.
        let r = s.query(&DnsName::parse("www.emory.edu").unwrap(), RecordType::A);
        assert_eq!(r.rcode, Rcode::NoError);
        assert!(r.aa);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn referral_and_refused() {
        let s = server();
        let r = s.query(&DnsName::parse("x.gatech.edu").unwrap(), RecordType::A);
        assert!(r.is_referral());
        assert_eq!(s.stats().referrals, 1);

        let r = s.query(&DnsName::parse("example.org").unwrap(), RecordType::A);
        assert_eq!(r.rcode, Rcode::Refused);
    }

    #[test]
    fn nxdomain_counted() {
        let s = server();
        let r = s.query(&DnsName::parse("nothere.emory.edu").unwrap(), RecordType::A);
        assert_eq!(r.rcode, Rcode::NxDomain);
        assert_eq!(s.stats().nxdomain, 1);
    }

    #[test]
    fn operator_side_zone_update() {
        let s = server();
        s.with_zone_mut(&DnsName::parse("emory.edu").unwrap(), |z| {
            z.insert(ResourceRecord::txt("svc.emory.edu", 60, "hdns://host2"));
        })
        .unwrap();
        let r = s.query(&DnsName::parse("svc.emory.edu").unwrap(), RecordType::Txt);
        assert_eq!(r.answers.len(), 1);
        assert!(s
            .with_zone_mut(&DnsName::parse("nope.org").unwrap(), |_| ())
            .is_none());
    }
}
