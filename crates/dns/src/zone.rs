//! Authoritative zones.
//!
//! A zone holds records for names at or under its origin, with delegation:
//! NS records at an interior name (other than the origin) cut the zone, and
//! queries at or below the cut yield referrals instead of answers.

use std::collections::BTreeMap;

use crate::name::DnsName;
use crate::rr::{RData, RecordType, ResourceRecord};

/// The answer a zone gives for a name/type query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ZoneAnswer {
    /// Authoritative records (possibly empty for a name that exists with
    /// other types — a NODATA answer).
    Records(Vec<ResourceRecord>),
    /// The name lies below a delegation; here are the NS records to chase.
    Referral(Vec<ResourceRecord>),
    /// The queried name follows a CNAME; the alias chain is returned along
    /// with records of the requested type at the target when the target is
    /// in-zone.
    Cname {
        chain: Vec<ResourceRecord>,
        answers: Vec<ResourceRecord>,
    },
    /// The name does not exist in this zone.
    NxDomain,
}

/// One authoritative zone.
#[derive(Clone, Debug)]
pub struct Zone {
    origin: DnsName,
    /// name → records at that name.
    records: BTreeMap<String, Vec<ResourceRecord>>,
}

impl Zone {
    pub fn new(origin: DnsName) -> Self {
        Zone {
            origin,
            records: BTreeMap::new(),
        }
    }

    pub fn origin(&self) -> &DnsName {
        &self.origin
    }

    /// Insert a record. Panics when the record's name is outside the zone —
    /// zone files are operator-authored, so this is a programming error.
    pub fn insert(&mut self, rr: ResourceRecord) {
        assert!(
            rr.name.is_under(&self.origin),
            "record {} outside zone {}",
            rr.name,
            self.origin
        );
        self.records
            .entry(rr.name.to_string())
            .or_default()
            .push(rr);
    }

    /// Remove every record of a given type at a name; returns the removed
    /// count (used by zone maintenance tooling).
    pub fn remove(&mut self, name: &DnsName, rtype: RecordType) -> usize {
        let key = name.to_string();
        let Some(list) = self.records.get_mut(&key) else {
            return 0;
        };
        let before = list.len();
        list.retain(|r| r.rtype() != rtype);
        let removed = before - list.len();
        if list.is_empty() {
            self.records.remove(&key);
        }
        removed
    }

    /// Total record count.
    pub fn len(&self) -> usize {
        self.records.values().map(|v| v.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Find the closest delegation cut strictly between the origin and
    /// `name` (inclusive of `name` itself).
    fn delegation_for(&self, name: &DnsName) -> Option<Vec<ResourceRecord>> {
        // Walk from just below the origin down towards the name.
        for depth in (self.origin.label_count() + 1)..=name.label_count() {
            let candidate = name.suffix(depth);
            if candidate == self.origin {
                continue;
            }
            if let Some(rrs) = self.records.get(&candidate.to_string()) {
                let ns: Vec<ResourceRecord> = rrs
                    .iter()
                    .filter(|r| r.rtype() == RecordType::Ns)
                    .cloned()
                    .collect();
                if !ns.is_empty() && candidate != *name {
                    return Some(ns);
                }
                // NS at the queried name itself is also a referral unless
                // the query asks for NS explicitly — handled by the caller.
                if !ns.is_empty() && candidate == *name {
                    return Some(ns);
                }
            }
        }
        None
    }

    /// Answer a query authoritatively.
    pub fn query(&self, name: &DnsName, rtype: RecordType) -> ZoneAnswer {
        if !name.is_under(&self.origin) {
            return ZoneAnswer::NxDomain;
        }
        // Delegation check first (except NS queries at the cut itself,
        // which this simplified server also treats as referral — resolvers
        // handle both identically).
        if let Some(ns) = self.delegation_for(name) {
            let cut_is_name = ns[0].name == *name;
            if !(cut_is_name && rtype == RecordType::Ns) {
                return ZoneAnswer::Referral(ns);
            }
        }
        let Some(rrs) = self.records.get(&name.to_string()) else {
            return ZoneAnswer::NxDomain;
        };
        // CNAME handling: if the name has a CNAME and the query is not for
        // CNAME itself, follow the chain within the zone.
        let cname = rrs.iter().find(|r| r.rtype() == RecordType::Cname);
        if let (Some(cname_rr), false) = (cname, rtype == RecordType::Cname) {
            let mut chain = vec![cname_rr.clone()];
            let mut target = match &cname_rr.rdata {
                RData::Cname(t) => t.clone(),
                _ => unreachable!("filtered on type"),
            };
            let mut answers = Vec::new();
            for _ in 0..8 {
                if let Some(rrs) = self.records.get(&target.to_string()) {
                    if let Some(next) = rrs.iter().find(|r| r.rtype() == RecordType::Cname) {
                        chain.push(next.clone());
                        target = match &next.rdata {
                            RData::Cname(t) => t.clone(),
                            _ => unreachable!("filtered on type"),
                        };
                        continue;
                    }
                    answers = rrs.iter().filter(|r| r.rtype() == rtype).cloned().collect();
                }
                break;
            }
            return ZoneAnswer::Cname { chain, answers };
        }
        ZoneAnswer::Records(rrs.iter().filter(|r| r.rtype() == rtype).cloned().collect())
    }

    /// Iterate all records (zone transfer / diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &ResourceRecord> {
        self.records.values().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone() -> Zone {
        let mut z = Zone::new(DnsName::parse("emory.edu").unwrap());
        z.insert(ResourceRecord::a("emory.edu", 300, [170, 140, 0, 1]));
        z.insert(ResourceRecord::a("www.emory.edu", 300, [170, 140, 0, 2]));
        z.insert(ResourceRecord::txt("www.emory.edu", 300, "hello"));
        z.insert(ResourceRecord::cname("web.emory.edu", 300, "www.emory.edu"));
        // Delegate mathcs.emory.edu to its own server.
        z.insert(ResourceRecord::ns(
            "mathcs.emory.edu",
            300,
            "ns.mathcs.emory.edu",
        ));
        z
    }

    #[test]
    fn exact_answers() {
        let z = zone();
        match z.query(&DnsName::parse("www.emory.edu").unwrap(), RecordType::A) {
            ZoneAnswer::Records(rrs) => assert_eq!(rrs.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nodata_vs_nxdomain() {
        let z = zone();
        match z.query(&DnsName::parse("www.emory.edu").unwrap(), RecordType::Srv) {
            ZoneAnswer::Records(rrs) => assert!(rrs.is_empty(), "NODATA is empty Records"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            z.query(&DnsName::parse("ghost.emory.edu").unwrap(), RecordType::A),
            ZoneAnswer::NxDomain
        );
        assert_eq!(
            z.query(&DnsName::parse("other.org").unwrap(), RecordType::A),
            ZoneAnswer::NxDomain
        );
    }

    #[test]
    fn referral_below_delegation() {
        let z = zone();
        let q = DnsName::parse("dcl.mathcs.emory.edu").unwrap();
        match z.query(&q, RecordType::A) {
            ZoneAnswer::Referral(ns) => {
                assert_eq!(ns.len(), 1);
                assert_eq!(ns[0].name, DnsName::parse("mathcs.emory.edu").unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
        // At the cut itself for A: also referral.
        match z.query(&DnsName::parse("mathcs.emory.edu").unwrap(), RecordType::A) {
            ZoneAnswer::Referral(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cname_followed_in_zone() {
        let z = zone();
        match z.query(&DnsName::parse("web.emory.edu").unwrap(), RecordType::A) {
            ZoneAnswer::Cname { chain, answers } => {
                assert_eq!(chain.len(), 1);
                assert_eq!(answers.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Asking for the CNAME itself returns the CNAME record.
        match z.query(&DnsName::parse("web.emory.edu").unwrap(), RecordType::Cname) {
            ZoneAnswer::Records(rrs) => assert_eq!(rrs.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn remove_records() {
        let mut z = zone();
        let n = DnsName::parse("www.emory.edu").unwrap();
        assert_eq!(z.remove(&n, RecordType::A), 1);
        assert_eq!(z.remove(&n, RecordType::A), 0);
        match z.query(&n, RecordType::Txt) {
            ZoneAnswer::Records(rrs) => assert_eq!(rrs.len(), 1, "TXT survives"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn insert_outside_zone_panics() {
        let mut z = Zone::new(DnsName::parse("emory.edu").unwrap());
        z.insert(ResourceRecord::a("gatech.edu", 300, [1, 2, 3, 4]));
    }
}
