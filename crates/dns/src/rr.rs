//! Resource records.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::name::DnsName;

/// Record types (the subset the workspace uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordType {
    A,
    Ns,
    Cname,
    Soa,
    Ptr,
    Txt,
    Srv,
}

impl RecordType {
    /// Protocol number.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Txt => 16,
            RecordType::Srv => 33,
        }
    }

    pub fn from_code(code: u16) -> Option<RecordType> {
        Some(match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            16 => RecordType::Txt,
            33 => RecordType::Srv,
            _ => return None,
        })
    }
}

/// Typed record data.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RData {
    A(Ipv4Addr),
    Ns(DnsName),
    Cname(DnsName),
    Soa {
        mname: DnsName,
        rname: DnsName,
        serial: u32,
        refresh: u32,
        retry: u32,
        expire: u32,
        minimum: u32,
    },
    Ptr(DnsName),
    Txt(String),
    Srv {
        priority: u16,
        weight: u16,
        port: u16,
        target: DnsName,
    },
}

impl RData {
    pub fn record_type(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Soa { .. } => RecordType::Soa,
            RData::Ptr(_) => RecordType::Ptr,
            RData::Txt(_) => RecordType::Txt,
            RData::Srv { .. } => RecordType::Srv,
        }
    }
}

/// A resource record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRecord {
    pub name: DnsName,
    pub ttl: u32,
    pub rdata: RData,
}

impl ResourceRecord {
    pub fn new(name: DnsName, ttl: u32, rdata: RData) -> Self {
        ResourceRecord { name, ttl, rdata }
    }

    pub fn rtype(&self) -> RecordType {
        self.rdata.record_type()
    }

    /// Convenience constructors for the common cases.
    pub fn a(name: &str, ttl: u32, addr: [u8; 4]) -> Self {
        ResourceRecord::new(
            DnsName::parse(name).expect("valid name literal"),
            ttl,
            RData::A(Ipv4Addr::from(addr)),
        )
    }

    pub fn txt(name: &str, ttl: u32, text: impl Into<String>) -> Self {
        ResourceRecord::new(
            DnsName::parse(name).expect("valid name literal"),
            ttl,
            RData::Txt(text.into()),
        )
    }

    pub fn ns(name: &str, ttl: u32, target: &str) -> Self {
        ResourceRecord::new(
            DnsName::parse(name).expect("valid name literal"),
            ttl,
            RData::Ns(DnsName::parse(target).expect("valid target literal")),
        )
    }

    pub fn cname(name: &str, ttl: u32, target: &str) -> Self {
        ResourceRecord::new(
            DnsName::parse(name).expect("valid name literal"),
            ttl,
            RData::Cname(DnsName::parse(target).expect("valid target literal")),
        )
    }

    pub fn srv(name: &str, ttl: u32, priority: u16, weight: u16, port: u16, target: &str) -> Self {
        ResourceRecord::new(
            DnsName::parse(name).expect("valid name literal"),
            ttl,
            RData::Srv {
                priority,
                weight,
                port,
                target: DnsName::parse(target).expect("valid target literal"),
            },
        )
    }
}

impl fmt::Display for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ", self.name, self.ttl)?;
        match &self.rdata {
            RData::A(ip) => write!(f, "A {ip}"),
            RData::Ns(n) => write!(f, "NS {n}"),
            RData::Cname(n) => write!(f, "CNAME {n}"),
            RData::Soa { mname, serial, .. } => write!(f, "SOA {mname} serial={serial}"),
            RData::Ptr(n) => write!(f, "PTR {n}"),
            RData::Txt(t) => write!(f, "TXT {t:?}"),
            RData::Srv {
                priority,
                weight,
                port,
                target,
            } => write!(f, "SRV {priority} {weight} {port} {target}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_roundtrip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Ptr,
            RecordType::Txt,
            RecordType::Srv,
        ] {
            assert_eq!(RecordType::from_code(t.code()), Some(t));
        }
        assert_eq!(RecordType::from_code(999), None);
    }

    #[test]
    fn constructors_and_display() {
        let rr = ResourceRecord::a("www.emory.edu", 300, [170, 140, 1, 1]);
        assert_eq!(rr.rtype(), RecordType::A);
        assert!(rr.to_string().contains("170.140.1.1"));

        let rr = ResourceRecord::srv("_hdns._tcp.global", 60, 0, 5, 8085, "host2.emory.edu");
        assert_eq!(rr.rtype(), RecordType::Srv);
        assert!(rr.to_string().contains("8085"));
    }

    #[test]
    fn rdata_type_is_consistent() {
        let rr = ResourceRecord::txt("x.y", 60, "hdns://host2");
        assert_eq!(rr.rdata.record_type(), RecordType::Txt);
    }
}
