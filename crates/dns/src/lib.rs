//! # minidns — a simplified authoritative DNS server and caching resolver
//!
//! The Bind analogue in the paper's evaluation: a naming service that
//! "scales world-wide but is specialized, lacks strong consistency, and has
//! limited query capabilities … suitable for managing simple textual data
//! collections for which updates are rare". The federation design anchors
//! the whole hierarchy in DNS: `dns://global/emory/mathcs/dcl/mokey` first
//! asks DNS for the nearest HDNS node of the `global` federation.
//!
//! * [`name::DnsName`] — case-insensitive dotted labels.
//! * [`rr`] — resource records (A, NS, CNAME, TXT, SRV, PTR).
//! * [`zone::Zone`] — authoritative data with delegation (NS referral) and
//!   CNAME handling.
//! * [`server::AuthServer`] — hosts zones, answers queries with proper
//!   rcodes/referrals.
//! * [`resolver::Resolver`] — iterative resolution from root hints with a
//!   TTL cache.
//! * [`wire`] — a binary message codec (no name compression), used for
//!   size accounting in the cost models.

pub mod name;
pub mod resolver;
pub mod rr;
pub mod server;
pub mod wire;
pub mod zone;

pub use name::DnsName;
pub use resolver::{ResolveError, Resolver};
pub use rr::{RData, RecordType, ResourceRecord};
pub use server::{AuthServer, Rcode, Response};
pub use zone::Zone;
