//! Property tests: wire-codec robustness and name algebra.

use proptest::prelude::*;

use minidns::wire::Message;
use minidns::{DnsName, RData, RecordType, ResourceRecord};

fn name_strategy() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec("[a-z0-9]{1,10}", 0..5).prop_map(DnsName::from_labels)
}

fn rdata_strategy() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        name_strategy().prop_map(RData::Ns),
        name_strategy().prop_map(RData::Cname),
        name_strategy().prop_map(RData::Ptr),
        "[ -~]{0,300}".prop_map(RData::Txt),
        (any::<u16>(), any::<u16>(), any::<u16>(), name_strategy()).prop_map(
            |(priority, weight, port, target)| RData::Srv {
                priority,
                weight,
                port,
                target,
            }
        ),
    ]
}

fn rr_strategy() -> impl Strategy<Value = ResourceRecord> {
    (name_strategy(), any::<u32>(), rdata_strategy())
        .prop_map(|(name, ttl, rdata)| ResourceRecord { name, ttl, rdata })
}

proptest! {
    /// Encode/decode roundtrip for arbitrary well-formed messages.
    #[test]
    fn wire_roundtrip(
        id in any::<u16>(),
        qr in any::<bool>(),
        aa in any::<bool>(),
        rcode in 0u8..16,
        qname in name_strategy(),
        answers in proptest::collection::vec(rr_strategy(), 0..6),
        authority in proptest::collection::vec(rr_strategy(), 0..3),
    ) {
        let msg = Message {
            id,
            qr,
            aa,
            rcode,
            question: Some((qname, RecordType::Txt)),
            answers,
            authority,
        };
        let bytes = msg.encode();
        let back = Message::decode(&bytes).expect("well-formed messages decode");
        prop_assert_eq!(back, msg);
    }

    /// The decoder never panics on arbitrary bytes (it may error).
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Message::decode(&bytes);
    }

    /// Truncating a valid message never panics and (almost) always errors.
    #[test]
    fn truncation_is_detected(
        qname in name_strategy(),
        answers in proptest::collection::vec(rr_strategy(), 0..4),
        cut_fraction in 0.0f64..1.0,
    ) {
        let msg = Message {
            id: 7,
            qr: true,
            aa: true,
            rcode: 0,
            question: Some((qname, RecordType::A)),
            answers,
            authority: vec![],
        };
        let bytes = msg.encode();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        let _ = Message::decode(&bytes[..cut]); // must not panic
    }

    /// Name algebra: child/parent inverses and suffix transitivity.
    #[test]
    fn name_algebra(name in name_strategy(), label in "[a-z0-9]{1,8}") {
        let child = name.child(&label);
        let parent = child.parent();
        prop_assert_eq!(parent.as_ref(), Some(&name));
        prop_assert!(child.is_under(&name));
        prop_assert!(name.is_under(&DnsName::root()));
        // suffix(k) is a suffix relation.
        for k in 0..=name.label_count() {
            prop_assert!(name.is_under(&name.suffix(k)));
        }
    }

    /// Display/parse roundtrip for arbitrary names.
    #[test]
    fn name_roundtrip(name in name_strategy()) {
        prop_assert_eq!(DnsName::parse(&name.to_string()).unwrap(), name);
    }
}
