//! One HDNS replica.

use std::collections::HashMap;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use groupcast::{Addr, ChannelEvent, GroupChannel, SendError, View};

use crate::store::{HdnsEntry, HdnsError, HdnsStore, Op};

/// The group-communication surface one replica needs: the
/// [`GroupChannel`] subset `HdnsNode` actually calls, as a trait so the
/// same replica logic (proposals, tickets, state transfer, persistence)
/// runs over the deterministic in-process cluster *or* a real TCP
/// membership plane (`rndi-cluster`).
pub trait ReplicaChannel {
    /// This member's group address.
    fn addr(&self) -> Addr;
    /// Join the named group.
    fn connect(&self, group: &str) -> Result<(), SendError>;
    /// Leave the group.
    fn disconnect(&self);
    /// Multicast to the group under the stack's ordering discipline.
    fn mcast(&self, bytes: Vec<u8>) -> Result<(), SendError>;
    /// Drain pending channel events.
    fn poll(&self) -> Vec<ChannelEvent>;
    /// Answer a [`ChannelEvent::StateRequest`].
    fn provide_state(&self, to: Addr, bytes: Vec<u8>) -> Result<(), SendError>;
}

impl ReplicaChannel for GroupChannel {
    fn addr(&self) -> Addr {
        GroupChannel::addr(self)
    }
    fn connect(&self, group: &str) -> Result<(), SendError> {
        GroupChannel::connect(self, group)
    }
    fn disconnect(&self) {
        GroupChannel::disconnect(self)
    }
    fn mcast(&self, bytes: Vec<u8>) -> Result<(), SendError> {
        GroupChannel::mcast(self, bytes)
    }
    fn poll(&self) -> Vec<ChannelEvent> {
        GroupChannel::poll(self)
    }
    fn provide_state(&self, to: Addr, bytes: Vec<u8>) -> Result<(), SendError> {
        GroupChannel::provide_state(self, to, bytes)
    }
}

/// Identifies a submitted write; resolved once the replica delivers (and
/// applies) its own operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ticket(pub u64);

/// The fate of a submitted operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// Not yet delivered back to the submitter.
    Pending,
    /// Applied; this is the deterministic result every replica computed.
    Done(Result<(), HdnsError>),
    /// The replica died before the op resolved.
    Lost,
}

/// Change notifications a replica emits as it applies operations — the
/// substrate for the JNDI provider's event support.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HdnsEvent {
    Bound {
        path: String,
    },
    Changed {
        path: String,
    },
    Removed {
        path: String,
    },
    Renamed {
        from: String,
        to: String,
    },
    /// State was replaced wholesale (join or post-partition resync).
    Resynced,
}

/// A proposal multicast to the group.
#[derive(Serialize, Deserialize)]
struct Proposal {
    op_id: u64,
    op: Op,
}

/// One replica of the naming service, generic over how its group
/// messages travel (defaults to the in-process [`GroupChannel`]).
pub struct HdnsNode<C: ReplicaChannel = GroupChannel> {
    channel: C,
    store: HdnsStore,
    view: Option<View>,
    next_op: u64,
    tickets: HashMap<u64, OpOutcome>,
    events: Vec<HdnsEvent>,
    data_path: Option<PathBuf>,
    /// Snapshot to disk every N applied ops (paper: "synchronized in fixed
    /// time intervals and upon process exit").
    snapshot_every: u64,
    ops_since_snapshot: u64,
    alive: bool,
}

impl<C: ReplicaChannel> HdnsNode<C> {
    /// Create a replica on `channel`. When `data_path` exists on disk, the
    /// store is recovered from the snapshot (cold-start recovery: "the
    /// service can thus recover the state after a complete
    /// shutdown/restart").
    pub fn new(channel: C, data_path: Option<PathBuf>) -> HdnsNode<C> {
        let store = data_path
            .as_ref()
            .and_then(|p| std::fs::read(p).ok())
            .and_then(|bytes| HdnsStore::restore(&bytes).ok())
            .unwrap_or_default();
        HdnsNode {
            channel,
            store,
            view: None,
            next_op: 0,
            tickets: HashMap::new(),
            events: Vec::new(),
            data_path,
            snapshot_every: 64,
            ops_since_snapshot: 0,
            alive: true,
        }
    }

    /// This replica's group address.
    pub fn addr(&self) -> Addr {
        self.channel.addr()
    }

    /// Join the named group.
    pub fn connect(&self, group: &str) -> Result<(), SendError> {
        self.channel.connect(group)
    }

    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// The currently installed membership view.
    pub fn view(&self) -> Option<&View> {
        self.view.as_ref()
    }

    /// Replica-local read: any node serves lookups without communication
    /// ("read requests can be handled entirely by any of the nodes").
    pub fn lookup(&self, path: &str) -> Option<HdnsEntry> {
        self.store.get(path).cloned()
    }

    /// Replica-local listing of direct children.
    pub fn list(&self, prefix: &str) -> Vec<(String, HdnsEntry)> {
        self.store
            .list(prefix)
            .into_iter()
            .map(|(n, e)| (n, e.clone()))
            .collect()
    }

    /// Entries currently stored.
    pub fn entry_count(&self) -> usize {
        self.store.len()
    }

    /// Serialized store state — replica-convergence checks and backups.
    pub fn store_snapshot(&self) -> Vec<u8> {
        self.store.snapshot()
    }

    /// Submit a write: multicast to the group. Resolution arrives via
    /// [`HdnsNode::outcome`] after the realm drives message processing.
    pub fn submit(&mut self, op: Op) -> Result<Ticket, SendError> {
        let op_id = self.next_op;
        self.next_op += 1;
        let proposal = Proposal { op_id, op };
        let bytes = serde_json::to_vec(&proposal).expect("ops serialize");
        self.channel.mcast(bytes)?;
        self.tickets.insert(op_id, OpOutcome::Pending);
        Ok(Ticket(op_id))
    }

    /// Check (and consume, when resolved) a ticket's outcome.
    pub fn outcome(&mut self, ticket: Ticket) -> OpOutcome {
        match self.tickets.get(&ticket.0) {
            Some(OpOutcome::Pending) => OpOutcome::Pending,
            Some(_) => self.tickets.remove(&ticket.0).expect("present"),
            None => OpOutcome::Lost,
        }
    }

    /// Drain accumulated change events.
    pub fn take_events(&mut self) -> Vec<HdnsEvent> {
        std::mem::take(&mut self.events)
    }

    /// Process pending channel events: apply delivered ops, answer state
    /// requests, install state. Call after each cluster pump.
    pub fn process(&mut self) {
        for ev in self.channel.poll() {
            match ev {
                ChannelEvent::Message { from, bytes } => {
                    let Ok(p) = serde_json::from_slice::<Proposal>(&bytes) else {
                        continue;
                    };
                    let existed = match &p.op {
                        Op::Bind { path, .. } => self.store.get(path).is_some(),
                        _ => false,
                    };
                    let result = self.store.apply(&p.op);
                    if result.is_ok() {
                        self.emit(&p.op, existed);
                        self.ops_since_snapshot += 1;
                        if self.ops_since_snapshot >= self.snapshot_every {
                            self.persist();
                        }
                    }
                    if from == self.channel.addr() {
                        self.tickets.insert(p.op_id, OpOutcome::Done(result));
                    }
                }
                ChannelEvent::View(v) => {
                    self.view = Some(v);
                }
                ChannelEvent::StateRequest { joiner } => {
                    let _ = self.channel.provide_state(joiner, self.store.snapshot());
                }
                ChannelEvent::SetState { bytes } => {
                    if let Ok(store) = HdnsStore::restore(&bytes) {
                        self.store = store;
                        self.events.push(HdnsEvent::Resynced);
                        self.persist();
                    }
                }
                ChannelEvent::ResyncNeeded { .. } => {
                    // The winner's coordinator pushes state; nothing to do
                    // but wait for the SetState.
                }
                ChannelEvent::Crashed { .. } => {
                    self.alive = false;
                    for outcome in self.tickets.values_mut() {
                        if *outcome == OpOutcome::Pending {
                            *outcome = OpOutcome::Lost;
                        }
                    }
                }
            }
        }
    }

    fn emit(&mut self, op: &Op, existed: bool) {
        let ev = match op {
            Op::Bind { path, .. } if existed => HdnsEvent::Changed { path: path.clone() },
            Op::Bind { path, .. } => HdnsEvent::Bound { path: path.clone() },
            Op::CreateContext { path } => HdnsEvent::Bound { path: path.clone() },
            Op::Unbind { path } => HdnsEvent::Removed { path: path.clone() },
            Op::Rename { from, to } => HdnsEvent::Renamed {
                from: from.clone(),
                to: to.clone(),
            },
            Op::SetAttrs { path, .. } => HdnsEvent::Changed { path: path.clone() },
        };
        self.events.push(ev);
    }

    /// Write the snapshot to disk (periodic, and "upon process exit" via
    /// [`HdnsNode::shutdown`]).
    pub fn persist(&mut self) {
        self.ops_since_snapshot = 0;
        if let Some(p) = &self.data_path {
            if let Some(dir) = p.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(p, self.store.snapshot());
        }
    }

    /// Graceful shutdown: persist and leave the group.
    pub fn shutdown(&mut self) {
        self.persist();
        self.channel.disconnect();
        self.alive = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupcast::{Cluster, StackConfig};

    fn pair() -> (Cluster, HdnsNode, HdnsNode) {
        let cluster = Cluster::new(11);
        let a = HdnsNode::new(cluster.create_channel(StackConfig::default()), None);
        let b = HdnsNode::new(cluster.create_channel(StackConfig::default()), None);
        a.connect("hdns").unwrap();
        cluster.pump_all();
        b.connect("hdns").unwrap();
        cluster.pump_all();
        (cluster, a, b)
    }

    fn drive(cluster: &Cluster, nodes: &mut [&mut HdnsNode]) {
        for _ in 0..8 {
            cluster.pump_all();
            for n in nodes.iter_mut() {
                n.process();
            }
            if cluster.in_flight() == 0 {
                break;
            }
        }
    }

    #[test]
    fn write_replicates_to_all_nodes() {
        let (cluster, mut a, mut b) = pair();
        drive(&cluster, &mut [&mut a, &mut b]);
        let t = a
            .submit(Op::Bind {
                path: "svc".into(),
                entry: HdnsEntry::leaf(vec![1]),
                overwrite: false,
            })
            .unwrap();
        drive(&cluster, &mut [&mut a, &mut b]);
        assert_eq!(a.outcome(t), OpOutcome::Done(Ok(())));
        assert_eq!(a.lookup("svc").unwrap().value, vec![1]);
        assert_eq!(
            b.lookup("svc").unwrap().value,
            vec![1],
            "replica consistent"
        );
    }

    #[test]
    fn atomic_bind_race_one_winner() {
        let (cluster, mut a, mut b) = pair();
        drive(&cluster, &mut [&mut a, &mut b]);
        // Concurrent conflicting binds from both nodes.
        let ta = a
            .submit(Op::Bind {
                path: "k".into(),
                entry: HdnsEntry::leaf(vec![b'a']),
                overwrite: false,
            })
            .unwrap();
        let tb = b
            .submit(Op::Bind {
                path: "k".into(),
                entry: HdnsEntry::leaf(vec![b'b']),
                overwrite: false,
            })
            .unwrap();
        drive(&cluster, &mut [&mut a, &mut b]);
        let ra = a.outcome(ta);
        let rb = b.outcome(tb);
        let oks = [&ra, &rb]
            .iter()
            .filter(|o| matches!(o, OpOutcome::Done(Ok(()))))
            .count();
        assert_eq!(oks, 1, "exactly one bind wins: {ra:?} {rb:?}");
        // Both replicas agree on the value.
        assert_eq!(a.lookup("k"), b.lookup("k"));
    }

    #[test]
    fn join_gets_state_transfer() {
        let (cluster, mut a, mut b) = pair();
        drive(&cluster, &mut [&mut a, &mut b]);
        let t = a
            .submit(Op::Bind {
                path: "existing".into(),
                entry: HdnsEntry::leaf(vec![5]),
                overwrite: false,
            })
            .unwrap();
        drive(&cluster, &mut [&mut a, &mut b]);
        assert!(matches!(a.outcome(t), OpOutcome::Done(Ok(()))));

        let mut c = HdnsNode::new(cluster.create_channel(StackConfig::default()), None);
        c.connect("hdns").unwrap();
        drive(&cluster, &mut [&mut a, &mut b, &mut c]);
        assert_eq!(c.lookup("existing").unwrap().value, vec![5]);
        assert!(c.take_events().contains(&HdnsEvent::Resynced));
    }

    #[test]
    fn events_emitted_on_ops() {
        let (cluster, mut a, mut b) = pair();
        drive(&cluster, &mut [&mut a, &mut b]);
        b.take_events(); // drop the join-time Resynced
        a.submit(Op::Bind {
            path: "e".into(),
            entry: HdnsEntry::leaf(vec![]),
            overwrite: false,
        })
        .unwrap();
        a.submit(Op::Bind {
            path: "e".into(),
            entry: HdnsEntry::leaf(vec![1]),
            overwrite: true,
        })
        .unwrap();
        a.submit(Op::Unbind { path: "e".into() }).unwrap();
        drive(&cluster, &mut [&mut a, &mut b]);
        let evs = b.take_events();
        assert_eq!(
            evs,
            vec![
                HdnsEvent::Bound { path: "e".into() },
                HdnsEvent::Changed { path: "e".into() },
                HdnsEvent::Removed { path: "e".into() },
            ]
        );
    }

    #[test]
    fn disk_persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hdns-test-{}", std::process::id()));
        let path = dir.join("snap.json");
        let _ = std::fs::remove_file(&path);

        let cluster = Cluster::new(3);
        let mut a = HdnsNode::new(
            cluster.create_channel(StackConfig::default()),
            Some(path.clone()),
        );
        a.connect("g").unwrap();
        cluster.pump_all();
        a.process();
        let t = a
            .submit(Op::Bind {
                path: "durable".into(),
                entry: HdnsEntry::leaf(vec![9]),
                overwrite: false,
            })
            .unwrap();
        cluster.pump_all();
        a.process();
        assert!(matches!(a.outcome(t), OpOutcome::Done(Ok(()))));
        a.shutdown();

        // A fresh incarnation recovers from disk.
        let cluster2 = Cluster::new(4);
        let b = HdnsNode::new(
            cluster2.create_channel(StackConfig::default()),
            Some(path.clone()),
        );
        assert_eq!(b.lookup("durable").unwrap().value, vec![9]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_ticket_is_lost() {
        let (_cluster, mut a, _b) = pair();
        assert_eq!(a.outcome(Ticket(999)), OpOutcome::Lost);
    }
}
