//! The replicated store: hierarchical entries + deterministic operations.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// An entry in the naming service.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HdnsEntry {
    /// Marshalled bound value (opaque to HDNS).
    pub value: Vec<u8>,
    /// String attributes (HDNS keeps its attribute model simple; richer
    /// typing lives in the client layers).
    pub attrs: BTreeMap<String, String>,
    /// Whether this entry is a subcontext (may have children).
    pub is_context: bool,
}

impl HdnsEntry {
    pub fn leaf(value: Vec<u8>) -> HdnsEntry {
        HdnsEntry {
            value,
            attrs: BTreeMap::new(),
            is_context: false,
        }
    }

    pub fn context() -> HdnsEntry {
        HdnsEntry {
            value: Vec::new(),
            attrs: BTreeMap::new(),
            is_context: true,
        }
    }

    pub fn with_attr(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.attrs.insert(k.into(), v.into());
        self
    }
}

/// Store operation failures — deterministic across replicas.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HdnsError {
    AlreadyBound(String),
    NotFound(String),
    /// An intermediate path component is missing or not a context.
    NotAContext(String),
    /// Removing a context that still has children.
    NotEmpty(String),
    InvalidPath(String),
}

impl std::fmt::Display for HdnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HdnsError::AlreadyBound(p) => write!(f, "already bound: {p}"),
            HdnsError::NotFound(p) => write!(f, "not found: {p}"),
            HdnsError::NotAContext(p) => write!(f, "not a context: {p}"),
            HdnsError::NotEmpty(p) => write!(f, "context not empty: {p}"),
            HdnsError::InvalidPath(p) => write!(f, "invalid path: {p:?}"),
        }
    }
}

impl std::error::Error for HdnsError {}

/// A write operation, multicast to the group and applied deterministically
/// at every replica.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Bind an entry; `overwrite = false` gives atomic-bind semantics.
    Bind {
        path: String,
        entry: HdnsEntry,
        overwrite: bool,
    },
    Unbind {
        path: String,
    },
    Rename {
        from: String,
        to: String,
    },
    CreateContext {
        path: String,
    },
    /// Replace the attribute map of an existing entry.
    SetAttrs {
        path: String,
        attrs: BTreeMap<String, String>,
    },
}

/// Validate and normalize a path: non-empty `/`-separated segments.
pub fn normalize_path(path: &str) -> Result<String, HdnsError> {
    let p = path.trim_matches('/');
    if p.is_empty() {
        return Err(HdnsError::InvalidPath(path.to_string()));
    }
    if p.split('/').any(|s| s.is_empty()) {
        return Err(HdnsError::InvalidPath(path.to_string()));
    }
    Ok(p.to_string())
}

fn parent_of(path: &str) -> Option<&str> {
    path.rsplit_once('/').map(|(p, _)| p)
}

/// The replica-local store. A flat ordered map keyed by normalized path;
/// hierarchy is enforced on mutation (parents must be contexts).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct HdnsStore {
    entries: BTreeMap<String, HdnsEntry>,
    /// Number of operations applied (replica convergence diagnostics).
    pub ops_applied: u64,
}

impl HdnsStore {
    pub fn new() -> Self {
        HdnsStore::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Read an entry (replica-local, no communication).
    pub fn get(&self, path: &str) -> Option<&HdnsEntry> {
        normalize_path(path).ok().and_then(|p| self.entries.get(&p))
    }

    /// Direct children of `prefix` (`""` = root).
    ///
    /// Non-root prefixes scan only the `"{prefix}/"` key range (the
    /// subtree is contiguous in the ordered map) instead of the whole
    /// store; the root has no such range in a flat path map, so it keeps
    /// the full iteration.
    pub fn list(&self, prefix: &str) -> Vec<(String, &HdnsEntry)> {
        let norm = prefix.trim_matches('/');
        if norm.is_empty() {
            return self
                .entries
                .iter()
                .filter(|(k, _)| !k.contains('/'))
                .map(|(k, v)| (k.clone(), v))
                .collect();
        }
        let depth = norm.matches('/').count() + 2;
        let range_prefix = format!("{norm}/");
        self.entries
            .range(range_prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&range_prefix))
            .filter(|(k, _)| k.matches('/').count() + 1 == depth)
            .map(|(k, v)| {
                let child = k.rsplit('/').next().expect("non-empty key").to_string();
                (child, v)
            })
            .collect()
    }

    fn check_parent(&self, path: &str) -> Result<(), HdnsError> {
        if let Some(parent) = parent_of(path) {
            match self.entries.get(parent) {
                Some(e) if e.is_context => Ok(()),
                Some(_) => Err(HdnsError::NotAContext(parent.to_string())),
                None => Err(HdnsError::NotFound(parent.to_string())),
            }
        } else {
            Ok(())
        }
    }

    fn has_children(&self, path: &str) -> bool {
        let prefix = format!("{path}/");
        self.entries
            .range(prefix.clone()..)
            .next()
            .is_some_and(|(k, _)| k.starts_with(&prefix))
    }

    /// Apply an operation. Deterministic: identical stores applying the
    /// same op yield identical results and identical new states.
    pub fn apply(&mut self, op: &Op) -> Result<(), HdnsError> {
        self.ops_applied += 1;
        match op {
            Op::Bind {
                path,
                entry,
                overwrite,
            } => {
                let p = normalize_path(path)?;
                self.check_parent(&p)?;
                if !overwrite && self.entries.contains_key(&p) {
                    return Err(HdnsError::AlreadyBound(p));
                }
                if let Some(existing) = self.entries.get(&p) {
                    if existing.is_context && self.has_children(&p) {
                        return Err(HdnsError::NotEmpty(p));
                    }
                }
                self.entries.insert(p, entry.clone());
                Ok(())
            }
            Op::Unbind { path } => {
                let p = normalize_path(path)?;
                if self.has_children(&p) {
                    return Err(HdnsError::NotEmpty(p));
                }
                self.entries.remove(&p);
                Ok(())
            }
            Op::Rename { from, to } => {
                let f = normalize_path(from)?;
                let t = normalize_path(to)?;
                if self.has_children(&f) {
                    return Err(HdnsError::NotEmpty(f));
                }
                // Remove first, then validate the target — so renaming a
                // context *into its own subtree* (a → a/b) fails on the
                // missing parent instead of orphaning the entry.
                let entry = self
                    .entries
                    .remove(&f)
                    .ok_or_else(|| HdnsError::NotFound(f.clone()))?;
                let target_ok = if self.entries.contains_key(&t) {
                    Err(HdnsError::AlreadyBound(t.clone()))
                } else {
                    self.check_parent(&t)
                };
                match target_ok {
                    Ok(()) => {
                        self.entries.insert(t, entry);
                        Ok(())
                    }
                    Err(e) => {
                        self.entries.insert(f, entry);
                        Err(e)
                    }
                }
            }
            Op::CreateContext { path } => {
                let p = normalize_path(path)?;
                self.check_parent(&p)?;
                if self.entries.contains_key(&p) {
                    return Err(HdnsError::AlreadyBound(p));
                }
                self.entries.insert(p, HdnsEntry::context());
                Ok(())
            }
            Op::SetAttrs { path, attrs } => {
                let p = normalize_path(path)?;
                let entry = self.entries.get_mut(&p).ok_or(HdnsError::NotFound(p))?;
                entry.attrs = attrs.clone();
                Ok(())
            }
        }
    }

    /// Serialize the full state (state transfer + disk snapshots).
    pub fn snapshot(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("store is always serializable")
    }

    /// Restore from a snapshot.
    pub fn restore(bytes: &[u8]) -> Result<HdnsStore, String> {
        serde_json::from_slice(bytes).map_err(|e| e.to_string())
    }

    /// Iterate all `(path, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &HdnsEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_get_roundtrip() {
        let mut s = HdnsStore::new();
        s.apply(&Op::Bind {
            path: "x".into(),
            entry: HdnsEntry::leaf(vec![1]),
            overwrite: false,
        })
        .unwrap();
        assert_eq!(s.get("x").unwrap().value, vec![1]);
        assert_eq!(s.get("/x/").unwrap().value, vec![1], "normalized");
    }

    #[test]
    fn atomic_bind_conflicts() {
        let mut s = HdnsStore::new();
        let bind = |overwrite| Op::Bind {
            path: "k".into(),
            entry: HdnsEntry::leaf(vec![2]),
            overwrite,
        };
        s.apply(&bind(false)).unwrap();
        assert_eq!(
            s.apply(&bind(false)),
            Err(HdnsError::AlreadyBound("k".into()))
        );
        s.apply(&bind(true)).unwrap();
    }

    #[test]
    fn hierarchy_enforced() {
        let mut s = HdnsStore::new();
        assert!(matches!(
            s.apply(&Op::Bind {
                path: "a/b".into(),
                entry: HdnsEntry::leaf(vec![]),
                overwrite: false
            }),
            Err(HdnsError::NotFound(_))
        ));
        s.apply(&Op::CreateContext { path: "a".into() }).unwrap();
        s.apply(&Op::Bind {
            path: "a/b".into(),
            entry: HdnsEntry::leaf(vec![3]),
            overwrite: false,
        })
        .unwrap();
        // A leaf cannot parent children.
        assert!(matches!(
            s.apply(&Op::Bind {
                path: "a/b/c".into(),
                entry: HdnsEntry::leaf(vec![]),
                overwrite: false
            }),
            Err(HdnsError::NotAContext(_))
        ));
    }

    #[test]
    fn unbind_guards_nonempty_context() {
        let mut s = HdnsStore::new();
        s.apply(&Op::CreateContext { path: "c".into() }).unwrap();
        s.apply(&Op::Bind {
            path: "c/x".into(),
            entry: HdnsEntry::leaf(vec![]),
            overwrite: false,
        })
        .unwrap();
        assert_eq!(
            s.apply(&Op::Unbind { path: "c".into() }),
            Err(HdnsError::NotEmpty("c".into()))
        );
        s.apply(&Op::Unbind { path: "c/x".into() }).unwrap();
        s.apply(&Op::Unbind { path: "c".into() }).unwrap();
        // Unbinding a missing path succeeds (idempotent).
        s.apply(&Op::Unbind { path: "c".into() }).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn list_direct_children_only() {
        let mut s = HdnsStore::new();
        s.apply(&Op::CreateContext { path: "a".into() }).unwrap();
        s.apply(&Op::CreateContext { path: "a/b".into() }).unwrap();
        s.apply(&Op::Bind {
            path: "a/leaf".into(),
            entry: HdnsEntry::leaf(vec![]),
            overwrite: false,
        })
        .unwrap();
        s.apply(&Op::Bind {
            path: "a/b/deep".into(),
            entry: HdnsEntry::leaf(vec![]),
            overwrite: false,
        })
        .unwrap();
        let mut names: Vec<String> = s.list("a").into_iter().map(|(n, _)| n).collect();
        names.sort();
        assert_eq!(names, vec!["b", "leaf"]);
        let root: Vec<String> = s.list("").into_iter().map(|(n, _)| n).collect();
        assert_eq!(root, vec!["a"]);
    }

    #[test]
    fn rename_semantics() {
        let mut s = HdnsStore::new();
        s.apply(&Op::Bind {
            path: "old".into(),
            entry: HdnsEntry::leaf(vec![7]),
            overwrite: false,
        })
        .unwrap();
        s.apply(&Op::Rename {
            from: "old".into(),
            to: "new".into(),
        })
        .unwrap();
        assert!(s.get("old").is_none());
        assert_eq!(s.get("new").unwrap().value, vec![7]);
        assert_eq!(
            s.apply(&Op::Rename {
                from: "ghost".into(),
                to: "x".into()
            }),
            Err(HdnsError::NotFound("ghost".into()))
        );
    }

    #[test]
    fn set_attrs() {
        let mut s = HdnsStore::new();
        s.apply(&Op::Bind {
            path: "e".into(),
            entry: HdnsEntry::leaf(vec![]).with_attr("a", "1"),
            overwrite: false,
        })
        .unwrap();
        let mut attrs = BTreeMap::new();
        attrs.insert("b".to_string(), "2".to_string());
        s.apply(&Op::SetAttrs {
            path: "e".into(),
            attrs,
        })
        .unwrap();
        let e = s.get("e").unwrap();
        assert!(!e.attrs.contains_key("a"));
        assert_eq!(e.attrs["b"], "2");
    }

    #[test]
    fn snapshot_restore_identical() {
        let mut s = HdnsStore::new();
        s.apply(&Op::CreateContext { path: "a".into() }).unwrap();
        s.apply(&Op::Bind {
            path: "a/x".into(),
            entry: HdnsEntry::leaf(vec![9]).with_attr("k", "v"),
            overwrite: false,
        })
        .unwrap();
        let snap = s.snapshot();
        let restored = HdnsStore::restore(&snap).unwrap();
        assert_eq!(restored.len(), s.len());
        assert_eq!(restored.get("a/x"), s.get("a/x"));
        assert!(HdnsStore::restore(b"junk").is_err());
    }

    #[test]
    fn deterministic_convergence() {
        // Two replicas applying the same op sequence end identical, even
        // when ops fail.
        let ops = [
            Op::CreateContext { path: "c".into() },
            Op::Bind {
                path: "c/x".into(),
                entry: HdnsEntry::leaf(vec![1]),
                overwrite: false,
            },
            Op::Bind {
                path: "c/x".into(),
                entry: HdnsEntry::leaf(vec![2]),
                overwrite: false,
            }, // conflict: fails identically on both
            Op::Unbind {
                path: "nope".into(),
            },
            Op::Rename {
                from: "c/x".into(),
                to: "c/y".into(),
            },
        ];
        let mut a = HdnsStore::new();
        let mut b = HdnsStore::new();
        let ra: Vec<_> = ops.iter().map(|o| a.apply(o)).collect();
        let rb: Vec<_> = ops.iter().map(|o| b.apply(o)).collect();
        assert_eq!(ra, rb);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.get("c/y").unwrap().value, vec![1], "first bind won");
    }

    #[test]
    fn invalid_paths_rejected() {
        let mut s = HdnsStore::new();
        for bad in ["", "/", "a//b"] {
            assert!(matches!(
                s.apply(&Op::Unbind { path: bad.into() }),
                Err(HdnsError::InvalidPath(_))
            ));
        }
    }
}
